//! Offline criterion API stub: benchmarks compile and, when invoked, run
//! each body a handful of times and print a coarse wall-clock figure. No
//! statistics, warm-up, or reports.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.iters = ITERS;
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        const ITERS: u64 = 3;
        let mut elapsed = 0u128;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            elapsed += start.elapsed().as_nanos();
        }
        self.iters = ITERS;
        self.elapsed_ns = elapsed;
    }
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed_ns / u128::from(b.iters)
    } else {
        0
    };
    println!("bench {label}: ~{per_iter} ns/iter ({} iters)", b.iters);
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
