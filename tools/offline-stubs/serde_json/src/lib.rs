//! Offline serde_json API stub. Serialization is unavailable in this
//! environment, so every entry point returns an error; call sites that
//! propagate `Result` keep working, and only round-trip tests notice.

use std::fmt;

pub struct Error {
    msg: String,
}

impl Error {
    fn unsupported(op: &str) -> Self {
        Error {
            msg: format!("serde_json stub: {op} is not available offline"),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::unsupported("to_string"))
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::unsupported("to_string_pretty"))
}

pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    Err(Error::unsupported("to_vec"))
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error::unsupported("from_str"))
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    Err(Error::unsupported("from_slice"))
}
