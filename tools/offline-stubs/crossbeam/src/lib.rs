//! Offline crossbeam API stub: scoped threads delegated to
//! `std::thread::scope` (available since Rust 1.63), preserving the
//! crossbeam 0.8 call shape (`scope` returns a `Result`, spawn closures
//! receive a `&Scope` argument).

pub mod thread {
    use std::marker::PhantomData;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _env: PhantomData<&'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    f(&Scope {
                        inner,
                        _env: PhantomData,
                    })
                }),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Panics from unjoined children propagate as panics
    /// (std semantics), so the `Ok` wrapper is unconditional.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                _env: PhantomData,
            })
        }))
    }
}
