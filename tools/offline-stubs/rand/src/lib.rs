//! Offline API-compatible reimplementation of the `rand` 0.8 surface this
//! workspace uses. The numeric streams are bit-for-bit faithful to
//! rand 0.8.5 + rand_chacha 0.3 (StdRng = ChaCha12, rand_core 0.6
//! `seed_from_u64` and `BlockRng` semantics, the 0.8.5 `Standard` and
//! uniform-sampling algorithms), which the committed experiment baselines
//! depend on.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core 0.6: PCG32-style fill of the seed buffer in 4-byte
    /// little-endian chunks.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside range [0.0, 1.0]");
        // rand 0.8 Bernoulli: p scaled into 64 bits (with the p == 1.0
        // always-true special case).
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < p_int
    }

    fn fill<T: AsMut<[u8]>>(&mut self, dest: &mut T) {
        self.fill_bytes(dest.as_mut());
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill

    /// `StdRng` faithful to rand 0.8: ChaCha12 with a 64-bit block counter
    /// and 64-bit stream id, buffered four blocks at a time through
    /// rand_core's `BlockRng` index discipline.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        stream: u64,
        results: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl StdRng {
        fn generate(&mut self) {
            for block in 0..4u64 {
                let counter = self.counter.wrapping_add(block);
                let mut x = [0u32; 16];
                x[..4].copy_from_slice(&CHACHA_CONSTANTS);
                x[4..12].copy_from_slice(&self.key);
                x[12] = counter as u32;
                x[13] = (counter >> 32) as u32;
                x[14] = self.stream as u32;
                x[15] = (self.stream >> 32) as u32;
                let input = x;
                for _ in 0..6 {
                    // one double round (column + diagonal); 6 of them = ChaCha12
                    quarter_round(&mut x, 0, 4, 8, 12);
                    quarter_round(&mut x, 1, 5, 9, 13);
                    quarter_round(&mut x, 2, 6, 10, 14);
                    quarter_round(&mut x, 3, 7, 11, 15);
                    quarter_round(&mut x, 0, 5, 10, 15);
                    quarter_round(&mut x, 1, 6, 11, 12);
                    quarter_round(&mut x, 2, 7, 8, 13);
                    quarter_round(&mut x, 3, 4, 9, 14);
                }
                for (i, out) in x.iter().enumerate() {
                    self.results[block as usize * 16 + i] = out.wrapping_add(input[i]);
                }
            }
            self.counter = self.counter.wrapping_add(4);
        }

        fn generate_and_set(&mut self, index: usize) {
            self.generate();
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, w) in key.iter_mut().enumerate() {
                *w = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            StdRng {
                key,
                counter: 0,
                stream: 0,
                results: [0u32; BUF_WORDS],
                index: BUF_WORDS, // empty buffer: first use triggers generate
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core BlockRng::next_u64, verbatim semantics.
            let read_u64 = |results: &[u32; BUF_WORDS], index: usize| {
                u64::from(results[index + 1]) << 32 | u64::from(results[index])
            };
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read_u64(&self.results, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read_u64(&self.results, 0)
            } else {
                let x = u64::from(self.results[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.results[0]);
                (y << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u32().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let word = self.next_u32().to_le_bytes();
                rem.copy_from_slice(&word[..rem.len()]);
            }
        }
    }
}

pub mod distributions {
    use super::Rng;

    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `Standard` distribution, faithful to rand 0.8.5.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit multiply-based conversion into [0, 1)
            let value = rng.next_u64() >> (64 - 53);
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> (32 - 24);
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            (rng.next_u32() as i32) < 0
        }
    }

    macro_rules! standard_int_from_u32 {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u32() as $ty
                }
            }
        )*};
    }
    macro_rules! standard_int_from_u64 {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    standard_int_from_u32!(u8, u16, u32, i8, i16, i32);
    standard_int_from_u64!(u64, i64, usize, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            // rand 0.8: high word drawn first
            let hi = rng.next_u64() as u128;
            let lo = rng.next_u64() as u128;
            (hi << 64) | lo
        }
    }
    impl Distribution<i128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
            <Standard as Distribution<u128>>::sample(self, rng) as i128
        }
    }

    pub mod uniform {
        use super::Distribution;
        use crate::Rng;
        use std::ops::{Range, RangeInclusive};

        pub trait SampleUniform: Sized {
            type Sampler: UniformSampler<X = Self>;
        }

        pub trait UniformSampler: Sized {
            type X;
            fn new(low: Self::X, high: Self::X) -> Self;
            fn new_inclusive(low: Self::X, high: Self::X) -> Self;
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::X;
            fn sample_single<R: Rng + ?Sized>(low: Self::X, high: Self::X, rng: &mut R)
                -> Self::X;
            fn sample_single_inclusive<R: Rng + ?Sized>(
                low: Self::X,
                high: Self::X,
                rng: &mut R,
            ) -> Self::X;
        }

        pub trait SampleRange<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::Sampler::sample_single(self.start, self.end, rng)
            }
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (start, end) = self.into_inner();
                T::Sampler::sample_single_inclusive(start, end, rng)
            }
            fn is_empty(&self) -> bool {
                !(self.start() <= self.end())
            }
        }

        trait WideningMultiply<RHS = Self> {
            type Output;
            fn wmul(self, x: RHS) -> Self::Output;
        }
        impl WideningMultiply for u32 {
            type Output = (u32, u32);
            #[inline(always)]
            fn wmul(self, x: u32) -> (u32, u32) {
                let tmp = (self as u64) * (x as u64);
                ((tmp >> 32) as u32, tmp as u32)
            }
        }
        impl WideningMultiply for u64 {
            type Output = (u64, u64);
            #[inline(always)]
            fn wmul(self, x: u64) -> (u64, u64) {
                let tmp = (self as u128) * (x as u128);
                ((tmp >> 64) as u64, tmp as u64)
            }
        }
        impl WideningMultiply for u128 {
            type Output = (u128, u128);
            #[inline(always)]
            fn wmul(self, x: u128) -> (u128, u128) {
                const LOWER_MASK: u128 = !0u128 >> 64;
                let mut low = (self & LOWER_MASK).wrapping_mul(x & LOWER_MASK);
                let mut t = low >> 64;
                low &= LOWER_MASK;
                t += (self >> 64).wrapping_mul(x & LOWER_MASK);
                low += (t & LOWER_MASK) << 64;
                let mut high = t >> 64;
                t = low >> 64;
                low &= LOWER_MASK;
                t += (x >> 64).wrapping_mul(self & LOWER_MASK);
                low += (t & LOWER_MASK) << 64;
                high += t >> 64;
                high += (self >> 64).wrapping_mul(x >> 64);
                (high, low)
            }
        }
        impl WideningMultiply for usize {
            type Output = (usize, usize);
            #[inline(always)]
            fn wmul(self, x: usize) -> (usize, usize) {
                let (hi, lo) = (self as u64).wmul(x as u64);
                (hi as usize, lo as usize)
            }
        }

        #[derive(Clone, Copy, Debug)]
        pub struct UniformInt<X> {
            low: X,
            range: X,
            z: X, // ints_to_reject
        }

        macro_rules! uniform_int_impl {
            ($ty:ty, $unsigned:ident, $u_large:ty) => {
                impl SampleUniform for $ty {
                    type Sampler = UniformInt<$ty>;
                }

                impl UniformSampler for UniformInt<$ty> {
                    type X = $ty;

                    fn new(low: Self::X, high: Self::X) -> Self {
                        assert!(low < high, "Uniform::new called with `low >= high`");
                        Self::new_inclusive(low, high - 1)
                    }

                    fn new_inclusive(low: Self::X, high: Self::X) -> Self {
                        assert!(
                            low <= high,
                            "Uniform::new_inclusive called with `low > high`"
                        );
                        let unsigned_max = <$u_large>::MAX;
                        let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                        let ints_to_reject = if range > 0 {
                            (unsigned_max - range + 1) % range
                        } else {
                            0
                        };
                        UniformInt {
                            low,
                            range: range as $ty,
                            z: ints_to_reject as $unsigned as $ty,
                        }
                    }

                    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::X {
                        let range = self.range as $unsigned as $u_large;
                        if range > 0 {
                            let unsigned_max = <$u_large>::MAX;
                            let zone = unsigned_max - (self.z as $unsigned as $u_large);
                            loop {
                                let v: $u_large = rng.gen();
                                let (hi, lo) = v.wmul(range);
                                if lo <= zone {
                                    return self.low.wrapping_add(hi as $ty);
                                }
                            }
                        } else {
                            rng.gen()
                        }
                    }

                    fn sample_single<R: Rng + ?Sized>(
                        low: Self::X,
                        high: Self::X,
                        rng: &mut R,
                    ) -> Self::X {
                        assert!(low < high, "UniformSampler::sample_single: low >= high");
                        Self::sample_single_inclusive(low, high - 1, rng)
                    }

                    fn sample_single_inclusive<R: Rng + ?Sized>(
                        low: Self::X,
                        high: Self::X,
                        rng: &mut R,
                    ) -> Self::X {
                        assert!(
                            low <= high,
                            "UniformSampler::sample_single_inclusive: low > high"
                        );
                        let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                        // If the range is 0 the type range was requested:
                        // all values are accepted.
                        if range == 0 {
                            return rng.gen();
                        }
                        let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                            // modulus is faster for 8/16-bit types
                            let unsigned_max: $u_large = <$u_large>::MAX;
                            let ints_to_reject = (unsigned_max - range + 1) % range;
                            unsigned_max - ints_to_reject
                        } else {
                            // conservative zone approximation
                            (range << range.leading_zeros()).wrapping_sub(1)
                        };
                        loop {
                            let v: $u_large = rng.gen();
                            let (hi, lo) = v.wmul(range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        uniform_int_impl! { i8, u8, u32 }
        uniform_int_impl! { i16, u16, u32 }
        uniform_int_impl! { i32, u32, u32 }
        uniform_int_impl! { i64, u64, u64 }
        uniform_int_impl! { i128, u128, u128 }
        uniform_int_impl! { isize, usize, usize }
        uniform_int_impl! { u8, u8, u32 }
        uniform_int_impl! { u16, u16, u32 }
        uniform_int_impl! { u32, u32, u32 }
        uniform_int_impl! { u64, u64, u64 }
        uniform_int_impl! { u128, u128, u128 }
        uniform_int_impl! { usize, usize, usize }

        #[derive(Clone, Copy, Debug)]
        pub struct UniformFloat<X> {
            low: X,
            scale: X,
        }

        macro_rules! uniform_float_impl {
            ($ty:ty, $uty:ty, $f_scalar:ident, $bits_to_discard:expr, $fraction_bits:expr) => {
                impl SampleUniform for $ty {
                    type Sampler = UniformFloat<$ty>;
                }

                impl UniformFloat<$ty> {
                    #[inline(always)]
                    fn into_float_with_exponent(x: $uty, exponent: i32) -> $ty {
                        // construct a float in [2^e, 2^(e+1)) from the fraction bits
                        let bias: i32 = (1 << (<$uty>::BITS - $fraction_bits - 2)) - 1;
                        let exponent_bits =
                            ((bias + exponent) as $uty) << $fraction_bits;
                        <$ty>::from_bits(x | exponent_bits)
                    }
                }

                impl UniformSampler for UniformFloat<$ty> {
                    type X = $ty;

                    fn new(low: Self::X, high: Self::X) -> Self {
                        assert!(low.is_finite(), "Uniform::new called with non-finite low");
                        assert!(high.is_finite(), "Uniform::new called with non-finite high");
                        assert!(low < high, "Uniform::new called with `low >= high`");
                        let max_rand = Self::into_float_with_exponent(
                            <$uty>::MAX >> $bits_to_discard,
                            0,
                        ) - 1.0;
                        let mut scale = high - low;
                        assert!(scale.is_finite(), "Uniform::new: range overflow");
                        loop {
                            let mask = (scale * max_rand + low) >= high;
                            if !mask {
                                break;
                            }
                            scale = <$ty>::from_bits(scale.to_bits() - 1);
                        }
                        debug_assert!(0.0 <= scale);
                        UniformFloat { low, scale }
                    }

                    fn new_inclusive(low: Self::X, high: Self::X) -> Self {
                        assert!(
                            low <= high,
                            "Uniform::new_inclusive called with `low > high`"
                        );
                        let max_rand = Self::into_float_with_exponent(
                            <$uty>::MAX >> $bits_to_discard,
                            0,
                        ) - 1.0;
                        let mut scale = (high - low) / max_rand;
                        assert!(scale.is_finite(), "Uniform::new_inclusive: range overflow");
                        loop {
                            let mask = (scale * max_rand + low) > high;
                            if !mask {
                                break;
                            }
                            scale = <$ty>::from_bits(scale.to_bits() - 1);
                        }
                        UniformFloat { low, scale }
                    }

                    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::X {
                        let value: $uty = rng.gen();
                        let value1_2 =
                            Self::into_float_with_exponent(value >> $bits_to_discard, 0);
                        let value0_1 = value1_2 - 1.0;
                        value0_1 * self.scale + self.low
                    }

                    fn sample_single<R: Rng + ?Sized>(
                        low: Self::X,
                        high: Self::X,
                        rng: &mut R,
                    ) -> Self::X {
                        assert!(low < high, "UniformSampler::sample_single: low >= high");
                        let mut scale = high - low;
                        assert!(
                            scale.is_finite(),
                            "UniformSampler::sample_single: range overflow"
                        );
                        loop {
                            // a value in [1, 2)
                            let value: $uty = rng.gen();
                            let value1_2 =
                                Self::into_float_with_exponent(value >> $bits_to_discard, 0);
                            let value0_1 = value1_2 - 1.0;
                            let res = value0_1 * scale + low;
                            if res < high {
                                return res;
                            }
                            // rare rounding edge: retry with 1-ulp-smaller scale
                            scale = <$ty>::from_bits(scale.to_bits() - 1);
                        }
                    }

                    fn sample_single_inclusive<R: Rng + ?Sized>(
                        low: Self::X,
                        high: Self::X,
                        rng: &mut R,
                    ) -> Self::X {
                        assert!(
                            low <= high,
                            "UniformSampler::sample_single_inclusive: low > high"
                        );
                        let scale = high - low;
                        assert!(
                            scale.is_finite(),
                            "UniformSampler::sample_single_inclusive: range overflow"
                        );
                        let value: $uty = rng.gen();
                        let value1_2 =
                            Self::into_float_with_exponent(value >> $bits_to_discard, 0);
                        let value0_1 = value1_2 - 1.0;
                        value0_1 * scale + low
                    }
                }
            };
        }

        uniform_float_impl! { f32, u32, f32, 32 - 23 - 1, 23 }
        uniform_float_impl! { f64, u64, f64, 64 - 52 - 1, 52 }

        #[derive(Clone, Copy, Debug)]
        pub struct Uniform<X: SampleUniform>(X::Sampler);

        impl<X: SampleUniform> Uniform<X> {
            pub fn new(low: X, high: X) -> Uniform<X> {
                Uniform(X::Sampler::new(low, high))
            }
            pub fn new_inclusive(low: X, high: X) -> Uniform<X> {
                Uniform(X::Sampler::new_inclusive(low, high))
            }
        }

        impl<X: SampleUniform> Distribution<X> for Uniform<X> {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
                self.0.sample(rng)
            }
        }
    }

    pub use uniform::Uniform;
}

pub use rngs::StdRng;
