//! Offline proptest API stub: a minimal deterministic property-test
//! harness with the same macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`) and strategy combinators this workspace uses.
//! Shrinking is not implemented; generation is seeded from the test name,
//! so failures reproduce exactly across runs.

pub mod test_runner {
    use std::fmt;

    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64 stream seeded from an FNV-1a hash of the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % (span as u128)) as i128;
                    ((self.start as i128) + off) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                f64::from_bits(self.end.to_bits() - 1)
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64))
                as f32;
            if v < self.end {
                v
            } else {
                f32::from_bits(self.end.to_bits() - 1)
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            // bounded attempts: duplicates shrink the set, like proptest
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!("proptest case {} failed: {}", __proptest_case, e);
                    }
                }
            }
        )*
    };
}
