//! Offline bytes API stub: `Bytes` as a cheaply-clonable shared byte
//! buffer (Arc-backed), covering the read-only surface this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.0)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::new(v.to_vec()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(Arc::new(v.as_bytes().to_vec()))
    }
}
