//! No-op derive macros: the serde stub provides blanket trait impls, so the
//! derives only need to accept the `#[serde(...)]` helper attributes and
//! expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
