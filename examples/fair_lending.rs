//! Responsible deployment: audit, explain and debias a lending model.
//!
//! The Part-3 story: a model trained on historically-biased income data
//! inherits the bias (even without seeing the protected attribute), a
//! fairness audit quantifies it, LIME explains individual denials, and
//! three interventions shrink the gap.
//!
//! ```text
//! cargo run --release -p dl-bench --example fair_lending
//! ```

use dl_data::{CensusConfig, CensusData};
use dl_fairness::{
    adversarial_debias, mitigate::train_reweighed, threshold_adjust, AdversarialConfig,
    FairnessReport,
};
use dl_interpret::lime_explain;
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

const FEATURES: [&str; 6] = [
    "age",
    "education_years",
    "hours_per_week",
    "capital_signal",
    "occupation_score",
    "zip_code_segment", // the proxy column
];

fn main() {
    // Historical data with a known 50% label bias against group 1.
    let census = CensusData::generate(CensusConfig {
        n: 3000,
        bias: 0.5,
        seed: 1,
        ..CensusConfig::default()
    });
    let data = census.to_dataset();
    println!(
        "ground truth: base rates {:.3} (group 0) vs {:.3} (group 1)",
        census.base_rate(0),
        census.base_rate(1)
    );

    // Train the lending model. Group membership is NOT a feature.
    let mut net = Network::mlp(&[6, 16, 2], &mut init::rng(2));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &data);

    // Audit.
    let preds = net.predict(&data.x);
    let audit = FairnessReport::new(&preds, &census.labels, &census.groups);
    println!("\naudit of the raw model:");
    println!("  accuracy            {:.3}", audit.accuracy());
    println!("  parity gap          {:.3}", audit.demographic_parity_diff());
    println!("  disparate impact    {:.3} (80% rule flags < 0.8)", audit.disparate_impact());
    println!("  equalized-odds gap  {:.3}", audit.equalized_odds_gap());

    // Explain one denial with LIME: which features drove it?
    let denied = preds
        .iter()
        .position(|&p| p == 0)
        .expect("someone was denied");
    let xi = data.x.select_rows(&[denied]);
    let exp = lime_explain(&mut net, &xi, 0, 400, 2.0, 3);
    println!("\nwhy was applicant #{denied} denied? (local R² {:.2})", exp.r_squared);
    for f in exp.top_features(3) {
        println!("  {:<18} weight {:+.3}", FEATURES[f], exp.weights[f]);
    }
    if exp.top_features(3).contains(&5) {
        println!("  ^ the zip-code proxy carries group information — \
                  fairness through unawareness fails");
    }

    // Interventions at all three levels.
    println!("\ninterventions:");
    let rew = train_reweighed(&data, &census.groups, 15, 4);
    println!(
        "  reweighing (pre):    parity {:+.3}, accuracy {:.3}",
        rew.report.demographic_parity_diff(),
        rew.report.accuracy()
    );
    let adv = adversarial_debias(
        &data,
        &census.groups,
        &AdversarialConfig {
            lambda: 2.0,
            epochs: 20,
            seed: 5,
            ..AdversarialConfig::default()
        },
    );
    println!(
        "  adversarial (in):    parity {:+.3}, accuracy {:.3}",
        adv.report.demographic_parity_diff(),
        adv.report.accuracy()
    );
    let scores = net.predict_proba(&census.features);
    let thr = threshold_adjust(&scores, &census.labels, &census.groups);
    println!(
        "  thresholds (post):   parity {:+.3}, accuracy {:.3}",
        thr.report.demographic_parity_diff(),
        thr.report.accuracy()
    );
}
