//! Edge deployment: squeeze a trained model under a hard memory budget.
//!
//! The Part-1 story end to end: train a capable teacher, then use
//! distillation, quantization and structural pruning to produce deployable
//! candidates, register every candidate's measured metrics in the
//! `dl-core` tradeoff framework, and let the navigator pick under an edge
//! device's constraints.
//!
//! ```text
//! cargo run --release -p dl-bench --example edge_deployment
//! ```

use dl_compress::{distill, neuron_prune, quantize_network, DistillConfig, QuantScheme};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

fn main() {
    let data = dl_data::digits_dataset(800, 0.15, 7);
    let (train, test) = data.split(0.25, 8);

    // the capable-but-heavy teacher
    let mut teacher = Network::mlp(&[144, 128, 64, 10], &mut init::rng(9));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut teacher, &train);
    let mut registry = Registry::new();
    let mut register = |name: &str, net: &Network, acc: f64, mem_override: Option<u64>| {
        let p = net.cost_profile(1);
        registry
            .add(Technique {
                name: name.into(),
                category: Category::Compression,
                metrics: Metrics {
                    accuracy: acc,
                    train_flops: 0,
                    inference_flops: p.forward_flops,
                    memory_bytes: mem_override.unwrap_or(p.param_bytes()),
                    energy_kwh: 0.0,
                },
                baseline: Some("teacher".into()),
            })
            .expect("unique names");
    };
    let teacher_acc = Trainer::evaluate(&mut teacher.clone(), &test);
    register("teacher", &teacher, teacher_acc, None);
    println!(
        "teacher: acc {:.3}, {} KiB",
        teacher_acc,
        teacher.cost_profile(1).param_bytes() / 1024
    );

    // candidate 1: distilled student
    let mut student = Network::mlp(&[144, 24, 10], &mut init::rng(10));
    distill(&mut teacher, &mut student, &train, &DistillConfig::default());
    let student_acc = Trainer::evaluate(&mut student.clone(), &test);
    register("distilled-24", &student, student_acc, None);

    // candidate 2: distilled + int8 quantized
    let (q8, q8_report) = quantize_network(&student, QuantScheme::Affine { bits: 8 });
    let q8_acc = Trainer::evaluate(&mut q8.clone(), &test);
    register("distilled-24-int8", &q8, q8_acc, Some(q8_report.compressed_bytes as u64));

    // candidate 3: structurally pruned student (physically smaller)
    let mut slim = student.clone();
    neuron_prune(&mut slim, 0, 12);
    let slim_acc = Trainer::evaluate(&mut slim.clone(), &test);
    register("distilled-12-structural", &slim, slim_acc, None);

    // candidate 4: binary extreme
    let (bin, bin_report) = quantize_network(&student, QuantScheme::Binary);
    let bin_acc = Trainer::evaluate(&mut bin.clone(), &test);
    register("distilled-24-binary", &bin, bin_acc, Some(bin_report.compressed_bytes as u64));

    // the navigator answers the deployment question
    let nav = TradeoffNavigator::new(&registry);
    println!("\nPareto frontier:");
    for t in nav.frontier() {
        println!(
            "  {:<26} acc {:.3}  {:>8} B  {:>7} FLOP",
            t.name, t.metrics.accuracy, t.metrics.memory_bytes, t.metrics.inference_flops
        );
    }
    for budget_kib in [64u64, 16, 4, 1] {
        let pick = nav.recommend(&[Constraint::MaxMemoryBytes(budget_kib * 1024)]);
        match pick {
            Some(t) => println!(
                "budget {budget_kib:>3} KiB -> {} (acc {:.3})",
                t.name, t.metrics.accuracy
            ),
            None => println!("budget {budget_kib:>3} KiB -> nothing fits"),
        }
    }
}
