//! Planning a training campaign under memory, time and carbon budgets.
//!
//! The systems-planning story across §2.2, §2.3 and §4.3: given a model
//! and a 4-device cluster, (1) find a parallelization strategy with the
//! placement optimizer, (2) fit training in device memory with an optimal
//! rematerialization schedule, and (3) place the resulting jobs on the
//! grid with the carbon-aware scheduler.
//!
//! ```text
//! cargo run --release -p dl-bench --example green_training
//! ```

use dl_distributed::{
    data_parallel_cost, optimize_placement, Cluster, Device, Link, Placement,
    PlacementSearchConfig,
};
use dl_green::{
    energy::energy_for, schedule_jobs, CarbonReport, HardwareProfile, Job, Region, SchedulePolicy,
};
use dl_memsched::{optimal_schedule, sqrt_schedule, store_all};
use dl_tensor::init;

fn main() {
    // the model to train: a deep, wide MLP at batch 256
    let net = dl_nn::Network::mlp(
        &[1024, 2048, 2048, 2048, 1024, 1024, 512, 512, 256, 10],
        &mut init::rng(0),
    );
    let costs = net.layer_costs(256);
    let profile = net.cost_profile(256);
    println!(
        "model: {} params, {:.1} GFLOP per training step, {:.1} MiB activations",
        profile.params,
        profile.train_step_flops() as f64 / 1e9,
        profile.activation_bytes() as f64 / (1 << 20) as f64
    );

    // 1) parallelization: search vs defaults
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::nvlink());
    let single = Placement::single_device(costs.len()).simulate(&cluster, &costs);
    let dp = data_parallel_cost(&cluster, &costs);
    let (placement, searched, evals) =
        optimize_placement(&cluster, &costs, &PlacementSearchConfig::default());
    println!("\nparallelization (step seconds):");
    println!("  single device : {:.6}", single.step_seconds);
    println!("  data parallel : {:.6}", dp.step_seconds);
    println!(
        "  searched      : {:.6} ({} simulator evals, assignment {:?})",
        searched.step_seconds, evals, placement.assignment
    );

    // 2) memory: at the sqrt(n) schedule's footprint, how much recompute
    // does the optimal schedule actually need?
    let base = store_all(&costs);
    let sq = sqrt_schedule(&costs);
    let budget = sq.peak_bytes;
    println!("\nrematerialization under a {} MiB budget:", budget / (1 << 20));
    println!(
        "  store-all : {} MiB, no recompute",
        base.peak_bytes / (1 << 20)
    );
    println!(
        "  sqrt(n)   : {} MiB, {:.2} GFLOP recompute/step",
        sq.peak_bytes / (1 << 20),
        sq.recompute_flops as f64 / 1e9
    );
    match optimal_schedule(&costs, budget) {
        Some(opt) => println!(
            "  optimal   : {} MiB, {:.2} GFLOP recompute/step ({} checkpoints)",
            opt.peak_bytes / (1 << 20),
            opt.recompute_flops as f64 / 1e9,
            opt.checkpoints.len()
        ),
        None => println!("  optimal   : budget infeasible"),
    }

    // 3) carbon: a realistic campaign — 200 epochs over a 100k-sample
    // corpus (the tutorial's point: designers train numerous times)
    let steps = 200 * 100_000u64;
    let total_flops = profile.train_step_flops() * steps;
    let hw = HardwareProfile::datacenter_gpu();
    let energy = energy_for(&hw, total_flops, 1.4);
    println!(
        "\ntraining campaign: {:.1} hours, {:.1} kWh",
        energy.seconds / 3600.0,
        energy.total_kwh
    );
    for region in Region::all() {
        let c = CarbonReport::from_energy(&energy, region);
        println!("  if run in {:<14}: {:>8.0} gCO2e", region.name(), c.grams_co2e);
    }
    let job = Job {
        kwh: energy.total_kwh,
        hours: (energy.seconds / 3600.0).ceil() as usize,
        deadline: 48,
    };
    let naive = schedule_jobs(
        &[job],
        SchedulePolicy::NaiveImmediate {
            home: Region::MixedAverage,
        },
    );
    let aware = schedule_jobs(&[job], SchedulePolicy::CarbonAware);
    let p = &aware.placements[0];
    println!(
        "scheduler: naive {:.0} gCO2e -> carbon-aware {:.0} gCO2e ({} at hour {})",
        naive.total_grams,
        aware.total_grams,
        p.region.name(),
        p.start_hour
    );
}
