//! Quickstart: train a classifier, inspect its costs, compress it.
//!
//! ```text
//! cargo run --release -p dl-bench --example quickstart
//! ```

use dl_compress::{magnitude_prune, quantize_network, QuantScheme};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

fn main() {
    // 1. Data: a procedural MNIST stand-in (12x12 digit glyphs).
    let data = dl_data::digits_dataset(800, 0.1, 42);
    let (train, test) = data.split(0.25, 43);
    println!("train: {} samples, test: {}", train.len(), test.len());

    // 2. Model: a small MLP. Everything is seeded — rerun and you get the
    //    exact same numbers.
    let mut rng = init::rng(44);
    let mut net = Network::mlp(&[144, 64, 10], &mut rng);

    // 3. Train, with the systems instrumentation the tutorial calls for.
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    let history = trainer.fit(&mut net, &train);
    let last = history.last().expect("at least one epoch");
    println!(
        "trained {} epochs | loss {:.4} | train acc {:.3} | {:.1} MFLOP spent",
        history.len(),
        last.train_loss,
        last.train_accuracy,
        last.cumulative_flops as f64 / 1e6
    );
    println!("test accuracy: {:.3}", Trainer::evaluate(&mut net, &test));

    // 4. The resource half of the tutorial's metric pairs.
    let profile = net.cost_profile(1);
    println!(
        "model: {} params ({} KiB), {} FLOP per inference",
        profile.params,
        profile.param_bytes() / 1024,
        profile.forward_flops
    );

    // 5. Compression: int8 quantization, then 70% pruning on top.
    let (mut q8, report) = quantize_network(&net, QuantScheme::Affine { bits: 8 });
    println!(
        "int8: {:.1}x smaller, test acc {:.3}",
        report.ratio(),
        Trainer::evaluate(&mut q8, &test)
    );
    let mut pruned = net.clone();
    let prune_report = magnitude_prune(&mut pruned, 0.7);
    println!(
        "70% pruned: {} of {} weights left, test acc {:.3}",
        prune_report.params_after,
        prune_report.params_before,
        Trainer::evaluate(&mut pruned, &test)
    );
}
