//! Model inspection end to end: store intermediates while training, then
//! answer the questions §4.2's systems were built for.
//!
//! Combines the Mistique-lite store, DeepBase-lite queries, DeepVis-lite
//! evolution analysis, network inversion, and Data-Canopy statistics over
//! the training log — the interpretability stack working as one tool.
//!
//! ```text
//! cargo run --release -p dl-bench --example model_inspector
//! ```

use dl_data::DataCanopy;
use dl_interpret::store::IntermediateKey;
use dl_interpret::{
    class_correlation_evolution, dead_unit_census, invert_input, ActivationQuery,
    IntermediateStore, InversionConfig,
};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

fn main() {
    // train a digit model, storing hidden activations at every epoch
    let data = dl_data::digits_dataset(300, 0.1, 1);
    let mut net = Network::mlp(&[144, 32, 10], &mut init::rng(2));
    let mut store = IntermediateStore::new();
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    let epochs: Vec<u32> = (0..10).collect();
    let mut loss_curve = Vec::new();
    for &e in &epochs {
        if e > 0 {
            let recs = trainer.fit(&mut net, &data);
            loss_curve.push(f64::from(recs[0].train_loss));
        }
        let trace = net.forward_trace(&data.x, false);
        store.put(
            IntermediateKey {
                snapshot: e,
                layer: 2,
            },
            &trace[2],
        );
    }
    let stats = store.stats();
    println!(
        "stored {} snapshots: {} logical -> {} physical bytes ({:.1}x)",
        stats.matrices,
        stats.logical_bytes,
        stats.physical_bytes,
        stats.ratio()
    );

    // DeepBase-lite: which hidden units track the digit "3"?
    let (final_acts, _) = store
        .get(IntermediateKey {
            snapshot: 9,
            layer: 2,
        })
        .expect("stored");
    let q = ActivationQuery::CorrelatesWithClass { class: 3 }.run(&final_acts, &data.y);
    println!("\nunits tracking digit 3 (top 3):");
    for u in q.units.iter().take(3) {
        println!("  unit {:>2}  corr {:+.3}", u.unit, u.score);
    }

    // DeepVis-lite: when did the best unit specialize?
    let trajectories = class_correlation_evolution(&store, 2, &epochs, &data.y, 3);
    let best = trajectories
        .iter()
        .max_by(|a, b| a.last().abs().total_cmp(&b.last().abs()))
        .expect("non-empty");
    println!(
        "\nunit {}'s selectivity across epochs: {:?}",
        best.unit,
        best.values
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    match best.onset(0.5) {
        Some(e) => println!("specialization onset: epoch {e}"),
        None => println!("never crossed |corr| = 0.5"),
    }
    let dead = dead_unit_census(&store, 2, &epochs, 1e-6);
    println!("dead units per epoch: {:?}", dead.iter().map(|&(_, n)| n).collect::<Vec<_>>());

    // Network inversion: what does the second layer preserve of a "3"?
    let three = data
        .y
        .iter()
        .position(|&l| l == 3)
        .expect("a 3 exists");
    let x3 = data.x.select_rows(&[three]);
    let (inv, err) = invert_input(&net, 2, &x3, &InversionConfig::default());
    println!(
        "\ninversion from the hidden layer: activation residual {:.4}, \
         mean input-space error {:.3}",
        inv.residual, err
    );

    // Data-Canopy over the training log: exploratory stats without rescans
    if loss_curve.len() >= 4 {
        let canopy = DataCanopy::new(vec![loss_curve.iter().map(|&v| v as f32).collect()], 2);
        let n = loss_curve.len();
        println!(
            "\nloss curve: mean(first half) {:.4} -> mean(second half) {:.4}",
            canopy.mean(0, 0, n / 2),
            canopy.mean(0, n / 2, n)
        );
        println!(
            "canopy cache after both queries: {:?}",
            canopy.stats()
        );
    }
}
