//! Learned database components side by side with their classic baselines.
//!
//! The Part-2 story: a read-mostly store over 200k keys considers three
//! learned components — a learned index, a learned Bloom filter, and a
//! neural cardinality estimator — plus an RL knob tuner, and measures
//! each against the structure it would replace.
//!
//! ```text
//! cargo run --release -p dl-bench --example learned_database
//! ```

use dl_data::{CorrelatedTable, KeyDistribution, RangePredicate};
use dl_learneddb::cardinality::q_error;
use dl_learneddb::tuner::{random_search, tuner_rng};
use dl_learneddb::{
    BTreeIndex, BloomFilter, DbSimulator, HistogramEstimator, LearnedBloom, NeuralEstimator,
    QLearningTuner, RecursiveModelIndex,
};
use dl_tensor::init;

fn main() {
    // --- access path: learned index vs B-tree --------------------------
    let keys = KeyDistribution::Lognormal.generate(200_000, 1);
    println!("indexing {} lognormal keys", keys.len());
    let bt = BTreeIndex::build_default(keys.clone());
    let rmi = RecursiveModelIndex::build(keys.clone(), 256);
    let (mean_window, max_window) = rmi.error_profile();
    println!(
        "  b-tree: {} B, depth {}  |  rmi: {} B, mean window {:.1} (max {})",
        bt.size_bytes(),
        bt.depth(),
        rmi.size_bytes(),
        mean_window,
        max_window
    );
    let probe = keys[keys.len() / 3];
    assert_eq!(bt.lookup(probe).0, rmi.lookup(probe).0, "indexes must agree");

    // --- membership: learned Bloom vs classic --------------------------
    let member_keys: Vec<u64> = (0..20_000u64).map(|i| i * 4).collect();
    let mut rng = init::rng(2);
    let negatives = dl_data::keys::absent_keys(&member_keys, 20_000, &mut rng);
    let mut classic = BloomFilter::with_fpr(member_keys.len(), 0.02);
    for &k in &member_keys {
        classic.insert(k);
    }
    let mut learned = LearnedBloom::build(&member_keys, &negatives, 0.02, 3);
    let test_neg = dl_data::keys::absent_keys(&member_keys, 10_000, &mut rng);
    println!("\nmembership filters at 2% target FPR:");
    println!(
        "  classic: {} B, measured FPR {:.4}",
        classic.size_bytes(),
        classic.empirical_fpr(&test_neg)
    );
    println!(
        "  learned: {} B, measured FPR {:.4}",
        learned.size_bytes(),
        learned.empirical_fpr(&test_neg)
    );

    // --- cardinality: neural vs histogram on correlated columns --------
    let table = CorrelatedTable::generate(6000, 5, 0.9, 4);
    let hist = HistogramEstimator::build(&table, 32);
    let mut neural = NeuralEstimator::train(&table, 800, 3, 5);
    let mut qrng = init::rng(6);
    let (mut hq, mut nq) = (Vec::new(), Vec::new());
    for _ in 0..50 {
        let p = RangePredicate::sample(5, 3, &mut qrng);
        let truth = table.true_selectivity(&p);
        hq.push(q_error(hist.estimate(&p), truth, table.rows()));
        nq.push(q_error(neural.estimate(&p), truth, table.rows()));
    }
    hq.sort_by(f64::total_cmp);
    nq.sort_by(f64::total_cmp);
    println!("\n3-attribute selectivity on 0.9-correlated columns (median q-error):");
    println!("  histogram+independence: {:.2}", hq[hq.len() / 2]);
    println!("  neural estimator:       {:.2}", nq[nq.len() / 2]);

    // --- knob tuning: RL vs random under one budget --------------------
    let db = DbSimulator::new(8, 0.7, 0.2);
    let (_, optimum) = db.optimum();
    let mut tuner = QLearningTuner::new(8);
    let mut trng = tuner_rng(7);
    let (best_cfg, best, evals) = tuner.tune(&db, 25, 20, &mut trng);
    let mut rrng = tuner_rng(8);
    let (_, rand_best) = random_search(&db, evals, &mut rrng);
    println!("\nknob tuning ({evals} evaluations):");
    println!("  exhaustive optimum: {optimum:.0} ops/s");
    println!(
        "  q-learning: {best:.0} ops/s at buffer={} page={} compaction={}",
        best_cfg.buffer_pool, best_cfg.page_size, best_cfg.compaction
    );
    println!("  random search: {rand_best:.0} ops/s");
}
