//! Deterministic request routing across replicas.
//!
//! The cluster tier hands every arrival to a [`Router`], which picks one
//! replica from the currently-eligible set (up, activated, not
//! draining). All three policies are fully deterministic: round-robin
//! keeps a cursor, least-loaded breaks ties on the lower replica index,
//! and power-of-two-choices draws its two candidates from a seeded
//! `StdRng` owned by the router, so a seeded cluster run routes
//! identically every time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the cluster spreads arrivals across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cycle through eligible replicas in index order.
    RoundRobin,
    /// Pick the eligible replica with the fewest queued + in-flight
    /// requests; ties break on the lower index.
    LeastLoaded,
    /// Sample two distinct eligible replicas from a seeded stream and
    /// keep the less loaded — the classic load-balancing compromise
    /// between RR's obliviousness and least-loaded's global scan.
    PowerOfTwoChoices {
        /// Seed for the router's private candidate-sampling stream.
        seed: u64,
    },
}

/// Routing state for one cluster run.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    cursor: usize,
    rng: Option<StdRng>,
}

impl Router {
    /// A fresh router for the given policy.
    #[must_use]
    pub fn new(policy: RouterPolicy) -> Self {
        let rng = match policy {
            RouterPolicy::PowerOfTwoChoices { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Router {
            policy,
            cursor: 0,
            rng,
        }
    }

    /// Picks a replica from `candidates` (eligible replica ids, ascending)
    /// given `loads` indexed by replica id. Returns `None` when no replica
    /// is eligible. The round-robin cursor and the power-of-two RNG
    /// advance on every successful pick, never on an empty set.
    pub fn route(&mut self, candidates: &[usize], loads: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let pick = match self.policy {
            RouterPolicy::RoundRobin => {
                let pick = candidates[self.cursor % candidates.len()];
                self.cursor = self.cursor.wrapping_add(1);
                pick
            }
            RouterPolicy::LeastLoaded => *candidates
                .iter()
                .min_by_key(|&&c| (loads[c], c))
                .expect("non-empty"),
            RouterPolicy::PowerOfTwoChoices { .. } => {
                let rng = self.rng.as_mut().expect("p2c router has an rng");
                if candidates.len() == 1 {
                    candidates[0]
                } else {
                    let i = rng.gen_range(0..candidates.len());
                    let mut j = rng.gen_range(0..candidates.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    let (a, b) = (candidates[i], candidates[j]);
                    if (loads[a], a) <= (loads[b], b) {
                        a
                    } else {
                        b
                    }
                }
            }
        };
        Some(pick)
    }

    /// As [`Router::route`], but residency-aware: when some candidates
    /// already hold the requested model's weights (`resident[c]`), the
    /// choice is restricted to those — a warm replica at any load beats
    /// paying a cold artifact load. When every candidate is cold the full
    /// set competes as usual (someone has to fault the model in). The
    /// underlying policy still decides *within* the preferred set, so
    /// routing stays deterministic.
    pub fn route_residency(
        &mut self,
        candidates: &[usize],
        loads: &[usize],
        resident: &[bool],
    ) -> Option<usize> {
        let warm: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| resident[c])
            .collect();
        if warm.is_empty() {
            self.route(candidates, loads)
        } else {
            self.route(&warm, loads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_eligible_set() {
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let loads = [0usize; 4];
        let picks: Vec<_> = (0..6)
            .map(|_| r.route(&[0, 2, 3], &loads).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
        assert_eq!(r.route(&[], &loads), None);
    }

    #[test]
    fn least_loaded_breaks_ties_low_index() {
        let mut r = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(r.route(&[0, 1, 2], &[5, 2, 2]), Some(1));
        assert_eq!(r.route(&[0, 1, 2], &[1, 1, 1]), Some(0));
        assert_eq!(r.route(&[2], &[9, 9, 7]), Some(2));
    }

    #[test]
    fn residency_routing_prefers_warm_replicas() {
        let mut r = Router::new(RouterPolicy::LeastLoaded);
        // A warm replica wins even when colder replicas are idle.
        assert_eq!(
            r.route_residency(&[0, 1, 2], &[0, 0, 9], &[false, false, true]),
            Some(2)
        );
        // Two warm replicas: the policy decides within the warm set.
        assert_eq!(
            r.route_residency(&[0, 1, 2], &[4, 9, 7], &[true, false, true]),
            Some(0)
        );
        // Everyone cold: plain routing over the full candidate set.
        assert_eq!(
            r.route_residency(&[0, 1, 2], &[5, 2, 2], &[false, false, false]),
            Some(1)
        );
        assert_eq!(r.route_residency(&[], &[], &[]), None);
    }

    #[test]
    fn power_of_two_is_seed_deterministic_and_load_aware() {
        let loads = [10usize, 0, 10, 10];
        let run = |seed| {
            let mut r = Router::new(RouterPolicy::PowerOfTwoChoices { seed });
            (0..64)
                .map(|_| r.route(&[0, 1, 2, 3], &loads).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed, same routing");
        assert_ne!(run(9), run(10), "different seeds explore differently");
        // The idle replica wins every comparison it appears in, so it
        // must take a clear majority of picks.
        let to_idle = run(9).iter().filter(|&&p| p == 1).count();
        assert!(to_idle > 24, "idle replica only got {to_idle}/64 picks");
        // Single candidate: no draw consumed, still deterministic.
        let mut r = Router::new(RouterPolicy::PowerOfTwoChoices { seed: 3 });
        assert_eq!(r.route(&[2], &loads), Some(2));
    }
}
