//! Replicated serving behind a deterministic router, with chaos.
//!
//! N [`ReplicaEngine`]s — each the full single-node event loop state
//! (its own queues, batcher, admission controller) — share one simulated
//! timeline on the recorder's `VirtualClock`. A [`Router`] spreads
//! arrivals; `dl_distributed::FaultPlan` injects replica crashes
//! (in-flight and queued requests lost, or re-routed under a bounded
//! [`RetryPolicy`] with an optional hedged duplicate), MTTR-driven
//! rejoins with cold-queue warmup, degraded links that inflate dispatch
//! latency through `link_factor_at`, and stragglers that stretch a
//! replica's service time through `slowdown_at`. An optional reactive
//! [`Autoscaler`] resizes the fleet from the observed arrival rate and
//! the family's measured cost tables.
//!
//! Everything is event-ordered and seeded, so a cluster run is
//! byte-identical across reruns — and a fault-free one-replica cluster
//! is bit-identical (report and latency histogram) to single-node
//! [`crate::serve`], which the regression test below pins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dl_distributed::FaultPlan;
use dl_nn::Dataset;
use dl_obs::{fields, Recorder};

use crate::autoscale::{replica_capacity_rps, AutoscaleConfig, Autoscaler};
use crate::engine::{assemble_report, ReplicaEngine, ServeConfig};
use crate::load::Request;
use crate::report::ServeReport;
use crate::router::{Router, RouterPolicy};
use crate::variant::VariantRegistry;

/// What happens to requests a crashed replica was holding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How many times one request may be re-routed after crash loss
    /// before it counts as lost (0 = fire and forget).
    pub max_retries: usize,
    /// When set, every request gets a hedged duplicate dispatched to a
    /// *different* replica if it has not completed this many seconds
    /// after first dispatch; the first completion wins, the loser's work
    /// is wasted but harmless.
    pub hedge_delay_s: Option<f64>,
}

impl RetryPolicy {
    /// No retries, no hedging: crash losses are final.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            hedge_delay_s: None,
        }
    }

    /// Bounded re-routing after crash loss.
    #[must_use]
    pub fn retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            hedge_delay_s: None,
        }
    }

    /// Bounded retries plus a hedged duplicate after `delay_s`.
    ///
    /// # Panics
    /// Panics when the hedge delay is not positive-finite.
    #[must_use]
    pub fn hedged(max_retries: usize, delay_s: f64) -> Self {
        assert!(
            delay_s.is_finite() && delay_s > 0.0,
            "hedge delay must be positive, got {delay_s}"
        );
        RetryPolicy {
            max_retries,
            hedge_delay_s: Some(delay_s),
        }
    }
}

/// One cluster run's configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Initial replica count (fault-plan worker ids address these).
    pub replicas: usize,
    /// Per-replica serving configuration (batcher, admission, device).
    pub engine: ServeConfig,
    /// How arrivals spread across replicas.
    pub router: RouterPolicy,
    /// Crash-loss handling.
    pub retry: RetryPolicy,
    /// The chaos schedule, in step time.
    pub faults: FaultPlan,
    /// Simulated seconds per fault-plan step (maps `at_step` to the
    /// serving timeline).
    pub seconds_per_step: f64,
    /// Base router→replica dispatch latency; inflated by
    /// `1 / link_factor_at(step)` while links are degraded. Zero means
    /// arrivals reach their replica instantly (the single-node-identical
    /// default).
    pub dispatch_s: f64,
    /// Cold-queue warmup window after a rejoin or scale-up activation.
    pub warmup_s: f64,
    /// Service-time multiplier (>= 1) while a replica is warming up.
    pub warmup_factor: f64,
    /// Reactive fleet sizing; `None` keeps `replicas` fixed.
    pub autoscale: Option<AutoscaleConfig>,
}

impl ClusterConfig {
    /// A fault-free fixed-size cluster: round-robin routing, no retries,
    /// instant dispatch, no warmup, no autoscaling.
    ///
    /// # Panics
    /// Panics when `replicas` is zero.
    #[must_use]
    pub fn new(replicas: usize, engine: ServeConfig) -> Self {
        assert!(replicas > 0, "need at least one replica");
        ClusterConfig {
            replicas,
            engine,
            router: RouterPolicy::RoundRobin,
            retry: RetryPolicy::none(),
            faults: FaultPlan::none(),
            seconds_per_step: 1.0,
            dispatch_s: 0.0,
            warmup_s: 0.0,
            warmup_factor: 1.0,
            autoscale: None,
        }
    }
}

/// Per-replica accounting over one cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct ReplicaReport {
    /// Replica id (initial replicas first, autoscaled ones after).
    pub replica: usize,
    /// Requests this replica answered (first completions only).
    pub served: usize,
    /// Batches it flushed.
    pub batches: usize,
    /// Completions discarded because another replica answered first.
    pub wasted: usize,
    /// Crash events it suffered.
    pub crashes: usize,
    /// Rejoin events it saw.
    pub rejoins: usize,
}

/// One autoscaler decision, for reaction-time analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Decision time, simulated seconds.
    pub at_s: f64,
    /// Provisioned fleet size the decision targets (activations may
    /// still be in their provisioning delay).
    pub target: usize,
}

/// The measured outcome of one cluster run.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct ClusterReport {
    /// Aggregate serving metrics across all replicas (latencies measured
    /// from original arrival, so crash-retried requests carry their lost
    /// time into the tail).
    pub serve: ServeReport,
    /// Per-replica breakdown.
    pub per_replica: Vec<ReplicaReport>,
    /// Requests lost to crashes after retries ran out (or no replica was
    /// up to retry on).
    pub lost: usize,
    /// Arrivals that found no routable replica.
    pub unavailable: usize,
    /// Crash-loss re-routes performed.
    pub retried: usize,
    /// Hedged duplicates dispatched.
    pub hedged: usize,
    /// Total crash events applied.
    pub crashes: usize,
    /// Total rejoin events applied.
    pub rejoins: usize,
    /// Largest provisioned fleet size reached.
    pub peak_replicas: usize,
    /// Provisioned (non-retired) replicas at the end of the run.
    pub final_replicas: usize,
    /// Autoscaler decisions, in time order.
    pub scale_events: Vec<ScaleEvent>,
}

impl ClusterReport {
    /// Fraction of offered requests that got no answer: admission sheds,
    /// routing unavailability and crash losses combined.
    #[must_use]
    pub fn failure_fraction(&self) -> f64 {
        if self.serve.offered == 0 {
            return 0.0;
        }
        (self.serve.shed + self.unavailable + self.lost) as f64 / self.serve.offered as f64
    }
}

/// A request in transit to a replica (delayed dispatch).
#[derive(Debug, Clone, Copy)]
struct Delivery {
    at_s: f64,
    seq: u64,
    replica: usize,
    req: Request,
}

/// A pending hedge timer for one request id.
#[derive(Debug, Clone, Copy)]
struct HedgeTimer {
    at_s: f64,
    seq: u64,
    id: u64,
}

macro_rules! time_ordered {
    ($ty:ty) => {
        impl PartialEq for $ty {
            fn eq(&self, other: &Self) -> bool {
                self.at_s.total_cmp(&other.at_s).is_eq() && self.seq == other.seq
            }
        }
        impl Eq for $ty {}
        impl PartialOrd for $ty {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $ty {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.at_s
                    .total_cmp(&other.at_s)
                    .then(self.seq.cmp(&other.seq))
            }
        }
    };
}
time_ordered!(Delivery);
time_ordered!(HedgeTimer);

struct Replica {
    engine: ReplicaEngine,
    up: bool,
    retired: bool,
    draining: bool,
    warm_until_s: f64,
    crashes: usize,
    rejoins: usize,
}

/// Serves `requests` (sorted by arrival, ids dense from 0) on a
/// replicated cluster under `cfg`'s chaos schedule.
///
/// # Panics
/// Panics when request ids are not the dense `0..requests.len()` range
/// the open-loop generators produce (per-request retry/hedge state is
/// indexed by id).
pub fn serve_cluster(
    registry: &mut VariantRegistry,
    data: &Dataset,
    requests: &[Request],
    cfg: &ClusterConfig,
    rec: &dyn Recorder,
) -> ClusterReport {
    assert!(cfg.replicas > 0, "need at least one replica");
    assert!(
        cfg.seconds_per_step > 0.0 && cfg.seconds_per_step.is_finite(),
        "seconds_per_step must be positive"
    );
    assert!(cfg.warmup_factor >= 1.0, "warmup factor must be >= 1");
    let n = requests.len();
    for (i, r) in requests.iter().enumerate() {
        assert!(r.id == i as u64, "request ids must be dense 0..n");
    }
    let n_variants = registry.variants.len() as u32;
    let step_of = |t_s: f64| (t_s / cfg.seconds_per_step) as usize;

    let mut replicas: Vec<Replica> = (0..cfg.replicas)
        .map(|r| Replica {
            engine: ReplicaEngine::new(registry, &cfg.engine, r as u32 * n_variants),
            up: true,
            retired: false,
            draining: false,
            warm_until_s: 0.0,
            crashes: 0,
            rejoins: 0,
        })
        .collect();
    let mut router = Router::new(cfg.router);
    let mut autoscaler = cfg.autoscale.clone().map(Autoscaler::new);
    let capacity_rps = registry
        .index_of(&cfg.engine.primary)
        .map(|p| replica_capacity_rps(&cfg.engine.device, &registry.variants[p]))
        .unwrap_or(0.0);

    // Membership fault schedule mapped onto the serving timeline.
    let membership: Vec<(f64, usize, bool)> = cfg
        .faults
        .events()
        .iter()
        .filter_map(|e| match *e {
            dl_distributed::FaultEvent::WorkerCrash { worker, at_step } => {
                Some((at_step as f64 * cfg.seconds_per_step, worker, true))
            }
            dl_distributed::FaultEvent::WorkerRejoin { worker, at_step } => {
                Some((at_step as f64 * cfg.seconds_per_step, worker, false))
            }
            _ => None,
        })
        .collect();
    let mut fault_idx = 0usize;

    // Per-request cluster state, indexed by dense id.
    let mut completed = vec![false; n];
    let mut attempts = vec![0u32; n];
    let mut home = vec![usize::MAX; n];

    let mut deliveries: BinaryHeap<Reverse<Delivery>> = BinaryHeap::new();
    let mut hedges: BinaryHeap<Reverse<HedgeTimer>> = BinaryHeap::new();
    let mut activations: Vec<f64> = Vec::new();
    let mut seq = 0u64;

    let mut lost = 0usize;
    let mut unavailable = 0usize;
    let mut retried = 0usize;
    let mut hedged = 0usize;
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut peak = cfg.replicas;

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;

    loop {
        // ---- next event time -------------------------------------------
        let drain = next_arrival >= n && deliveries.is_empty();
        let work_remains = next_arrival < n
            || !deliveries.is_empty()
            || replicas.iter().any(|r| !r.retired && r.engine.load() > 0);
        let mut t_next = f64::INFINITY;
        for r in replicas.iter().filter(|r| !r.retired && r.up) {
            if let Some(t) = r.engine.next_completion_s() {
                t_next = t_next.min(t);
            }
            if let Some(t) = r.engine.next_flush_deadline_s(&cfg.engine.batch, now, drain) {
                t_next = t_next.min(t);
            }
        }
        if next_arrival < n {
            t_next = t_next.min(requests[next_arrival].arrival_s);
        }
        if let Some(Reverse(d)) = deliveries.peek() {
            t_next = t_next.min(d.at_s);
        }
        if let Some(Reverse(h)) = hedges.peek() {
            t_next = t_next.min(h.at_s);
        }
        if fault_idx < membership.len() && work_remains {
            t_next = t_next.min(membership[fault_idx].0);
        }
        if work_remains {
            for &t in &activations {
                t_next = t_next.min(t);
            }
            if let Some(a) = &autoscaler {
                t_next = t_next.min(a.next_eval_s());
            }
        }
        if t_next.is_infinite() {
            break;
        }
        now = now.max(t_next);
        rec.clock().set(now);

        // ---- 1: completion (earliest due batch, lowest replica) --------
        let due = replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.retired && r.up)
            .filter_map(|(i, r)| r.engine.next_completion_s().map(|t| (t, i)))
            .filter(|&(t, _)| t <= now)
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if let Some((_, i)) = due {
            let done = replicas[i]
                .engine
                .try_complete(now, rec, &mut |req: &Request| {
                    let id = req.id as usize;
                    if completed[id] {
                        false
                    } else {
                        completed[id] = true;
                        true
                    }
                });
            debug_assert!(done, "selected completion must fire");
            retire_if_drained(&mut replicas, i);
            continue;
        }

        // ---- 2: membership fault events --------------------------------
        if fault_idx < membership.len() && membership[fault_idx].0 <= now {
            let (_, worker, is_crash) = membership[fault_idx];
            fault_idx += 1;
            if let Some(r) = replicas.get_mut(worker) {
                if is_crash && !r.retired && r.up {
                    r.up = false;
                    r.crashes += 1;
                    rec.add_counter("cluster.crash", 1);
                    rec.instant(
                        worker as u32 * n_variants,
                        "cluster.crash",
                        fields! { "replica" => worker },
                    );
                    let dropped = r.engine.crash_drain(rec);
                    for req in dropped {
                        let id = req.id as usize;
                        if completed[id] {
                            continue;
                        }
                        if (attempts[id] as usize) < cfg.retry.max_retries {
                            attempts[id] += 1;
                            match dispatch(
                                req,
                                None,
                                dl_trace::DispatchKind::Retry,
                                attempts[id],
                                now,
                                cfg,
                                &mut router,
                                &mut replicas,
                                registry,
                                &mut deliveries,
                                &mut seq,
                                &mut home,
                                rec,
                            ) {
                                true => {
                                    retried += 1;
                                    rec.add_counter("cluster.retried", 1);
                                }
                                false => {
                                    lost += 1;
                                    rec.add_counter("cluster.lost", 1);
                                    dl_trace::emit_lost(
                                        rec,
                                        worker as u32 * n_variants,
                                        dl_trace::SpanContext {
                                            request: dl_trace::RequestId(req.id),
                                            attempt: attempts[id],
                                        },
                                    );
                                }
                            }
                        } else {
                            lost += 1;
                            rec.add_counter("cluster.lost", 1);
                            dl_trace::emit_lost(
                                rec,
                                worker as u32 * n_variants,
                                dl_trace::SpanContext {
                                    request: dl_trace::RequestId(req.id),
                                    attempt: attempts[id],
                                },
                            );
                        }
                    }
                    retire_if_drained(&mut replicas, worker);
                } else if !is_crash && !r.retired && !r.up {
                    r.up = true;
                    r.rejoins += 1;
                    r.warm_until_s = now + cfg.warmup_s;
                    rec.add_counter("cluster.rejoin", 1);
                    rec.instant(
                        worker as u32 * n_variants,
                        "cluster.rejoin",
                        fields! { "replica" => worker },
                    );
                }
            }
            continue;
        }

        // ---- 3: scale-up activations ----------------------------------
        if let Some(pos) = activations.iter().position(|&t| t <= now) {
            activations.swap_remove(pos);
            let idx = replicas.len();
            replicas.push(Replica {
                engine: ReplicaEngine::new(registry, &cfg.engine, idx as u32 * n_variants),
                up: true,
                retired: false,
                draining: false,
                warm_until_s: now + cfg.warmup_s,
                crashes: 0,
                rejoins: 0,
            });
            peak = peak.max(provisioned(&replicas) + activations.len());
            rec.instant(
                idx as u32 * n_variants,
                "cluster.scale_up",
                fields! { "replica" => idx },
            );
            continue;
        }

        // ---- 4: deliveries (dispatched arrivals reaching replicas) -----
        if deliveries.peek().is_some_and(|Reverse(d)| d.at_s <= now) {
            let Reverse(d) = deliveries.pop().expect("peeked");
            let id = d.req.id as usize;
            if completed[id] {
                continue; // hedge twin already answered
            }
            let target = &mut replicas[d.replica];
            if target.retired || !target.up {
                // The replica died while the request was in flight.
                if (attempts[id] as usize) < cfg.retry.max_retries {
                    attempts[id] += 1;
                    if dispatch(
                        d.req,
                        Some(d.replica),
                        dl_trace::DispatchKind::Retry,
                        attempts[id],
                        now,
                        cfg,
                        &mut router,
                        &mut replicas,
                        registry,
                        &mut deliveries,
                        &mut seq,
                        &mut home,
                        rec,
                    ) {
                        retried += 1;
                        rec.add_counter("cluster.retried", 1);
                    } else {
                        lost += 1;
                        rec.add_counter("cluster.lost", 1);
                        dl_trace::emit_lost(
                            rec,
                            d.replica as u32 * n_variants,
                            dl_trace::SpanContext {
                                request: dl_trace::RequestId(d.req.id),
                                attempt: attempts[id],
                            },
                        );
                    }
                } else {
                    lost += 1;
                    rec.add_counter("cluster.lost", 1);
                    dl_trace::emit_lost(
                        rec,
                        d.replica as u32 * n_variants,
                        dl_trace::SpanContext {
                            request: dl_trace::RequestId(d.req.id),
                            attempt: attempts[id],
                        },
                    );
                }
            } else {
                let _ = target
                    .engine
                    .admit_arrival(d.req, registry, &cfg.engine, now, rec);
            }
            continue;
        }

        // ---- 5: hedge timers -------------------------------------------
        if hedges.peek().is_some_and(|Reverse(h)| h.at_s <= now) {
            let Reverse(h) = hedges.pop().expect("peeked");
            let id = h.id as usize;
            if !completed[id]
                && dispatch(
                    requests[id],
                    Some(home[id]),
                    dl_trace::DispatchKind::Hedge,
                    attempts[id],
                    now,
                    cfg,
                    &mut router,
                    &mut replicas,
                    registry,
                    &mut deliveries,
                    &mut seq,
                    &mut home,
                    rec,
                )
            {
                hedged += 1;
                rec.add_counter("cluster.hedged", 1);
            }
            continue;
        }

        // ---- 6: arrivals ------------------------------------------------
        if next_arrival < n && requests[next_arrival].arrival_s <= now {
            let req = requests[next_arrival];
            next_arrival += 1;
            if let Some(a) = &mut autoscaler {
                a.observe_arrival(req.arrival_s);
            }
            if dispatch(
                req,
                None,
                dl_trace::DispatchKind::Primary,
                0,
                now,
                cfg,
                &mut router,
                &mut replicas,
                registry,
                &mut deliveries,
                &mut seq,
                &mut home,
                rec,
            ) {
                if let Some(delay) = cfg.retry.hedge_delay_s {
                    hedges.push(Reverse(HedgeTimer {
                        at_s: now + delay,
                        seq,
                        id: req.id,
                    }));
                    seq += 1;
                }
            } else {
                unavailable += 1;
                rec.add_counter("cluster.unavailable", 1);
                dl_trace::emit_unavailable(rec, 0, req.id);
            }
            continue;
        }

        // ---- 7: autoscaler evaluation ----------------------------------
        if work_remains {
            if let Some(a) = &mut autoscaler {
                if a.next_eval_s() <= now {
                    let desired = a.evaluate(now, capacity_rps);
                    let current = provisioned(&replicas) + activations.len();
                    if desired > current {
                        let delay = a.config().provision_delay_s;
                        for _ in current..desired {
                            activations.push(now + delay);
                        }
                        peak = peak.max(desired);
                        scale_events.push(ScaleEvent {
                            at_s: now,
                            target: desired,
                        });
                        rec.add_counter("cluster.scale_up", (desired - current) as u64);
                    } else if desired < current {
                        let mut excess = current - desired;
                        // Cancel still-provisioning replicas first, then
                        // drain the highest-index live ones.
                        while excess > 0 && !activations.is_empty() {
                            activations.pop();
                            excess -= 1;
                        }
                        for i in (0..replicas.len()).rev() {
                            if excess == 0 {
                                break;
                            }
                            let r = &mut replicas[i];
                            if !r.retired && !r.draining {
                                r.draining = true;
                                excess -= 1;
                                rec.instant(
                                    i as u32 * n_variants,
                                    "cluster.scale_down",
                                    fields! { "replica" => i },
                                );
                            }
                        }
                        scale_events.push(ScaleEvent {
                            at_s: now,
                            target: desired,
                        });
                        rec.add_counter("cluster.scale_down", 1);
                        for i in 0..replicas.len() {
                            retire_if_drained(&mut replicas, i);
                        }
                    }
                    continue;
                }
            }
        }

        // ---- 8: flushes -------------------------------------------------
        for (i, r) in replicas.iter_mut().enumerate() {
            if !r.up || r.retired {
                continue;
            }
            let warm = if now < r.warm_until_s {
                cfg.warmup_factor
            } else {
                1.0
            };
            let factor = warm * cfg.faults.slowdown_at(step_of(now), i);
            let _ = r
                .engine
                .try_flush(registry, data, &cfg.engine, now, drain, factor, rec);
        }
    }

    // ---- report ---------------------------------------------------------
    let crashes: usize = replicas.iter().map(|r| r.crashes).sum();
    let rejoins: usize = replicas.iter().map(|r| r.rejoins).sum();
    let final_replicas = provisioned(&replicas);
    let meta: Vec<(usize, usize)> = replicas.iter().map(|r| (r.crashes, r.rejoins)).collect();
    let parts: Vec<_> = replicas.into_iter().map(|r| r.engine.into_parts()).collect();
    let per_replica: Vec<ReplicaReport> = parts
        .iter()
        .zip(&meta)
        .enumerate()
        .map(|(i, (p, &(c, j)))| ReplicaReport {
            replica: i,
            served: p.stats.iter().map(|s| s.served).sum(),
            batches: p.stats.iter().map(|s| s.batches).sum(),
            wasted: p.wasted,
            crashes: c,
            rejoins: j,
        })
        .collect();
    ClusterReport {
        serve: assemble_report(n, parts),
        per_replica,
        lost,
        unavailable,
        retried,
        hedged,
        crashes,
        rejoins,
        peak_replicas: peak,
        final_replicas,
        scale_events,
    }
}

/// Provisioned (non-retired) replica count.
fn provisioned(replicas: &[Replica]) -> usize {
    replicas.iter().filter(|r| !r.retired).count()
}

/// Retires a draining replica once it has no work left (a crashed
/// draining replica was already drained by the crash).
fn retire_if_drained(replicas: &mut [Replica], i: usize) {
    let r = &mut replicas[i];
    if r.draining && !r.retired && r.engine.is_idle() {
        r.retired = true;
    }
}

/// Routes `req` to an eligible replica (optionally excluding one) and
/// either admits it instantly (zero dispatch latency) or schedules a
/// delivery inflated by the current link factor. Returns false when no
/// replica is eligible.
///
/// `kind`/`attempt` describe the causal context ([`dl_trace::SpanContext`])
/// of this dispatch. The trace edge is emitted for every retry and hedge,
/// and for primaries only when delivery is delayed: an instantaneous
/// primary dispatch is indistinguishable from single-node admission, and
/// leaving it implicit keeps a fault-free one-replica cluster's timeline
/// bit-identical to single-node serving.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    req: Request,
    exclude: Option<usize>,
    kind: dl_trace::DispatchKind,
    attempt: u32,
    now: f64,
    cfg: &ClusterConfig,
    router: &mut Router,
    replicas: &mut [Replica],
    registry: &VariantRegistry,
    deliveries: &mut BinaryHeap<Reverse<Delivery>>,
    seq: &mut u64,
    home: &mut [usize],
    rec: &dyn Recorder,
) -> bool {
    let loads: Vec<usize> = replicas.iter().map(|r| r.engine.load()).collect();
    let candidates: Vec<usize> = replicas
        .iter()
        .enumerate()
        .filter(|(i, r)| r.up && !r.retired && !r.draining && Some(*i) != exclude)
        .map(|(i, _)| i)
        .collect();
    let Some(target) = router.route(&candidates, &loads) else {
        return false;
    };
    home[req.id as usize] = target;
    let delay = if cfg.dispatch_s > 0.0 {
        let step = (now / cfg.seconds_per_step) as usize;
        cfg.dispatch_s / cfg.faults.link_factor_at(step)
    } else {
        0.0
    };
    if delay > 0.0 || kind != dl_trace::DispatchKind::Primary {
        dl_trace::emit_dispatch(
            rec,
            target as u32 * registry.variants.len() as u32,
            dl_trace::SpanContext {
                request: dl_trace::RequestId(req.id),
                attempt,
            },
            target,
            kind,
        );
    }
    if delay > 0.0 {
        deliveries.push(Reverse(Delivery {
            at_s: now + delay,
            seq: *seq,
            replica: target,
            req,
        }));
        *seq += 1;
    } else {
        let _ = replicas[target]
            .engine
            .admit_arrival(req, registry, &cfg.engine, now, rec);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::batcher::BatchPolicy;
    use crate::device::DeviceModel;
    use crate::engine::serve;
    use crate::load::{open_loop, LoadConfig};
    use crate::variant::{build_family, FamilyConfig};
    use dl_distributed::FaultProfile;
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn family_and_data() -> (VariantRegistry, Dataset) {
        let data = dl_data::blobs(120, 3, 8, 6.0, 0.5, 70);
        let eval = dl_data::blobs(80, 3, 8, 6.0, 0.5, 71);
        let reg = build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 24, 3],
                student_hidden: vec![6],
                prune_sparsity: 0.7,
                morph_budget: 150,
                ensemble_members: 2,
                max_batch: 16,
                epochs: 9,
                seed: 80,
            },
        );
        (reg, eval)
    }

    fn base_cfg() -> ServeConfig {
        ServeConfig {
            batch: BatchPolicy::dynamic(16, 5e-6),
            admission: AdmissionPolicy::AcceptAll,
            primary: "fp32-base".into(),
            device: DeviceModel::nominal(),
        }
    }

    fn load(rate: f64, n: usize, seed: u64, rows: usize) -> Vec<Request> {
        open_loop(
            &LoadConfig {
                rate_rps: rate,
                requests: n,
                seed,
            },
            rows,
        )
    }

    #[test]
    fn one_replica_fault_free_is_bit_identical_to_single_node() {
        let (mut reg, eval) = family_and_data();
        let reqs = load(200_000.0, 500, 21, eval.x.dims()[0]);
        let single_rec = TimelineRecorder::new();
        let single = serve(&mut reg, &eval, &reqs, &base_cfg(), &single_rec);
        let cluster_rec = TimelineRecorder::new();
        let cluster = serve_cluster(
            &mut reg,
            &eval,
            &reqs,
            &ClusterConfig::new(1, base_cfg()),
            &cluster_rec,
        );
        assert_eq!(cluster.serve, single, "aggregate report must match exactly");
        assert_eq!(
            cluster_rec.histogram("serve.latency_s"),
            single_rec.histogram("serve.latency_s"),
            "latency histograms must be bit-identical"
        );
        assert_eq!(cluster_rec.events(), single_rec.events(), "full timelines match");
        assert_eq!(cluster.lost + cluster.unavailable + cluster.retried, 0);
        assert_eq!(cluster.per_replica.len(), 1);
        assert_eq!(cluster.per_replica[0].wasted, 0);
    }

    #[test]
    fn crashes_lose_work_without_retries_and_recover_with_them() {
        let (mut reg, eval) = family_and_data();
        let reqs = load(400_000.0, 800, 22, eval.x.dims()[0]);
        let horizon_s = reqs.last().unwrap().arrival_s * 1.5;
        let seconds_per_step = horizon_s / 64.0;
        let faults = FaultPlan::from_profile(&FaultProfile::crashes(5, 12.0, 6.0), 3, 64);
        assert!(faults.crash_count() >= 2, "profile must schedule crashes");
        let mk = |retry: RetryPolicy| ClusterConfig {
            retry,
            faults: faults.clone(),
            seconds_per_step,
            warmup_s: seconds_per_step,
            warmup_factor: 2.0,
            ..ClusterConfig::new(3, base_cfg())
        };
        let lossy = serve_cluster(&mut reg, &eval, &reqs, &mk(RetryPolicy::none()), &NullRecorder::new());
        assert!(lossy.crashes >= 2, "crashes must apply: {}", lossy.crashes);
        assert!(lossy.lost > 0, "fire-and-forget must lose crash work");
        assert_eq!(lossy.retried, 0);
        let retrying =
            serve_cluster(&mut reg, &eval, &reqs, &mk(RetryPolicy::retries(3)), &NullRecorder::new());
        assert!(retrying.retried > 0, "retries must fire");
        assert!(
            retrying.lost < lossy.lost,
            "retries must recover work: {} vs {}",
            retrying.lost,
            lossy.lost
        );
        assert!(
            retrying.serve.served > lossy.serve.served,
            "recovered work is served"
        );
        // Conservation: every offered request is accounted for.
        for r in [&lossy, &retrying] {
            assert_eq!(
                r.serve.served + r.serve.shed + r.lost + r.unavailable,
                r.serve.offered,
                "requests must be conserved"
            );
        }
    }

    #[test]
    fn cluster_runs_are_deterministic_for_every_router() {
        let (mut reg, eval) = family_and_data();
        let reqs = load(400_000.0, 400, 23, eval.x.dims()[0]);
        let horizon_s = reqs.last().unwrap().arrival_s * 1.5;
        let faults = FaultPlan::from_profile(&FaultProfile::crashes(9, 20.0, 8.0), 3, 64);
        for router in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::PowerOfTwoChoices { seed: 7 },
        ] {
            let cfg = ClusterConfig {
                router,
                retry: RetryPolicy::hedged(2, 3e-5),
                faults: faults.clone(),
                seconds_per_step: horizon_s / 64.0,
                dispatch_s: 1e-6,
                ..ClusterConfig::new(3, base_cfg())
            };
            let a = serve_cluster(&mut reg, &eval, &reqs, &cfg, &NullRecorder::new());
            let b = serve_cluster(&mut reg, &eval, &reqs, &cfg, &NullRecorder::new());
            assert_eq!(a, b, "router {router:?} must be deterministic");
            let rec = TimelineRecorder::new();
            let traced = serve_cluster(&mut reg, &eval, &reqs, &cfg, &rec);
            assert_eq!(a, traced, "tracing must not change the result");
        }
    }

    #[test]
    fn hedging_dispatches_duplicates_and_dedups_completions() {
        let (mut reg, eval) = family_and_data();
        let reqs = load(300_000.0, 400, 24, eval.x.dims()[0]);
        // A straggling replica 0 makes primary dispatches slow enough for
        // hedges to fire and win on other replicas.
        let faults = FaultPlan::new(vec![dl_distributed::FaultEvent::Straggler {
            worker: 0,
            slowdown: 50.0,
            from_step: 0,
            to_step: 64,
        }]);
        let horizon_s = reqs.last().unwrap().arrival_s * 1.5;
        let cfg = ClusterConfig {
            retry: RetryPolicy::hedged(1, 2e-5),
            faults,
            seconds_per_step: horizon_s / 64.0,
            ..ClusterConfig::new(2, base_cfg())
        };
        let r = serve_cluster(&mut reg, &eval, &reqs, &cfg, &NullRecorder::new());
        assert!(r.hedged > 0, "hedges must fire against a straggler");
        let wasted: usize = r.per_replica.iter().map(|p| p.wasted).sum();
        assert!(wasted > 0, "losing twins are wasted, not double-counted");
        assert_eq!(
            r.serve.served + r.serve.shed + r.lost + r.unavailable,
            r.serve.offered
        );
        assert!(r.serve.served <= r.serve.offered, "dedup holds");
    }

    #[test]
    fn every_wasted_hedge_twin_emits_a_loser_instant() {
        let (mut reg, eval) = family_and_data();
        let reqs = load(300_000.0, 400, 24, eval.x.dims()[0]);
        let faults = FaultPlan::new(vec![dl_distributed::FaultEvent::Straggler {
            worker: 0,
            slowdown: 50.0,
            from_step: 0,
            to_step: 64,
        }]);
        let horizon_s = reqs.last().unwrap().arrival_s * 1.5;
        let cfg = ClusterConfig {
            retry: RetryPolicy::hedged(1, 2e-5),
            faults,
            seconds_per_step: horizon_s / 64.0,
            ..ClusterConfig::new(2, base_cfg())
        };
        let rec = TimelineRecorder::new();
        let r = serve_cluster(&mut reg, &eval, &reqs, &cfg, &rec);
        let wasted: usize = r.per_replica.iter().map(|p| p.wasted).sum();
        assert!(wasted > 0, "scenario must produce losing twins");
        let losers = rec
            .events()
            .iter()
            .filter(|e| e.name == "hedge.loser")
            .count();
        assert_eq!(
            losers, wasted,
            "each deduped completion must be visible as a hedge.loser instant"
        );
        // Every loser names the request and replica that burned the slot.
        for e in rec.events().iter().filter(|e| e.name == "hedge.loser") {
            for key in ["request", "replica", "elapsed_s"] {
                assert!(
                    e.fields.iter().any(|(k, _)| k == key),
                    "hedge.loser missing field {key}"
                );
            }
        }
    }

    #[test]
    fn autoscaler_grows_fleet_under_load_and_drains_it_after() {
        let (mut reg, eval) = family_and_data();
        let device = DeviceModel::nominal();
        let cap = {
            let v = &reg.variants[0];
            replica_capacity_rps(&device, v)
        };
        let reqs = load(3.0 * cap, 1500, 25, eval.x.dims()[0]);
        let horizon_s = reqs.last().unwrap().arrival_s;
        let cfg = ClusterConfig {
            autoscale: Some(AutoscaleConfig::new(
                horizon_s / 50.0,
                horizon_s / 25.0,
                0.7,
                1,
                6,
                horizon_s / 100.0,
            )),
            warmup_s: horizon_s / 200.0,
            warmup_factor: 1.5,
            ..ClusterConfig::new(1, base_cfg())
        };
        let r = serve_cluster(&mut reg, &eval, &reqs, &cfg, &NullRecorder::new());
        assert!(
            r.peak_replicas > 1,
            "3x one replica's capacity must scale up: peak {}",
            r.peak_replicas
        );
        assert!(!r.scale_events.is_empty());
        assert_eq!(r.serve.served + r.serve.shed + r.lost + r.unavailable, r.serve.offered);
        assert_eq!(r.lost, 0, "no crashes, nothing lost");
        // Fixed 4-replica fleet at the same load: the autoscaled run's
        // tail should be in the same regime as over-provisioning, far
        // from the melted single-replica tail.
        let melted = serve_cluster(
            &mut reg,
            &eval,
            &reqs,
            &ClusterConfig::new(1, base_cfg()),
            &NullRecorder::new(),
        );
        assert!(
            r.serve.p99_s < melted.serve.p99_s,
            "autoscaling must beat the melted single replica: {} vs {}",
            r.serve.p99_s,
            melted.serve.p99_s
        );
    }
}
