//! Multi-model serving: a fleet of replicas hosting many families behind
//! one weight store per replica.
//!
//! The cluster tier scales one family across replicas; this tier hosts
//! *many* families whose weights do not all fit in device memory at
//! once. Each replica owns a [`WeightStore`] holding every family's
//! serialized artifact under a byte budget, plus one [`ReplicaEngine`]
//! per family (each family keeps a dedicated execution stream; the
//! contended resource modeled here is weight memory, not compute).
//! Arrivals are tagged with a model id and routed residency-first: a
//! warm replica at any load beats paying a cold artifact load. A cold
//! arrival faults the family in — evicting victims per the store's
//! policy — and its admission prediction is charged the modeled load
//! time, so cold starts show up in the tail *and* can flip an accept
//! into a shed.
//!
//! Warm fetches cost zero simulated time and record zero events, so a
//! one-replica one-family fleet with the family preloaded is
//! bit-identical to single-node [`crate::serve`] — report, histogram and
//! timeline (regression-tested below).

use dl_nn::Dataset;
use dl_obs::Recorder;

use crate::engine::{assemble_report, ReplicaEngine, ReplicaParts, ServeConfig};
use crate::load::Request;
use crate::report::ServeReport;
use crate::router::{Router, RouterPolicy};
use crate::store::{EvictionPolicy, WeightStore};
use crate::variant::VariantRegistry;

/// One arrival bound for a specific model family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelRequest {
    /// The request itself (id, arrival time, sample row).
    pub req: Request,
    /// Index into the served family list.
    pub model: usize,
}

/// One fleet run's configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-engine serving configuration (batching, admission, device).
    pub serve: ServeConfig,
    /// Replica count; each replica gets its own weight store.
    pub replicas: usize,
    /// Per-replica weight-store byte budget.
    pub store_budget_bytes: u64,
    /// How each store picks eviction victims.
    pub eviction: EvictionPolicy,
    /// How arrivals spread across replicas (within the warm subset when
    /// one exists).
    pub router: RouterPolicy,
    /// Preload families (in id order, first-fit against the budget) on
    /// every replica before the clock starts — deployment-time warmup.
    /// With a budget that fits everything this makes every fetch warm.
    pub warm_start: bool,
}

/// What a fleet run produced.
#[derive(Debug, Clone)]
#[must_use]
pub struct FleetReport {
    /// Aggregate over every request (per-variant stats merge by index
    /// across families, which share the standard family layout).
    pub report: ServeReport,
    /// One report per family, same order as the input family list.
    pub per_model: Vec<ServeReport>,
    /// Cold artifact loads across all replicas' stores.
    pub cold_loads: usize,
    /// Warm fetches across all replicas' stores.
    pub warm_hits: usize,
    /// Evictions across all replicas' stores.
    pub evictions: usize,
    /// Artifact bytes read by cold loads across all replicas.
    pub bytes_loaded: u64,
    /// Ids of requests that arrived while their family was cold (or
    /// still loading) on the chosen replica — join these against
    /// `serve.complete` timeline instants to split the latency
    /// population into warm and cold cohorts.
    pub cold_request_ids: Vec<u64>,
}

/// Which families on a replica may be evicted right now: those fully
/// loaded (`ready_s` in the past) with no queued work. A family mid-load
/// or still owing queued requests keeps its slot — evicting it would
/// just force an immediate re-fault, and two queues contending for one
/// slot would cancel each other's loads forever.
fn evictable_families(engines: &[ReplicaEngine], ready_s: &[f64], now: f64) -> Vec<bool> {
    engines
        .iter()
        .zip(ready_s)
        .map(|(eng, &ready)| now >= ready && eng.queued_len() == 0)
        .collect()
}

/// The replica's next state-changing instant strictly after `now` —
/// when a deferred fault should retry: an in-flight batch completing, a
/// queue's flush deadline, or a load finishing.
fn next_replica_event(
    engines: &[ReplicaEngine],
    ready_s: &[f64],
    batch: &crate::batcher::BatchPolicy,
    now: f64,
    drain: bool,
) -> Option<f64> {
    let mut t = f64::INFINITY;
    let mut push = |x: f64| {
        if x > now {
            t = t.min(x);
        }
    };
    for (m, eng) in engines.iter().enumerate() {
        if let Some(c) = eng.next_completion_s() {
            push(c);
        }
        if let Some(d) = eng.next_flush_deadline_s(batch, now, drain) {
            push(d.max(ready_s[m]));
        }
        push(ready_s[m]);
    }
    t.is_finite().then_some(t)
}

/// Serves model-tagged `requests` (sorted by arrival time) against
/// `families`, each replica hosting the families through a
/// memory-budgeted [`WeightStore`].
///
/// Event order per instant matches the single-node engine — completion,
/// then arrival, then flush — and all state advances on the shared
/// simulated clock, so a seeded run is bit-identical every time.
///
/// # Panics
/// Panics when `families` or `replicas` is empty, a request's model id is
/// out of range, or some family's artifact alone exceeds the store
/// budget.
pub fn serve_fleet(
    families: &[VariantRegistry],
    data: &Dataset,
    requests: &[ModelRequest],
    cfg: &FleetConfig,
    rec: &dyn Recorder,
) -> FleetReport {
    assert!(!families.is_empty(), "need at least one family");
    assert!(cfg.replicas > 0, "need at least one replica");
    let n_models = families.len();
    let n_variants = families[0].variants.len();

    let mut stores: Vec<WeightStore> = Vec::with_capacity(cfg.replicas);
    let mut engines: Vec<Vec<ReplicaEngine>> = Vec::with_capacity(cfg.replicas);
    // ready_s[r][m]: the instant family m's weights become usable on
    // replica r; flushes gate on it, admissions are charged the remainder.
    let mut ready_s = vec![vec![0.0f64; n_models]; cfg.replicas];
    for r in 0..cfg.replicas {
        let mut store = WeightStore::new(cfg.store_budget_bytes, cfg.eviction);
        for (m, fam) in families.iter().enumerate() {
            let id = store.insert(&format!("family{m}"), fam);
            debug_assert_eq!(id, m);
        }
        if cfg.warm_start {
            for m in 0..n_models {
                if store.resident_bytes() + store.artifact_bytes(m) <= store.budget_bytes() {
                    store.preload(m);
                }
            }
        }
        stores.push(store);
        engines.push(
            families
                .iter()
                .enumerate()
                .map(|(m, fam)| {
                    ReplicaEngine::new(fam, &cfg.serve, ((r * n_models + m) * n_variants) as u32)
                })
                .collect(),
        );
    }

    let mut router = Router::new(cfg.router);
    let mut cold_request_ids: Vec<u64> = Vec::new();
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;

    loop {
        // ---- next event time -------------------------------------------
        let drain = next_arrival >= requests.len();
        let mut t_next = f64::INFINITY;
        for (r, row) in engines.iter().enumerate() {
            for (m, eng) in row.iter().enumerate() {
                if let Some(t) = eng.next_completion_s() {
                    t_next = t_next.min(t);
                }
                if let Some(t) = eng.next_flush_deadline_s(&cfg.serve.batch, now, drain) {
                    // A queue cannot flush before its weights finish
                    // loading.
                    t_next = t_next.min(t.max(ready_s[r][m]));
                }
            }
        }
        if !drain {
            t_next = t_next.min(requests[next_arrival].req.arrival_s);
        }
        if t_next.is_infinite() {
            break;
        }
        now = now.max(t_next);
        rec.clock().set(now);

        // ---- 1: completion ---------------------------------------------
        let mut completed = false;
        for row in engines.iter_mut() {
            for eng in row.iter_mut() {
                completed |= eng.try_complete(now, rec, &mut |_| true);
            }
        }
        if completed {
            continue;
        }

        // ---- 2: arrival ------------------------------------------------
        if !drain && requests[next_arrival].req.arrival_s <= now {
            let mr = requests[next_arrival];
            next_arrival += 1;
            assert!(mr.model < n_models, "request {} targets unknown model {}", mr.req.id, mr.model);
            let loads: Vec<usize> = engines
                .iter()
                .map(|row| row.iter().map(ReplicaEngine::load).sum())
                .collect();
            let resident: Vec<bool> = stores.iter().map(|s| s.is_resident(mr.model)).collect();
            let candidates: Vec<usize> = (0..cfg.replicas).collect();
            let r = router
                .route_residency(&candidates, &loads, &resident)
                .expect("non-empty replica set");
            let track = ((r * n_models + mr.model) * n_variants) as u32;
            let evictable = evictable_families(&engines[r], &ready_s[r], now);
            let residency = match stores[r].fetch_guarded(
                mr.model,
                &cfg.serve.device,
                &evictable,
                track,
                rec,
            ) {
                Some(outcome) => {
                    if !outcome.warm {
                        ready_s[r][mr.model] = now + outcome.load_s;
                    }
                    // Cold, or warm-but-still-loading from an earlier
                    // cold fetch.
                    (ready_s[r][mr.model] - now).max(0.0)
                }
                None => {
                    // Every resident is mid-load or owes queued work:
                    // the fault waits for the replica's next event (the
                    // flush phase retries it), and the admission
                    // prediction is charged that wait plus the load.
                    let retry = next_replica_event(&engines[r], &ready_s[r], &cfg.serve.batch, now, drain)
                        .unwrap_or(now + stores[r].load_seconds(mr.model, &cfg.serve.device));
                    ready_s[r][mr.model] = retry;
                    retry - now + stores[r].load_seconds(mr.model, &cfg.serve.device)
                }
            };
            if residency > 0.0 {
                cold_request_ids.push(mr.req.id);
            }
            // Admission predicts from the family's cost tables; the
            // input definition is bit-identical to any decoded resident
            // copy (round-trip tested), and unlike the store's copy it
            // exists even while the fault is still deferred.
            let _ = engines[r][mr.model].admit_arrival_with_residency(
                mr.req,
                &families[mr.model],
                &cfg.serve,
                now,
                residency,
                rec,
            );
            continue;
        }

        // ---- 3: flush --------------------------------------------------
        for r in 0..cfg.replicas {
            // Ready residents flush first, so a family that just
            // finished loading serves its queue before any re-fault can
            // steal its slot back.
            for m in 0..n_models {
                if now >= ready_s[r][m] && stores[r].is_resident(m) {
                    engines[r][m].try_flush(
                        stores[r].registry_mut(m),
                        data,
                        &cfg.serve,
                        now,
                        drain,
                        1.0,
                        rec,
                    );
                }
            }
            // Families evicted out from under their own queue fault back
            // in — but only past victims that are fully loaded and owe
            // no queued work; otherwise two queues contending for one
            // slot would endlessly cancel each other's loads. A blocked
            // fault retries at the replica's next event.
            for m in 0..n_models {
                if now < ready_s[r][m]
                    || stores[r].is_resident(m)
                    || engines[r][m].queued_len() == 0
                {
                    continue;
                }
                let track = ((r * n_models + m) * n_variants) as u32;
                let evictable = evictable_families(&engines[r], &ready_s[r], now);
                match stores[r].fetch_guarded(m, &cfg.serve.device, &evictable, track, rec) {
                    Some(outcome) => ready_s[r][m] = now + outcome.load_s,
                    None => {
                        ready_s[r][m] =
                            next_replica_event(&engines[r], &ready_s[r], &cfg.serve.batch, now, drain)
                                .unwrap_or(now + stores[r].load_seconds(m, &cfg.serve.device));
                    }
                }
            }
        }
    }

    // Group accounting per model across replicas, then aggregate.
    let mut parts: Vec<Vec<ReplicaParts>> = (0..n_models).map(|_| Vec::new()).collect();
    for row in engines {
        for (m, eng) in row.into_iter().enumerate() {
            parts[m].push(eng.into_parts());
        }
    }
    let per_model: Vec<ServeReport> = parts
        .iter()
        .enumerate()
        .map(|(m, p)| {
            let offered = requests.iter().filter(|q| q.model == m).count();
            assemble_report(offered, p.clone())
        })
        .collect();
    let report = assemble_report(requests.len(), parts.into_iter().flatten().collect());
    FleetReport {
        report,
        per_model,
        cold_loads: stores.iter().map(|s| s.loads).sum(),
        warm_hits: stores.iter().map(|s| s.hits).sum(),
        evictions: stores.iter().map(|s| s.evictions).sum(),
        bytes_loaded: stores.iter().map(|s| s.bytes_loaded).sum(),
        cold_request_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::batcher::BatchPolicy;
    use crate::device::DeviceModel;
    use crate::engine::serve;
    use crate::load::{open_loop, LoadConfig};
    use crate::persist::save_family;
    use crate::variant::{build_family, FamilyConfig};
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn family(seed: u64) -> VariantRegistry {
        let data = dl_data::blobs(100, 3, 8, 6.0, 0.5, seed);
        let eval = dl_data::blobs(60, 3, 8, 6.0, 0.5, seed + 1);
        build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 16, 3],
                student_hidden: vec![4],
                prune_sparsity: 0.6,
                morph_budget: 100,
                ensemble_members: 2,
                max_batch: 8,
                epochs: 6,
                seed,
            },
        )
    }

    fn eval_set() -> Dataset {
        dl_data::blobs(60, 3, 8, 6.0, 0.5, 901)
    }

    fn serve_cfg() -> ServeConfig {
        ServeConfig {
            batch: BatchPolicy::dynamic(8, 5e-6),
            admission: AdmissionPolicy::AcceptAll,
            primary: "fp32-base".into(),
            device: DeviceModel::nominal(),
        }
    }

    #[test]
    fn preloaded_single_model_fleet_matches_single_node_bit_for_bit() {
        let reg = family(900);
        let eval = eval_set();
        let load = open_loop(
            &LoadConfig {
                rate_rps: 150_000.0,
                requests: 300,
                seed: 11,
            },
            eval.x.dims()[0],
        );
        let cfg = serve_cfg();

        let single_rec = TimelineRecorder::new();
        let mut single_reg = reg.clone();
        let single = serve(&mut single_reg, &eval, &load, &cfg, &single_rec);

        let fleet_rec = TimelineRecorder::new();
        let tagged: Vec<ModelRequest> =
            load.iter().map(|&req| ModelRequest { req, model: 0 }).collect();
        let fleet = serve_fleet(
            &[reg],
            &eval,
            &tagged,
            &FleetConfig {
                serve: cfg,
                replicas: 1,
                store_budget_bytes: u64::MAX,
                eviction: EvictionPolicy::Lru,
                router: RouterPolicy::LeastLoaded,
                warm_start: true,
            },
            &fleet_rec,
        );

        assert_eq!(fleet.cold_loads, 0, "preloaded family never faults");
        assert!(fleet.cold_request_ids.is_empty());
        assert_eq!(single, fleet.report, "store-fronted report drifts");
        assert_eq!(single, fleet.per_model[0]);
        assert_eq!(
            single_rec.histogram("serve.latency_s"),
            fleet_rec.histogram("serve.latency_s"),
            "latency histogram drifts"
        );
        assert_eq!(single_rec.events(), fleet_rec.events(), "timeline drifts");
    }

    #[test]
    fn thrashing_budget_pays_cold_loads_and_evictions() {
        let a = family(910);
        let b = family(920);
        let eval = eval_set();
        let budget_one = save_family(&a).len().max(save_family(&b).len()) as u64 * 3 / 2;
        // Alternate models with gaps long enough that each batch drains
        // before the next arrival: every switch faults the other family in.
        let tagged: Vec<ModelRequest> = (0..40)
            .map(|i| ModelRequest {
                req: Request {
                    id: i,
                    arrival_s: i as f64 * 1e-3,
                    sample: (i as usize * 7) % eval.x.dims()[0],
                },
                model: (i % 2) as usize,
            })
            .collect();
        let run = |budget: u64, warm: bool| {
            // batch=1 keeps the artifact load on the critical path (a
            // flush-delay window would hide these tiny families' loads).
            let mut serve = serve_cfg();
            serve.batch = BatchPolicy::no_batching();
            serve_fleet(
                &[a.clone(), b.clone()],
                &eval,
                &tagged,
                &FleetConfig {
                    serve,
                    replicas: 1,
                    store_budget_bytes: budget,
                    eviction: EvictionPolicy::Lru,
                    router: RouterPolicy::LeastLoaded,
                    warm_start: warm,
                },
                &NullRecorder::new(),
            )
        };
        let thrash = run(budget_one, false);
        assert_eq!(thrash.report.served, 40);
        assert!(thrash.evictions > 10, "alternating models must thrash: {}", thrash.evictions);
        assert_eq!(thrash.cold_loads, thrash.cold_request_ids.len());
        assert!(thrash.bytes_loaded > 0);

        let roomy = run(u64::MAX, true);
        assert_eq!(roomy.cold_loads, 0);
        assert_eq!(roomy.evictions, 0);
        assert!(
            thrash.report.p99_s > roomy.report.p99_s,
            "cold loads must show up in the tail: {} vs {}",
            thrash.report.p99_s,
            roomy.report.p99_s
        );
        // Determinism: same schedule, same thrash.
        let again = run(budget_one, false);
        assert_eq!(thrash.report, again.report);
        assert_eq!(thrash.cold_request_ids, again.cold_request_ids);
    }

    #[test]
    fn residency_routing_keeps_models_sticky_across_replicas() {
        let a = family(930);
        let b = family(940);
        let eval = eval_set();
        let budget_one = save_family(&a).len().max(save_family(&b).len()) as u64 * 3 / 2;
        // Two replicas, each able to hold one family: round-robin spreads
        // the two initial all-cold faults across the replicas, after
        // which residency-aware routing pins each model to its replica
        // and nothing ever thrashes. (Least-loaded would tie both cold
        // faults onto replica 0 and thrash forever.)
        let tagged: Vec<ModelRequest> = (0..60)
            .map(|i| ModelRequest {
                req: Request {
                    id: i,
                    arrival_s: i as f64 * 1e-3,
                    sample: (i as usize * 5) % eval.x.dims()[0],
                },
                model: (i % 2) as usize,
            })
            .collect();
        let fleet = serve_fleet(
            &[a, b],
            &eval,
            &tagged,
            &FleetConfig {
                serve: serve_cfg(),
                replicas: 2,
                store_budget_bytes: budget_one,
                eviction: EvictionPolicy::Lru,
                router: RouterPolicy::RoundRobin,
                warm_start: false,
            },
            &NullRecorder::new(),
        );
        assert_eq!(fleet.report.served, 60);
        assert_eq!(fleet.cold_loads, 2, "one fault per model, then sticky");
        assert_eq!(fleet.evictions, 0, "two replicas x one slot never evict");
        assert_eq!(fleet.cold_request_ids, vec![0, 1]);
        assert_eq!(fleet.per_model[0].served + fleet.per_model[1].served, 60);
    }
}
