//! The model-variant registry: one trained network, a whole served family.
//!
//! Part 1 of the tutorial builds its compression menu (quantization,
//! pruning, distillation, MorphNet resizing, ensembling) as training-side
//! experiments; serving is where that menu becomes a *choice*. The
//! registry materializes every entry from a single teacher network,
//! measures each variant's accuracy on a holdout set and its eval-mode
//! forward cost at every batch size the batcher may form, and annotates
//! it with a per-layer [`dl_prof::NetworkProfile`]. The admission
//! controller later routes between these variants by measured cost.

use dl_compress::{
    distill, magnitude_prune, quantize_network_tensors, DistillConfig, QuantizedMlp,
    QuantizedTensor,
};
use dl_distributed::{morph_resize, MorphConfig};
use dl_ensemble::{snapshot, Ensemble};
use dl_nn::{metrics, Dataset, Network, Optimizer, TrainConfig, Trainer};
use dl_prof::NetworkProfile;
use dl_tensor::acct::{self, OpCost};
use dl_tensor::{init, Tensor};

/// A servable model: a single network, an ensemble of them, or a
/// quantized MLP executing natively on packed int8 codes.
#[derive(Debug, Clone)]
pub enum VariantModel {
    /// One network.
    Single(Network),
    /// A probability-averaging ensemble.
    Ensemble(Ensemble),
    /// A quantized MLP whose batched forwards run on the packed codes
    /// (native int8 GEMM) — no dequantized f32 weights on the hot path.
    Quantized(QuantizedMlp),
}

impl VariantModel {
    /// Eval-mode class predictions for a `[B, d]` batch — one batched
    /// forward per network (the dl-nn batched path), never a per-row loop.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        match self {
            VariantModel::Single(net) => net.predict(x),
            VariantModel::Ensemble(e) => e.predict(x),
            VariantModel::Quantized(q) => q.predict(x),
        }
    }

    /// Total parameters held at inference.
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            VariantModel::Single(net) => net.param_count(),
            VariantModel::Ensemble(e) => e.total_params(),
            VariantModel::Quantized(q) => q.param_count(),
        }
    }
}

/// One entry in the served family.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Registry-unique name (`fp32-base`, `int8`, `pruned`, ...).
    pub name: String,
    /// The model answering requests.
    pub model: VariantModel,
    /// Accuracy measured on the holdout set at build time.
    pub accuracy: f64,
    /// Stored weight footprint in bytes (packed size for the int8
    /// variant, fp32 parameter bytes otherwise).
    pub weight_bytes: u64,
    /// Per-layer measured forward/backward costs at batch 1, from
    /// `dl_prof::NetworkProfile` (representative member for ensembles).
    pub profile: NetworkProfile,
    /// Measured eval-mode forward cost of the whole model at batch
    /// `b`, stored at index `b - 1` for `b` in `1..=max_batch`.
    pub batch_costs: Vec<OpCost>,
    /// The packed int8 tensors behind a quantized variant (parameter
    /// order), retained from quantization so persistence can store the
    /// codes natively instead of dequantized f32s. `None` for fp32
    /// variants.
    pub quantized: Option<Vec<QuantizedTensor>>,
}

impl Variant {
    /// Measured forward cost at batch size `b` (clamped to the table).
    ///
    /// # Panics
    /// Panics when `b` is zero.
    pub fn cost_at(&self, b: usize) -> &OpCost {
        assert!(b > 0, "batch size must be positive");
        &self.batch_costs[(b - 1).min(self.batch_costs.len() - 1)]
    }

    /// Largest batch size the cost table covers.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.batch_costs.len()
    }
}

/// How to materialize the family from one teacher.
#[derive(Debug, Clone)]
pub struct FamilyConfig {
    /// Teacher MLP dimensions, input and output included.
    pub teacher_dims: Vec<usize>,
    /// Hidden widths of the distilled student.
    pub student_hidden: Vec<usize>,
    /// Global magnitude-pruning sparsity for the pruned variant.
    pub prune_sparsity: f64,
    /// Parameter budget for the MorphNet-resized variant.
    pub morph_budget: usize,
    /// Snapshot-ensemble member count.
    pub ensemble_members: usize,
    /// Largest batch the cost tables cover (the batcher's ceiling).
    pub max_batch: usize,
    /// Teacher/student training epochs.
    pub epochs: usize,
    /// Seed for every training run in the family.
    pub seed: u64,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            teacher_dims: vec![16, 64, 64, 5],
            student_hidden: vec![16],
            prune_sparsity: 0.8,
            morph_budget: 600,
            ensemble_members: 3,
            max_batch: 32,
            epochs: 30,
            seed: 0,
        }
    }
}

/// The served family plus the holdout it was calibrated on.
#[derive(Debug, Clone)]
pub struct VariantRegistry {
    /// All variants, teacher first.
    pub variants: Vec<Variant>,
}

impl VariantRegistry {
    /// Index of the variant named `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.variants.iter().position(|v| v.name == name)
    }

    /// Variant indices ordered by measured per-request service cost at
    /// full batch, cheapest first — the admission controller's downgrade
    /// chain. Cost here is the device-independent proxy
    /// `flops + bytes_read + bytes_written` per request; ties break by
    /// registry order so the chain is deterministic.
    #[must_use]
    pub fn by_cost(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.variants.len()).collect();
        let per_request = |v: &Variant| {
            let b = v.max_batch();
            let c = v.cost_at(b);
            (c.flops + c.bytes_read + c.bytes_written) as f64 / b as f64
        };
        idx.sort_by(|&a, &b| {
            per_request(&self.variants[a]).total_cmp(&per_request(&self.variants[b]))
        });
        idx
    }
}

/// Measures the eval-mode forward cost of `model` at every batch size in
/// `1..=max_batch`, using rows cycled from `calib` as representative
/// inputs (zero-skip kernels make cost mildly input-dependent, so the
/// table is calibrated on the same distribution it will serve).
fn measure_batch_costs(model: &mut VariantModel, calib: &Tensor, max_batch: usize) -> Vec<OpCost> {
    let rows = calib.dims()[0];
    (1..=max_batch)
        .map(|b| {
            let idx: Vec<usize> = (0..b).map(|i| i % rows).collect();
            let xb = calib.select_rows(&idx);
            let (_, cost) = acct::measure(|| model.predict(&xb));
            cost
        })
        .collect()
}

fn build_variant(
    name: &str,
    mut model: VariantModel,
    weight_bytes: u64,
    eval: &Dataset,
    max_batch: usize,
) -> Variant {
    let accuracy = match &mut model {
        VariantModel::Single(net) => Trainer::evaluate(net, eval),
        VariantModel::Ensemble(e) => e.accuracy(eval),
        VariantModel::Quantized(q) => metrics::accuracy(&q.predict(&eval.x), &eval.y),
    };
    let x1 = eval.x.select_rows(&[0]);
    // Per-layer profiles need a structural f32 network: member 0 for an
    // ensemble, the dequantized shadow (built once, off the hot path)
    // for the native int8 variant.
    let profile = match &mut model {
        VariantModel::Single(net) => NetworkProfile::profile(net, &x1),
        VariantModel::Ensemble(e) => NetworkProfile::profile(&mut e.members[0], &x1),
        VariantModel::Quantized(q) => NetworkProfile::profile(&mut q.to_network(), &x1),
    };
    let batch_costs = measure_batch_costs(&mut model, &eval.x, max_batch);
    Variant {
        name: name.to_string(),
        model,
        accuracy,
        weight_bytes,
        profile,
        batch_costs,
        quantized: None,
    }
}

/// Materializes the full served family from one freshly trained teacher:
/// `fp32-base`, `int8` (affine 8-bit), `pruned` (global magnitude),
/// `distilled` (small student on soft targets), `morph` (width
/// reallocation under a budget) and `ensemble` (snapshot cycle).
///
/// Every step is seeded, so the same inputs produce a byte-identical
/// family — the property E25's committed baseline leans on.
pub fn build_family(data: &Dataset, eval: &Dataset, cfg: &FamilyConfig) -> VariantRegistry {
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        ..TrainConfig::default()
    };

    // Teacher.
    let mut rng = init::rng(cfg.seed);
    let mut teacher = Network::mlp(&cfg.teacher_dims, &mut rng);
    Trainer::new(train_cfg.clone(), Optimizer::adam(0.01)).fit(&mut teacher, data);
    let fp32_bytes = 4 * teacher.param_count() as u64;

    // Int8: the packed codes both serve (native int8 GEMM on the codes,
    // no dequantized f32 weights on the hot path) and persist. The
    // reconstruction network supplies only the Dense/ReLU architecture.
    let (int8_shadow, quant_report, int8_tensors) = quantize_network_tensors(&teacher, 8);
    let int8_native = QuantizedMlp::from_network_tensors(&int8_shadow, &int8_tensors);

    // Pruned: iterative global magnitude pruning (prune, briefly
    // fine-tune, re-prune). The fine-tune recovers accuracy; ending on a
    // prune keeps the final net sparse, so the matmul zero-skip turns the
    // sparsity into genuinely smaller measured cost.
    let mut pruned = teacher.clone();
    let _ = magnitude_prune(&mut pruned, cfg.prune_sparsity);
    for round in 0..2u64 {
        let ft = TrainConfig {
            epochs: (cfg.epochs / 3).max(1),
            seed: cfg.seed.wrapping_add(4 + round),
            ..TrainConfig::default()
        };
        Trainer::new(ft, Optimizer::adam(0.01)).fit(&mut pruned, data);
        let _ = magnitude_prune(&mut pruned, cfg.prune_sparsity);
    }

    // Distilled student.
    let mut student_dims = vec![cfg.teacher_dims[0]];
    student_dims.extend_from_slice(&cfg.student_hidden);
    student_dims.push(*cfg.teacher_dims.last().expect("non-empty dims"));
    let mut student = Network::mlp(&student_dims, &mut init::rng(cfg.seed.wrapping_add(1)));
    let mut teacher_for_distill = teacher.clone();
    let _ = distill(
        &mut teacher_for_distill,
        &mut student,
        data,
        &DistillConfig {
            temperature: 3.0,
            soft_weight: 0.7,
            train: train_cfg.clone(),
            optimizer: Optimizer::adam(0.01),
        },
    );

    // MorphNet-resized under a parameter budget.
    let hidden: Vec<usize> = cfg.teacher_dims[1..cfg.teacher_dims.len() - 1].to_vec();
    let (morph_net, _) = morph_resize(
        data,
        eval,
        &hidden,
        &MorphConfig {
            param_budget: cfg.morph_budget,
            rounds: 3,
            epochs_per_round: cfg.epochs / 3,
            min_width: 2,
            seed: cfg.seed,
        },
        &mut init::rng(cfg.seed.wrapping_add(2)),
    );

    // Snapshot ensemble: highest accuracy, highest cost. Total training
    // stays one run of ~`epochs` epochs split into member cycles.
    let (ens, _) = snapshot(
        data,
        eval,
        &cfg.teacher_dims,
        cfg.ensemble_members,
        (cfg.epochs / cfg.ensemble_members).max(1),
        cfg.seed,
        &mut init::rng(cfg.seed.wrapping_add(3)),
    );

    let ens_bytes = 4 * ens.total_params() as u64;
    let student_bytes = 4 * student.param_count() as u64;
    let morph_bytes = 4 * morph_net.param_count() as u64;
    let pruned_bytes = 4 * pruned.param_count() as u64;
    let mut variants = vec![
        build_variant(
            "fp32-base",
            VariantModel::Single(teacher),
            fp32_bytes,
            eval,
            cfg.max_batch,
        ),
        build_variant(
            "int8",
            VariantModel::Quantized(int8_native),
            quant_report.compressed_bytes as u64,
            eval,
            cfg.max_batch,
        ),
        build_variant(
            "pruned",
            VariantModel::Single(pruned),
            pruned_bytes,
            eval,
            cfg.max_batch,
        ),
        build_variant(
            "distilled",
            VariantModel::Single(student),
            student_bytes,
            eval,
            cfg.max_batch,
        ),
        build_variant(
            "morph",
            VariantModel::Single(morph_net),
            morph_bytes,
            eval,
            cfg.max_batch,
        ),
        build_variant(
            "ensemble",
            VariantModel::Ensemble(ens),
            ens_bytes,
            eval,
            cfg.max_batch,
        ),
    ];
    variants[1].quantized = Some(int8_tensors);
    VariantRegistry { variants }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_family() -> (VariantRegistry, Dataset) {
        let data = dl_data::blobs(120, 3, 8, 6.0, 0.5, 40);
        let eval = dl_data::blobs(60, 3, 8, 6.0, 0.5, 41);
        let reg = build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 24, 3],
                student_hidden: vec![8],
                prune_sparsity: 0.7,
                morph_budget: 150,
                ensemble_members: 2,
                max_batch: 8,
                epochs: 9,
                seed: 42,
            },
        );
        (reg, eval)
    }

    #[test]
    fn family_has_all_six_variants_with_measured_costs() {
        let (reg, _) = tiny_family();
        let names: Vec<&str> = reg.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            ["fp32-base", "int8", "pruned", "distilled", "morph", "ensemble"]
        );
        for v in &reg.variants {
            assert_eq!(v.batch_costs.len(), 8, "{}: cost table covers 1..=8", v.name);
            assert!(v.cost_at(1).flops > 0, "{}: measured flops", v.name);
            assert!(v.accuracy > 1.0 / 3.0, "{}: above chance", v.name);
            assert!(!v.profile.layers.is_empty(), "{}: per-layer profile", v.name);
            assert!(v.weight_bytes > 0);
        }
    }

    #[test]
    fn batching_amortizes_weight_traffic_in_measured_costs() {
        let (reg, _) = tiny_family();
        let base = &reg.variants[0];
        let b = base.max_batch();
        let c1 = base.cost_at(1);
        let cb = base.cost_at(b);
        // One batched forward reads the weights once; B single-row
        // forwards read them B times. The measured per-request traffic
        // must therefore genuinely shrink with batch size.
        let per_req_1 = (c1.bytes_read + c1.bytes_written) as f64;
        let per_req_b = (cb.bytes_read + cb.bytes_written) as f64 / b as f64;
        assert!(
            per_req_b < per_req_1 / 2.0,
            "batch {b} per-request traffic {per_req_b} vs batch-1 {per_req_1}"
        );
    }

    #[test]
    fn int8_variant_stores_roughly_quarter_the_bytes() {
        let (reg, _) = tiny_family();
        let fp32 = reg.variants[reg.index_of("fp32-base").unwrap()].weight_bytes;
        let int8 = reg.variants[reg.index_of("int8").unwrap()].weight_bytes;
        assert!(
            (int8 as f64) < 0.35 * fp32 as f64,
            "int8 {int8} bytes vs fp32 {fp32} bytes"
        );
    }

    #[test]
    fn int8_variant_serves_natively_on_packed_codes() {
        let (mut reg, eval) = tiny_family();
        let i = reg.index_of("int8").unwrap();
        assert!(
            matches!(reg.variants[i].model, VariantModel::Quantized(_)),
            "int8 variant must execute on packed codes, not a dequantized f32 net"
        );
        assert!(reg.variants[i].quantized.is_some(), "codes retained for persistence");
        // It still predicts competitively against the f32 teacher.
        let fp32_acc = reg.variants[0].accuracy;
        let int8_acc = reg.variants[i].accuracy;
        assert!(
            int8_acc >= fp32_acc - 0.1,
            "native int8 accuracy {int8_acc} collapsed vs fp32 {fp32_acc}"
        );
        // And its predictions match the dequantized shadow almost always.
        let shadow = match &reg.variants[i].model {
            VariantModel::Quantized(q) => q.to_network(),
            _ => unreachable!(),
        };
        let native = reg.variants[i].model.predict(&eval.x);
        let want = { let mut s = shadow; s.predict(&eval.x) };
        let agree = native.iter().zip(&want).filter(|(a, b)| a == b).count();
        assert!(
            agree * 10 >= native.len() * 9,
            "native int8 agreed with shadow on only {agree}/{}",
            native.len()
        );
    }

    #[test]
    fn int8_batch_costs_count_packed_bytes_not_f32_footprint() {
        // Satellite: the measured bytes-read term that flows into
        // DeviceModel pricing must reflect what actually streams —
        // 1-byte packed codes — not a dequantized f32 shadow.
        let (reg, _) = tiny_family();
        let fp32 = &reg.variants[reg.index_of("fp32-base").unwrap()];
        let int8 = &reg.variants[reg.index_of("int8").unwrap()];
        let b = int8.max_batch();
        let f32_br = fp32.cost_at(b).bytes_read;
        let int8_br = int8.cost_at(b).bytes_read;
        assert!(
            int8_br < f32_br,
            "int8 batch-{b} bytes_read {int8_br} must undercut fp32 {f32_br}"
        );
        // Compute shrinks too: integer GEMM flops ≈ f32 flops without
        // the zero-skip discount, but the byte traffic is the point.
        assert!(int8.cost_at(b).flops > 0);
    }

    #[test]
    fn downgrade_chain_is_cost_sorted_and_deterministic() {
        let (reg, _) = tiny_family();
        let chain = reg.by_cost();
        assert_eq!(chain.len(), reg.variants.len());
        let per_req = |i: usize| {
            let v = &reg.variants[i];
            let c = v.cost_at(v.max_batch());
            (c.flops + c.bytes_read + c.bytes_written) as f64 / v.max_batch() as f64
        };
        for w in chain.windows(2) {
            assert!(per_req(w[0]) <= per_req(w[1]));
        }
        // The ensemble forwards every member: it can never be cheapest.
        assert_ne!(chain[0], reg.index_of("ensemble").unwrap());
        assert_eq!(chain, reg.by_cost(), "same family, same chain");
    }
}
