//! Saving and loading whole variant families as `dl-store` artifacts.
//!
//! One artifact carries the entire served family: every variant's model
//! (single network, ensemble members, or native-int8 quantized MLP), its
//! measured accuracy, weight footprint, per-layer profile and batch cost
//! tables. The int8 variant's parameters are written as their packed
//! codes plus quant params — never dequantized on the way to disk — and
//! load rebuilds the *native* [`dl_compress::QuantizedMlp`] from those
//! codes, so a loaded int8 variant serves on packed codes exactly like
//! the one that was saved.
//!
//! The round-trip contract is the serving-side analogue of dl-store's:
//! a loaded registry is bit-identical to the one saved (predictions,
//! admission decisions, cost tables, accuracies), and re-saving it is
//! byte-identical. Measured metadata is persisted rather than re-measured
//! on load: re-profiling would need calibration data and real compute,
//! and the numbers are already exact u64/f64 values.

use crate::variant::{Variant, VariantModel, VariantRegistry};
use dl_prof::{LayerProfile, NetworkProfile};
use dl_store::{
    decode_network_with_quant, encode_network, encode_network_q8, Artifact, ArtifactBuilder,
    HParam, StoreError,
};
use dl_ensemble::Ensemble;
use dl_nn::{CostProfile, LayerCost};
use dl_tensor::acct::OpCost;
use std::path::Path;

/// Value of the `artifact.kind` hparam written by [`save_family`].
pub const FAMILY_KIND: &str = "variant-family";

struct U64Packer(Vec<u8>);

impl U64Packer {
    fn push(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn push_op(&mut self, c: &OpCost) {
        self.push(c.flops);
        self.push(c.bytes_read);
        self.push(c.bytes_written);
    }

    fn push_layer_cost(&mut self, c: &LayerCost) {
        self.push(c.forward_flops);
        self.push(c.backward_flops);
        self.push(c.params);
        self.push(c.activation_elems);
    }
}

struct U64Unpacker<'a>(&'a [u8]);

impl U64Unpacker<'_> {
    fn pop(&mut self) -> Result<u64, StoreError> {
        if self.0.len() < 8 {
            return Err(StoreError::Corrupt("metadata blob too short".to_string()));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn pop_op(&mut self) -> Result<OpCost, StoreError> {
        Ok(OpCost {
            flops: self.pop()?,
            bytes_read: self.pop()?,
            bytes_written: self.pop()?,
        })
    }

    fn pop_layer_cost(&mut self) -> Result<LayerCost, StoreError> {
        Ok(LayerCost {
            forward_flops: self.pop()?,
            backward_flops: self.pop()?,
            params: self.pop()?,
            activation_elems: self.pop()?,
        })
    }
}

fn encode_profile(b: &mut ArtifactBuilder, prefix: &str, p: &NetworkProfile) {
    b.hparam(format!("{prefix}.batch"), HParam::U64(p.batch as u64));
    b.hparam(
        format!("{prefix}.layer_count"),
        HParam::U64(p.layers.len() as u64),
    );
    let mut pk = U64Packer(Vec::new());
    for l in &p.layers {
        b.hparam(
            format!("{prefix}.layer{}.name", l.index),
            HParam::Str(l.name.clone()),
        );
        pk.push(l.index as u64);
        pk.push_op(&l.forward);
        pk.push_op(&l.backward);
        pk.push_layer_cost(&l.modeled);
        pk.push(l.output_elems);
    }
    pk.push_op(&p.forward);
    pk.push_op(&p.backward);
    pk.push(p.param_bytes);
    pk.push(p.input_bytes);
    pk.push(p.peak_live_bytes);
    pk.push_layer_cost(&LayerCost {
        forward_flops: p.modeled.forward_flops,
        backward_flops: p.modeled.backward_flops,
        params: p.modeled.params,
        activation_elems: p.modeled.activation_elems,
    });
    b.hparam(format!("{prefix}.nums"), HParam::Bytes(pk.0));
}

fn decode_profile(a: &Artifact<'_>, prefix: &str) -> Result<NetworkProfile, StoreError> {
    let batch = a.hparam_u64(&format!("{prefix}.batch"))? as usize;
    let layer_count = a.hparam_u64(&format!("{prefix}.layer_count"))? as usize;
    let raw = match a.hparam(&format!("{prefix}.nums")) {
        Some(HParam::Bytes(raw)) => raw,
        _ => {
            return Err(StoreError::Corrupt(format!(
                "missing profile blob {prefix}.nums"
            )))
        }
    };
    let mut up = U64Unpacker(raw);
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let index = up.pop()? as usize;
        let name = a.hparam_str(&format!("{prefix}.layer{index}.name"))?.to_string();
        layers.push(LayerProfile {
            index,
            name,
            forward: up.pop_op()?,
            backward: up.pop_op()?,
            modeled: up.pop_layer_cost()?,
            output_elems: up.pop()?,
        });
    }
    let forward = up.pop_op()?;
    let backward = up.pop_op()?;
    let param_bytes = up.pop()?;
    let input_bytes = up.pop()?;
    let peak_live_bytes = up.pop()?;
    let m = up.pop_layer_cost()?;
    Ok(NetworkProfile {
        batch,
        layers,
        forward,
        backward,
        param_bytes,
        input_bytes,
        peak_live_bytes,
        modeled: CostProfile {
            forward_flops: m.forward_flops,
            backward_flops: m.backward_flops,
            params: m.params,
            activation_elems: m.activation_elems,
        },
    })
}

/// Serializes a whole variant family as one artifact.
#[must_use]
pub fn save_family(reg: &VariantRegistry) -> Vec<u8> {
    let mut b = ArtifactBuilder::new();
    b.hparam("artifact.kind", HParam::Str(FAMILY_KIND.to_string()));
    b.hparam(
        "family.variant_count",
        HParam::U64(reg.variants.len() as u64),
    );
    for (i, v) in reg.variants.iter().enumerate() {
        b.hparam(format!("v{i}.name"), HParam::Str(v.name.clone()));
        b.hparam(format!("v{i}.accuracy"), HParam::F64(v.accuracy));
        b.hparam(format!("v{i}.weight_bytes"), HParam::U64(v.weight_bytes));
        match &v.model {
            VariantModel::Single(net) => {
                b.hparam(format!("v{i}.model"), HParam::Str("single".to_string()));
                match &v.quantized {
                    Some(qts) => encode_network_q8(&mut b, &format!("v{i}.net"), net, qts),
                    None => encode_network(&mut b, &format!("v{i}.net"), net),
                }
            }
            VariantModel::Ensemble(e) => {
                b.hparam(format!("v{i}.model"), HParam::Str("ensemble".to_string()));
                b.hparam(
                    format!("v{i}.members"),
                    HParam::U64(e.members.len() as u64),
                );
                for (j, m) in e.members.iter().enumerate() {
                    encode_network(&mut b, &format!("v{i}.m{j}"), m);
                }
            }
            VariantModel::Quantized(q) => {
                // The architecture is written as the dequantized shadow,
                // but every parameter payload is the packed codes — the
                // codec re-derives nothing from the f32s.
                b.hparam(format!("v{i}.model"), HParam::Str("quantized".to_string()));
                let qts = v
                    .quantized
                    .as_ref()
                    .expect("a quantized variant always retains its packed tensors");
                encode_network_q8(&mut b, &format!("v{i}.net"), &q.to_network(), qts);
            }
        }
        encode_profile(&mut b, &format!("v{i}.profile"), &v.profile);
        let mut pk = U64Packer(Vec::new());
        for c in &v.batch_costs {
            pk.push_op(c);
        }
        b.hparam(format!("v{i}.batch_costs"), HParam::Bytes(pk.0));
    }
    b.finish()
}

/// Loads a family saved by [`save_family`].
///
/// # Errors
/// Format errors from [`Artifact::parse`]; [`StoreError::Corrupt`] for a
/// non-family artifact or inconsistent sections.
pub fn load_family(bytes: &[u8]) -> Result<VariantRegistry, StoreError> {
    let a = Artifact::parse(bytes)?;
    let kind = a.hparam_str("artifact.kind")?;
    if kind != FAMILY_KIND {
        return Err(StoreError::Corrupt(format!(
            "artifact kind {kind:?} is not a variant family"
        )));
    }
    let count = a.hparam_u64("family.variant_count")? as usize;
    let mut variants = Vec::with_capacity(count);
    for i in 0..count {
        let name = a.hparam_str(&format!("v{i}.name"))?.to_string();
        let accuracy = a.hparam_f64(&format!("v{i}.accuracy"))?;
        let weight_bytes = a.hparam_u64(&format!("v{i}.weight_bytes"))?;
        let (model, quantized) = match a.hparam_str(&format!("v{i}.model"))? {
            "single" => {
                let (net, q) = decode_network_with_quant(&a, &format!("v{i}.net"))?;
                (VariantModel::Single(net), q)
            }
            "ensemble" => {
                let members = a.hparam_u64(&format!("v{i}.members"))? as usize;
                let mut nets = Vec::with_capacity(members);
                for j in 0..members {
                    let (net, _) = decode_network_with_quant(&a, &format!("v{i}.m{j}"))?;
                    nets.push(net);
                }
                (VariantModel::Ensemble(Ensemble::new(nets)), None)
            }
            "quantized" => {
                let (net, q) = decode_network_with_quant(&a, &format!("v{i}.net"))?;
                let qts = q.ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "quantized variant v{i} carries no packed tensors"
                    ))
                })?;
                let mlp = dl_compress::QuantizedMlp::from_network_tensors(&net, &qts);
                (VariantModel::Quantized(mlp), Some(qts))
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown model kind {other:?} for v{i}"
                )))
            }
        };
        let profile = decode_profile(&a, &format!("v{i}.profile"))?;
        let raw = match a.hparam(&format!("v{i}.batch_costs")) {
            Some(HParam::Bytes(raw)) => raw,
            _ => {
                return Err(StoreError::Corrupt(format!(
                    "missing batch costs for v{i}"
                )))
            }
        };
        if raw.len() % 24 != 0 {
            return Err(StoreError::Corrupt(format!(
                "batch-cost blob for v{i} is not a whole number of entries"
            )));
        }
        let mut up = U64Unpacker(raw);
        let mut batch_costs = Vec::with_capacity(raw.len() / 24);
        for _ in 0..raw.len() / 24 {
            batch_costs.push(up.pop_op()?);
        }
        variants.push(Variant {
            name,
            model,
            accuracy,
            weight_bytes,
            profile,
            batch_costs,
            quantized,
        });
    }
    Ok(VariantRegistry { variants })
}

/// Writes [`save_family`] bytes to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_family_file(reg: &VariantRegistry, path: &Path) -> Result<(), StoreError> {
    std::fs::write(path, save_family(reg)).map_err(StoreError::Io)
}

/// Reads and parses a [`save_family_file`] artifact.
///
/// # Errors
/// Filesystem errors plus everything [`load_family`] can return.
pub fn load_family_file(path: &Path) -> Result<VariantRegistry, StoreError> {
    let bytes = std::fs::read(path)?;
    load_family(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{build_family, FamilyConfig};
    use dl_store::Dtype;

    fn tiny_registry() -> (VariantRegistry, dl_nn::Dataset) {
        let data = dl_data::blobs(120, 3, 8, 6.0, 0.5, 50);
        let eval = dl_data::blobs(60, 3, 8, 6.0, 0.5, 51);
        let reg = build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 20, 3],
                student_hidden: vec![6],
                prune_sparsity: 0.6,
                morph_budget: 120,
                ensemble_members: 2,
                max_batch: 6,
                epochs: 6,
                seed: 33,
            },
        );
        (reg, eval)
    }

    #[test]
    fn family_roundtrip_is_bit_identical_and_byte_stable() {
        let (mut reg, eval) = tiny_registry();
        let bytes = save_family(&reg);
        assert_eq!(bytes, save_family(&reg), "same family, same bytes");
        let mut back = load_family(&bytes).expect("valid artifact");
        assert_eq!(back.variants.len(), reg.variants.len());
        for (v, w) in reg.variants.iter_mut().zip(back.variants.iter_mut()) {
            assert_eq!(v.name, w.name);
            assert_eq!(v.accuracy.to_bits(), w.accuracy.to_bits());
            assert_eq!(v.weight_bytes, w.weight_bytes);
            assert_eq!(v.batch_costs, w.batch_costs);
            assert_eq!(v.profile.layers.len(), w.profile.layers.len());
            assert_eq!(v.profile.forward, w.profile.forward);
            assert_eq!(v.profile.modeled, w.profile.modeled);
            let preds_a = v.model.predict(&eval.x);
            let preds_b = w.model.predict(&eval.x);
            assert_eq!(preds_a, preds_b, "{}: identical predictions", v.name);
        }
        // The loaded registry re-saves byte-identically.
        assert_eq!(save_family(&back), bytes);
        // The downgrade chain — what admission navigates — is unchanged.
        assert_eq!(reg.by_cost(), back.by_cost());
    }

    #[test]
    fn int8_params_are_stored_as_packed_codes() {
        let (reg, _) = tiny_registry();
        let bytes = save_family(&reg);
        let a = Artifact::parse(&bytes).unwrap();
        let i = reg.index_of("int8").expect("int8 variant");
        let entry = a
            .tensor(&format!("v{i}.net.layer0.weight"))
            .expect("int8 weight entry");
        assert_eq!(entry.dtype, Dtype::Q8, "codes stored natively");
        let qts = reg.variants[i].quantized.as_ref().expect("retained codes");
        assert_eq!(a.payload(entry).unwrap(), qts[0].codes());
        // And the fp32 teacher is stored as f32.
        let t = a.tensor("v0.net.layer0.weight").expect("teacher weight");
        assert_eq!(t.dtype, Dtype::F32);
    }

    #[test]
    fn loaded_int8_variant_is_native_quantized() {
        let (reg, eval) = tiny_registry();
        let back = load_family(&save_family(&reg)).expect("valid artifact");
        let i = back.index_of("int8").expect("int8 variant");
        assert!(
            matches!(back.variants[i].model, VariantModel::Quantized(_)),
            "load must rebuild the native int8 model, not an f32 shadow"
        );
        let mut a = reg.variants[i].model.clone();
        let mut b = back.variants[i].model.clone();
        assert_eq!(a.predict(&eval.x), b.predict(&eval.x));
    }

    #[test]
    fn non_family_artifacts_are_rejected() {
        let net = dl_nn::Network::mlp(&[4, 5, 2], &mut dl_tensor::init::rng(3));
        let bytes = dl_store::save_network(&net);
        assert!(matches!(load_family(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn loaded_family_admits_identically() {
        use crate::admission::{admit, AdmissionContext, AdmissionPolicy};
        use crate::batcher::BatchPolicy;
        use crate::device::DeviceModel;
        let (reg, _) = tiny_registry();
        let back = load_family(&save_family(&reg)).expect("valid artifact");
        let policy = AdmissionPolicy::SloAware {
            p99_slo_s: 0.001,
            headroom: 0.9,
            min_accuracy: 0.4,
        };
        let batch = BatchPolicy::dynamic(4, 0.002);
        let queue_lens = vec![3; reg.variants.len()];
        let busy = 0.0005;
        let d1 = {
            let ctx = AdmissionContext {
                registry: &reg,
                device: &DeviceModel::nominal(),
                batch: &batch,
                queue_lens: &queue_lens,
                busy_remaining_s: busy,
                residency_delay_s: 0.0,
            };
            admit(&policy, &ctx, 0)
        };
        let d2 = {
            let ctx = AdmissionContext {
                registry: &back,
                device: &DeviceModel::nominal(),
                batch: &batch,
                queue_lens: &queue_lens,
                busy_remaining_s: busy,
                residency_delay_s: 0.0,
            };
            admit(&policy, &ctx, 0)
        };
        assert_eq!(d1, d2);
    }
}
