//! Reactive autoscaling from observed arrival rate and measured cost.
//!
//! The autoscaler closes the loop the ROADMAP's serving tier left open:
//! replica count is not a config constant but a control variable. Every
//! `eval_period_s` it estimates the offered rate from a sliding window of
//! arrivals and sizes the fleet so each replica runs at `target_util` of
//! its *measured* capacity — the same [`DeviceModel`] + [`Variant`] cost
//! tables the batcher and admission controller already trust, so all
//! three tiers price work identically. Scale-ups pay a provisioning
//! delay before the new replica takes traffic (plus the cluster's
//! cold-start warmup once it does); scale-downs drain gracefully.

use dl_monitor::RateWindow;

use crate::device::DeviceModel;
use crate::variant::Variant;

/// Autoscaler knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Seconds between desired-size evaluations.
    pub eval_period_s: f64,
    /// Sliding window the arrival rate is estimated over.
    pub window_s: f64,
    /// Fraction of measured per-replica capacity each replica should run
    /// at (the provisioning headroom; < 1 absorbs bursts).
    pub target_util: f64,
    /// Fleet floor.
    pub min_replicas: usize,
    /// Fleet ceiling.
    pub max_replicas: usize,
    /// Seconds between a scale-up decision and the new replica taking
    /// traffic.
    pub provision_delay_s: f64,
}

impl AutoscaleConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    /// Panics on a non-positive period/window/utilization or an empty
    /// replica range.
    #[must_use]
    pub fn new(
        eval_period_s: f64,
        window_s: f64,
        target_util: f64,
        min_replicas: usize,
        max_replicas: usize,
        provision_delay_s: f64,
    ) -> Self {
        assert!(eval_period_s > 0.0, "eval period must be positive");
        assert!(window_s > 0.0, "window must be positive");
        assert!(
            target_util > 0.0 && target_util <= 1.0,
            "target utilization must lie in (0, 1]"
        );
        assert!(
            min_replicas >= 1 && min_replicas <= max_replicas,
            "need 1 <= min <= max replicas"
        );
        assert!(provision_delay_s >= 0.0, "provision delay cannot be negative");
        AutoscaleConfig {
            eval_period_s,
            window_s,
            target_util,
            min_replicas,
            max_replicas,
            provision_delay_s,
        }
    }
}

/// Measured steady-state request capacity of one replica serving
/// `variant` full batches on `device` — the denominator of the
/// autoscaler's sizing rule.
#[must_use]
pub fn replica_capacity_rps(device: &DeviceModel, variant: &Variant) -> f64 {
    let b = variant.max_batch();
    b as f64 / device.service_time(variant.cost_at(b))
}

/// The reactive controller: a sliding arrival window plus the next
/// evaluation deadline.
///
/// The arrival window is `dl_monitor`'s [`RateWindow`] — the same
/// primitive the monitor tier aggregates with, so the autoscaler and the
/// monitor price "offered rate" identically (same boundary-timestamp
/// eviction, same empty-window = 0.0 convention).
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    arrivals: RateWindow,
    next_eval_s: f64,
}

impl Autoscaler {
    /// A controller that first evaluates one period after time zero.
    #[must_use]
    pub fn new(cfg: AutoscaleConfig) -> Self {
        let next_eval_s = cfg.eval_period_s;
        let arrivals = RateWindow::new(cfg.window_s);
        Autoscaler {
            cfg,
            arrivals,
            next_eval_s,
        }
    }

    /// The configured knobs.
    #[must_use]
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// When the next evaluation is due.
    #[must_use]
    pub fn next_eval_s(&self) -> f64 {
        self.next_eval_s
    }

    /// Records one arrival (arrival times are non-decreasing).
    pub fn observe_arrival(&mut self, t_s: f64) {
        self.arrivals.push(t_s);
    }

    /// Runs one evaluation at `now_s`: estimates the windowed arrival
    /// rate and returns the desired replica count for a fleet of
    /// replicas with `capacity_rps` measured capacity each. Advances the
    /// evaluation deadline past `now_s`. An empty window reads exactly
    /// 0.0 rps (the empty-window convention), scaling to the floor.
    pub fn evaluate(&mut self, now_s: f64, capacity_rps: f64) -> usize {
        while self.next_eval_s <= now_s {
            self.next_eval_s += self.cfg.eval_period_s;
        }
        let rate_rps = self.arrivals.rate_at(now_s);
        let per_replica = self.cfg.target_util * capacity_rps;
        let desired = if per_replica > 0.0 {
            (rate_rps / per_replica).ceil() as usize
        } else {
            self.cfg.max_replicas
        };
        desired.clamp(self.cfg.min_replicas, self.cfg.max_replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig::new(1.0, 2.0, 0.5, 1, 8, 0.5)
    }

    #[test]
    fn sizes_fleet_from_windowed_rate() {
        let mut a = Autoscaler::new(cfg());
        // 100 arrivals over the last 2s window -> 50 rps; at 0.5 util of
        // a 20 rps replica (10 rps effective) that needs 5 replicas.
        for i in 0..100 {
            a.observe_arrival(i as f64 * 0.02);
        }
        assert_eq!(a.evaluate(2.0, 20.0), 5);
    }

    #[test]
    fn clamps_to_fleet_bounds_and_forgets_old_arrivals() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.evaluate(1.0, 20.0), 1, "idle fleet floors at min");
        for i in 0..10_000 {
            a.observe_arrival(1.0 + i as f64 * 1e-4);
        }
        assert_eq!(a.evaluate(2.0, 20.0), 8, "storm ceilings at max");
        // 10 seconds later the window is empty again.
        assert_eq!(a.evaluate(12.0, 20.0), 1);
    }

    #[test]
    fn empty_window_reads_exactly_zero_and_boundary_arrival_counts() {
        let mut a = Autoscaler::new(cfg());
        // Empty window: rate is exactly 0.0 (the documented convention,
        // never NaN), so sizing floors at min_replicas.
        assert_eq!(a.evaluate(1.0, 20.0), 1);
        // 60 arrivals at t=0 sit exactly on the window boundary at
        // now=2.0: RateWindow keeps them (30 rps -> 3 replicas at 10 rps
        // effective), and strictly past the boundary they are gone —
        // the private-deque eviction rule, preserved bit-for-bit.
        for _ in 0..60 {
            a.observe_arrival(0.0);
        }
        assert_eq!(a.evaluate(2.0, 20.0), 3, "boundary timestamp counts");
        assert_eq!(a.evaluate(2.5, 20.0), 1, "then evicts to empty -> 0.0");
    }

    #[test]
    fn eval_deadline_advances_past_now() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.next_eval_s(), 1.0);
        let _ = a.evaluate(1.0, 20.0);
        assert_eq!(a.next_eval_s(), 2.0);
        let _ = a.evaluate(5.5, 20.0);
        assert_eq!(a.next_eval_s(), 6.0);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn rejects_zero_utilization() {
        let _ = AutoscaleConfig::new(1.0, 1.0, 0.0, 1, 2, 0.0);
    }
}
