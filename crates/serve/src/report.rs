//! What one serving run measured.

use dl_obs::{fields, Fields, ToFields};

/// Per-variant traffic accounting.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct VariantServeStats {
    /// Variant name.
    pub name: String,
    /// Requests answered by this variant.
    pub served: usize,
    /// Batches flushed for this variant.
    pub batches: usize,
    /// Requests answered correctly (against the dataset labels).
    pub correct: usize,
}

impl ToFields for VariantServeStats {
    fn to_fields(&self) -> Fields {
        fields! {
            "variant" => self.name.clone(),
            "served" => self.served,
            "batches" => self.batches,
            "correct" => self.correct,
        }
    }
}

/// The measured outcome of one serving run: the throughput / tail-latency
/// / accuracy triple E25 sweeps, plus the controller's interventions.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct ServeReport {
    /// Requests offered by the load generator.
    pub offered: usize,
    /// Requests answered.
    pub served: usize,
    /// Requests rejected by admission control.
    pub shed: usize,
    /// Requests answered by a cheaper variant than requested.
    pub downgraded: usize,
    /// Simulated seconds from first arrival to last completion.
    pub sim_seconds: f64,
    /// Served requests per simulated second.
    pub throughput_rps: f64,
    /// Accuracy over the answered requests.
    pub accuracy: f64,
    /// Exact median response latency, seconds.
    pub p50_s: f64,
    /// Exact 99th-percentile response latency, seconds.
    pub p99_s: f64,
    /// Worst response latency, seconds.
    pub max_s: f64,
    /// Mean response latency, seconds.
    pub mean_s: f64,
    /// Mean flushed batch size.
    pub mean_batch: f64,
    /// Per-variant traffic breakdown, registry order.
    pub per_variant: Vec<VariantServeStats>,
}

impl ServeReport {
    /// Fraction of offered requests that were shed.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

impl ToFields for ServeReport {
    fn to_fields(&self) -> Fields {
        fields! {
            "offered" => self.offered,
            "served" => self.served,
            "shed" => self.shed,
            "downgraded" => self.downgraded,
            "sim_seconds" => self.sim_seconds,
            "throughput_rps" => self.throughput_rps,
            "accuracy" => self.accuracy,
            "p50_s" => self.p50_s,
            "p99_s" => self.p99_s,
            "max_s" => self.max_s,
            "mean_s" => self.mean_s,
            "mean_batch" => self.mean_batch,
        }
    }
}

/// Exact nearest-rank percentile of unsorted latencies.
///
/// An empty slice returns `0.0` by convention — a report with no
/// completions has no tail, and 0 keeps downstream metric tables finite
/// instead of poisoning them with NaN. `q` is clamped to `[0, 1]`.
#[must_use]
pub fn percentile(latencies: &[f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_exact_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // order-independent
        let mut shuffled = v.clone();
        shuffled.reverse();
        assert_eq!(percentile(&shuffled, 0.99), 99.0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: documented 0.0 convention, at every quantile.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[], q), 0.0);
        }
        // Single element: every quantile is that element.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.25], q), 7.25);
        }
        // q = 1.0 is the maximum, q out of range clamps.
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 1.0), 3.0);
        assert_eq!(percentile(&v, 2.0), 3.0);
        assert_eq!(percentile(&v, -1.0), 1.0);
    }

    #[test]
    fn shed_fraction_handles_empty() {
        let r = ServeReport {
            offered: 0,
            served: 0,
            shed: 0,
            downgraded: 0,
            sim_seconds: 0.0,
            throughput_rps: 0.0,
            accuracy: 0.0,
            p50_s: 0.0,
            p99_s: 0.0,
            max_s: 0.0,
            mean_s: 0.0,
            mean_batch: 0.0,
            per_variant: vec![],
        };
        assert_eq!(r.shed_fraction(), 0.0);
    }
}
