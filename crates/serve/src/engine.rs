//! The deterministic serving engine: one simulated device, per-variant
//! queues, event-driven time on `dl_obs::VirtualClock`.
//!
//! The engine replays an open-loop arrival schedule against the variant
//! family. Each flushed batch *actually runs* the batched dl-nn forward
//! (so answers — and therefore measured accuracy — are real), while its
//! duration comes from the variant's measured cost table through the
//! [`DeviceModel`]. All state advances in event order on plain `f64`
//! simulated seconds mirrored into the recorder's `VirtualClock`, so a
//! seeded run is byte-identical every time, traced or not.

use std::collections::VecDeque;

use dl_nn::Dataset;
use dl_obs::{fields, Recorder};

use crate::admission::{admit, AdmissionContext, AdmissionPolicy, Decision};
use crate::batcher::BatchPolicy;
use crate::device::DeviceModel;
use crate::load::Request;
use crate::report::{percentile, ServeReport, VariantServeStats};
use crate::variant::VariantRegistry;

/// One serving run's configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush policy shared by every variant queue.
    pub batch: BatchPolicy,
    /// Admission policy applied to every arrival.
    pub admission: AdmissionPolicy,
    /// Name of the variant requests target before any downgrade.
    pub primary: String,
    /// The simulated device executing batches.
    pub device: DeviceModel,
}

/// A batch the device is currently executing.
struct InFlight {
    variant: usize,
    done_s: f64,
    span: dl_obs::SpanId,
    arrivals: Vec<f64>,
    correct: usize,
    downgraded: usize,
}

/// Serves `requests` (sorted by arrival time) against the family.
///
/// Observability: per-batch spans on the variant's track, `serve.shed` /
/// `serve.downgrade` instants, `serve.{served,shed,downgraded}` counters
/// and a `serve.latency_s` histogram — all through `rec`, so a
/// `NullRecorder` run does no collection work and returns a bit-identical
/// report (the clock still advances; it is shared simulation state).
///
/// # Panics
/// Panics when the primary variant is unknown or a request's sample index
/// is out of range for `data`.
pub fn serve(
    registry: &mut VariantRegistry,
    data: &Dataset,
    requests: &[Request],
    cfg: &ServeConfig,
    rec: &dyn Recorder,
) -> ServeReport {
    let primary = registry
        .index_of(&cfg.primary)
        .unwrap_or_else(|| panic!("unknown primary variant {:?}", cfg.primary));
    let n_variants = registry.variants.len();
    let mut queues: Vec<VecDeque<Request>> = vec![VecDeque::new(); n_variants];
    let mut stats: Vec<VariantServeStats> = registry
        .variants
        .iter()
        .map(|v| VariantServeStats {
            name: v.name.clone(),
            served: 0,
            batches: 0,
            correct: 0,
        })
        .collect();

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut in_flight: Option<InFlight> = None;
    let mut latencies: Vec<f64> = Vec::with_capacity(requests.len());
    let mut downgraded_pending: Vec<VecDeque<bool>> = vec![VecDeque::new(); n_variants];
    let mut shed = 0usize;
    let mut downgraded = 0usize;
    let mut first_arrival = f64::INFINITY;
    let mut last_completion = 0.0f64;

    loop {
        // ---- next event time -------------------------------------------
        let drain = next_arrival >= requests.len();
        let mut t_next = f64::INFINITY;
        if let Some(fl) = &in_flight {
            t_next = t_next.min(fl.done_s);
        }
        if !drain {
            t_next = t_next.min(requests[next_arrival].arrival_s);
        }
        if in_flight.is_none() {
            for q in &queues {
                if let Some(head) = q.front() {
                    let deadline = cfg
                        .batch
                        .next_deadline(q.len(), head.arrival_s)
                        .expect("non-empty queue has a deadline");
                    // Draining: nothing can top the batch up, go now.
                    t_next = t_next.min(if drain { now } else { deadline });
                }
            }
        }
        if t_next.is_infinite() {
            break;
        }
        now = now.max(t_next);
        rec.clock().set(now);

        // ---- 1: completion ---------------------------------------------
        if let Some(fl) = &in_flight {
            if fl.done_s <= now {
                let fl = in_flight.take().expect("checked above");
                for &arrival in &fl.arrivals {
                    let latency = fl.done_s - arrival;
                    latencies.push(latency);
                    rec.observe("serve.latency_s", latency);
                }
                let b = fl.arrivals.len();
                stats[fl.variant].served += b;
                stats[fl.variant].batches += 1;
                stats[fl.variant].correct += fl.correct;
                downgraded += fl.downgraded;
                rec.add_counter("serve.served", b as u64);
                rec.add_counter("serve.downgraded", fl.downgraded as u64);
                rec.span_end(fl.span, fields! { "batch" => b });
                last_completion = last_completion.max(fl.done_s);
                continue;
            }
        }

        // ---- 2: arrival ------------------------------------------------
        if !drain && requests[next_arrival].arrival_s <= now {
            let req = requests[next_arrival];
            next_arrival += 1;
            first_arrival = first_arrival.min(req.arrival_s);
            let queue_lens: Vec<usize> = queues.iter().map(VecDeque::len).collect();
            let busy_remaining_s = in_flight
                .as_ref()
                .map_or(0.0, |fl| (fl.done_s - now).max(0.0));
            let ctx = AdmissionContext {
                registry,
                device: &cfg.device,
                batch: &cfg.batch,
                queue_lens: &queue_lens,
                busy_remaining_s,
            };
            match admit(&cfg.admission, &ctx, primary) {
                Decision::Accept(v) => {
                    queues[v].push_back(req);
                    downgraded_pending[v].push_back(false);
                }
                Decision::Downgrade { from, to } => {
                    queues[to].push_back(req);
                    downgraded_pending[to].push_back(true);
                    rec.instant(
                        to as u32,
                        "serve.downgrade",
                        fields! {
                            "request" => req.id,
                            "from" => registry.variants[from].name.clone(),
                            "to" => registry.variants[to].name.clone(),
                        },
                    );
                }
                Decision::Shed => {
                    shed += 1;
                    rec.add_counter("serve.shed", 1);
                    rec.instant(
                        primary as u32,
                        "serve.shed",
                        fields! { "request" => req.id },
                    );
                }
            }
            continue;
        }

        // ---- 3: flush --------------------------------------------------
        if in_flight.is_none() {
            // Oldest head wins; ties break on the lower variant index.
            let ready = (0..n_variants)
                .filter(|&v| {
                    queues[v].front().is_some_and(|head| {
                        cfg.batch.ready(queues[v].len(), head.arrival_s, now, drain)
                    })
                })
                .min_by(|&a, &b| {
                    queues[a]
                        .front()
                        .expect("ready implies non-empty")
                        .arrival_s
                        .total_cmp(&queues[b].front().expect("ready implies non-empty").arrival_s)
                });
            if let Some(v) = ready {
                let b = queues[v].len().min(cfg.batch.max_batch);
                let mut samples = Vec::with_capacity(b);
                let mut arrivals = Vec::with_capacity(b);
                let mut batch_downgrades = 0usize;
                for _ in 0..b {
                    let r = queues[v].pop_front().expect("len checked");
                    samples.push(r.sample);
                    arrivals.push(r.arrival_s);
                    if downgraded_pending[v].pop_front().expect("tracks queue") {
                        batch_downgrades += 1;
                    }
                }
                // The real batched forward: one [B, d] eval-mode pass,
                // fanned across the kernel pool only when the batch's
                // measured cost amortizes the per-thread launch overhead
                // (small batches stay sequential). The parallel kernels
                // are bit-identical, so neither answers nor simulated
                // time depend on the thread count.
                let cost = *registry.variants[v].cost_at(b);
                let threads = cfg.device.threads_for(&cost, dl_tensor::par::threads());
                let xb = data.x.select_rows(&samples);
                let variant = &mut registry.variants[v];
                let preds =
                    dl_tensor::par::with_threads(threads, || variant.model.predict(&xb));
                let correct = preds
                    .iter()
                    .zip(&samples)
                    .filter(|(p, &s)| **p == data.y[s])
                    .count();
                let dur = cfg.device.service_time(&cost);
                let span = rec.span_start(
                    v as u32,
                    "serve.batch",
                    fields! {
                        "variant" => registry.variants[v].name.clone(),
                        "batch" => b,
                    },
                );
                in_flight = Some(InFlight {
                    variant: v,
                    done_s: now + dur,
                    span,
                    arrivals,
                    correct,
                    downgraded: batch_downgrades,
                });
            }
        }
    }

    // ---- report ---------------------------------------------------------
    let served: usize = stats.iter().map(|s| s.served).sum();
    let correct: usize = stats.iter().map(|s| s.correct).sum();
    let batches: usize = stats.iter().map(|s| s.batches).sum();
    let sim_seconds = if served == 0 {
        0.0
    } else {
        last_completion - first_arrival.min(last_completion)
    };
    ServeReport {
        offered: requests.len(),
        served,
        shed,
        downgraded,
        sim_seconds,
        throughput_rps: if sim_seconds > 0.0 {
            served as f64 / sim_seconds
        } else {
            0.0
        },
        accuracy: if served == 0 {
            0.0
        } else {
            correct as f64 / served as f64
        },
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        max_s: latencies.iter().copied().fold(0.0, f64::max),
        mean_s: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        mean_batch: if batches == 0 {
            0.0
        } else {
            served as f64 / batches as f64
        },
        per_variant: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{open_loop, LoadConfig};
    use crate::variant::{build_family, FamilyConfig};
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn family_and_data() -> (VariantRegistry, Dataset) {
        let data = dl_data::blobs(120, 3, 8, 6.0, 0.5, 70);
        let eval = dl_data::blobs(80, 3, 8, 6.0, 0.5, 71);
        let reg = build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 24, 3],
                student_hidden: vec![6],
                prune_sparsity: 0.7,
                morph_budget: 150,
                ensemble_members: 2,
                max_batch: 16,
                epochs: 9,
                seed: 80,
            },
        );
        (reg, eval)
    }

    fn cfg(batch: BatchPolicy, admission: AdmissionPolicy) -> ServeConfig {
        ServeConfig {
            batch,
            admission,
            primary: "fp32-base".into(),
            device: DeviceModel::nominal(),
        }
    }

    #[test]
    fn run_is_deterministic_and_recorder_invisible() {
        let (mut reg, eval) = family_and_data();
        let load = open_loop(
            &LoadConfig {
                rate_rps: 200_000.0,
                requests: 400,
                seed: 5,
            },
            eval.x.dims()[0],
        );
        let c = cfg(BatchPolicy::dynamic(16, 5e-6), AdmissionPolicy::AcceptAll);
        let a = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        let b = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        assert_eq!(a, b, "same schedule, same report");
        let rec = TimelineRecorder::new();
        let traced = serve(&mut reg, &eval, &load, &c, &rec);
        assert_eq!(a, traced, "tracing must not change the result");
        let events = rec.events();
        assert!(events.iter().any(|e| e.name == "serve.batch"));
        let h = rec.histogram("serve.latency_s").expect("latency histogram");
        assert_eq!(h.count, traced.served as u64);
    }

    #[test]
    fn all_requests_served_without_admission_control() {
        let (mut reg, eval) = family_and_data();
        let load = open_loop(
            &LoadConfig {
                rate_rps: 50_000.0,
                requests: 300,
                seed: 6,
            },
            eval.x.dims()[0],
        );
        let c = cfg(BatchPolicy::no_batching(), AdmissionPolicy::AcceptAll);
        let r = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        assert_eq!(r.served, 300);
        assert_eq!(r.shed, 0);
        assert_eq!(r.downgraded, 0);
        assert!((r.mean_batch - 1.0).abs() < 1e-12, "batch=1 policy");
        assert!(r.accuracy > 0.5, "served answers come from a real model");
        assert!(r.p50_s <= r.p99_s && r.p99_s <= r.max_s);
    }

    #[test]
    fn batching_multiplies_throughput_at_bounded_tail() {
        let (mut reg, eval) = family_and_data();
        // Offered load near the batch=1 saturation knee.
        let base = &reg.variants[0];
        let device = DeviceModel::nominal();
        let cap1 = 1.0 / device.service_time(base.cost_at(1));
        let load = open_loop(
            &LoadConfig {
                rate_rps: 3.0 * cap1,
                requests: 600,
                seed: 7,
            },
            eval.x.dims()[0],
        );
        let single = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(BatchPolicy::no_batching(), AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        let dynamic = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(BatchPolicy::dynamic(16, 5e-6), AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        assert!(dynamic.mean_batch > 2.0, "batches actually form");
        assert!(
            dynamic.throughput_rps > 2.0 * single.throughput_rps,
            "dynamic {} vs batch=1 {}",
            dynamic.throughput_rps,
            single.throughput_rps
        );
        assert!(
            dynamic.p99_s < single.p99_s,
            "amortized service keeps the tail lower at 3x the knee"
        );
    }

    #[test]
    fn slo_aware_admission_bounds_the_tail_under_overload() {
        let (mut reg, eval) = family_and_data();
        let device = DeviceModel::nominal();
        let batch = BatchPolicy::dynamic(16, 5e-6);
        let base = &reg.variants[0];
        let cap_dyn = 16.0 / device.service_time(base.cost_at(16));
        let slo = 2e-5;
        let load = open_loop(
            &LoadConfig {
                rate_rps: 2.0 * cap_dyn,
                requests: 2000,
                seed: 8,
            },
            eval.x.dims()[0],
        );
        let melted = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(batch, AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        let governed = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(
                batch,
                AdmissionPolicy::SloAware {
                    p99_slo_s: slo,
                    headroom: 0.7,
                    min_accuracy: 0.0,
                },
            ),
            &NullRecorder::new(),
        );
        assert!(
            melted.p99_s > 2.0 * slo,
            "accept-all must bust the SLO at 2x capacity: p99 {}",
            melted.p99_s
        );
        assert!(governed.shed > 0, "overload must shed");
        assert!(
            governed.p99_s <= slo,
            "governed p99 {} vs slo {slo}",
            governed.p99_s
        );
        assert!(governed.served + governed.shed == governed.offered);
    }
}
