//! The deterministic serving engine: one simulated device, per-variant
//! queues, event-driven time on `dl_obs::VirtualClock`.
//!
//! The engine replays an open-loop arrival schedule against the variant
//! family. Each flushed batch *actually runs* the batched dl-nn forward
//! (so answers — and therefore measured accuracy — are real), while its
//! duration comes from the variant's measured cost table through the
//! [`DeviceModel`]. All state advances in event order on plain `f64`
//! simulated seconds mirrored into the recorder's `VirtualClock`, so a
//! seeded run is byte-identical every time, traced or not.
//!
//! Since the cluster tier arrived, the per-device state machine lives in
//! [`ReplicaEngine`]: a steppable unit the single-node [`serve`] loop
//! drives directly and `dl_serve::cluster` replicates N times behind a
//! router. Both drivers call the same handlers in the same priority
//! order (completion → arrival → flush), so a fault-free one-replica
//! cluster is bit-identical to single-node serving.

use std::collections::VecDeque;

use dl_nn::Dataset;
use dl_obs::{fields, Recorder};

use crate::admission::{admit, AdmissionContext, AdmissionPolicy, Decision};
use crate::batcher::BatchPolicy;
use crate::device::DeviceModel;
use crate::load::Request;
use crate::report::{percentile, ServeReport, VariantServeStats};
use crate::variant::VariantRegistry;

/// One serving run's configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush policy shared by every variant queue.
    pub batch: BatchPolicy,
    /// Admission policy applied to every arrival.
    pub admission: AdmissionPolicy,
    /// Name of the variant requests target before any downgrade.
    pub primary: String,
    /// The simulated device executing batches.
    pub device: DeviceModel,
}

/// A batch the device is currently executing.
struct InFlight {
    variant: usize,
    done_s: f64,
    span: dl_obs::SpanId,
    requests: Vec<Request>,
    preds: Vec<usize>,
    correct: Vec<bool>,
    downgraded: Vec<bool>,
}

/// Everything one replica accumulated, handed back at the end of a run.
#[derive(Debug, Clone)]
#[must_use]
pub struct ReplicaParts {
    /// Per-variant traffic accounting, registry order.
    pub stats: Vec<VariantServeStats>,
    /// Response latencies in completion order.
    pub latencies: Vec<f64>,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests answered by a cheaper variant than requested.
    pub downgraded: usize,
    /// Completions discarded because another replica answered first
    /// (hedged duplicates); always zero single-node.
    pub wasted: usize,
    /// Earliest arrival this replica saw (`INFINITY` when none).
    pub first_arrival_s: f64,
    /// Latest batch completion (0 when none).
    pub last_completion_s: f64,
}

/// One steppable serving device: per-variant queues, at most one batch in
/// flight, all timing in simulated seconds.
///
/// The engine never advances time itself — a driver computes the next
/// event time from [`ReplicaEngine::next_completion_s`] /
/// [`ReplicaEngine::next_flush_deadline_s`] (plus its own arrival
/// schedule), then invokes the matching handler. This is what makes the
/// same state machine serve both the single-node loop and the replicated
/// cluster tier.
pub struct ReplicaEngine {
    track_base: u32,
    /// Replica id recovered from the track layout (`track_base /
    /// n_variants`), stamped on the structured serving samples the
    /// monitor tier consumes.
    replica: u32,
    primary: usize,
    queues: Vec<VecDeque<Request>>,
    downgraded_pending: Vec<VecDeque<bool>>,
    in_flight: Option<InFlight>,
    stats: Vec<VariantServeStats>,
    latencies: Vec<f64>,
    shed: usize,
    downgraded: usize,
    wasted: usize,
    first_arrival: f64,
    last_completion: f64,
    /// Monotone per-replica batch sequence number, stamped on the
    /// `serve.batch` span and each member's `serve.batch_join` instant so
    /// traces can name the batch a request rode in.
    batch_seq: u64,
}

impl ReplicaEngine {
    /// A fresh, idle replica. `track_base` offsets the dl-obs track ids
    /// this replica emits on (replica `r` of an `n`-variant family uses
    /// tracks `r * n .. (r + 1) * n`, so single-node serving — base 0 —
    /// keeps its historical track layout).
    ///
    /// # Panics
    /// Panics when the configured primary variant is unknown.
    pub fn new(registry: &VariantRegistry, cfg: &ServeConfig, track_base: u32) -> Self {
        let primary = registry
            .index_of(&cfg.primary)
            .unwrap_or_else(|| panic!("unknown primary variant {:?}", cfg.primary));
        let n_variants = registry.variants.len();
        ReplicaEngine {
            track_base,
            replica: track_base / n_variants.max(1) as u32,
            primary,
            queues: vec![VecDeque::new(); n_variants],
            downgraded_pending: vec![VecDeque::new(); n_variants],
            in_flight: None,
            stats: registry
                .variants
                .iter()
                .map(|v| VariantServeStats {
                    name: v.name.clone(),
                    served: 0,
                    batches: 0,
                    correct: 0,
                })
                .collect(),
            latencies: Vec::new(),
            shed: 0,
            downgraded: 0,
            wasted: 0,
            first_arrival: f64::INFINITY,
            last_completion: 0.0,
            batch_seq: 0,
        }
    }

    /// When the in-flight batch (if any) completes.
    #[must_use]
    pub fn next_completion_s(&self) -> Option<f64> {
        self.in_flight.as_ref().map(|fl| fl.done_s)
    }

    /// The earliest time a queue could flush on its own: `None` while a
    /// batch is in flight or every queue is empty. Under `drain` (no
    /// future arrivals can top a batch up) waiting is pointless, so any
    /// non-empty queue is due at `now_s`.
    #[must_use]
    pub fn next_flush_deadline_s(&self, batch: &BatchPolicy, now_s: f64, drain: bool) -> Option<f64> {
        if self.in_flight.is_some() {
            return None;
        }
        let mut t = f64::INFINITY;
        for q in &self.queues {
            if let Some(head) = q.front() {
                let deadline = batch
                    .next_deadline(q.len(), head.arrival_s)
                    .expect("non-empty queue has a deadline");
                t = t.min(if drain { now_s } else { deadline });
            }
        }
        (t < f64::INFINITY).then_some(t)
    }

    /// Queued plus in-flight requests — the router's load signal.
    #[must_use]
    pub fn load(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>()
            + self.in_flight.as_ref().map_or(0, |fl| fl.requests.len())
    }

    /// True when nothing is queued or executing.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Requests waiting in queues — work that still needs the family's
    /// weights (an in-flight batch already read them).
    #[must_use]
    pub fn queued_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Completes the in-flight batch if it is due at `now_s`. `fresh`
    /// decides per request whether this completion counts (the cluster's
    /// hedging dedup; single-node passes `|_| true`). Returns whether a
    /// completion happened.
    pub fn try_complete(
        &mut self,
        now_s: f64,
        rec: &dyn Recorder,
        fresh: &mut dyn FnMut(&Request) -> bool,
    ) -> bool {
        match &self.in_flight {
            Some(fl) if fl.done_s <= now_s => {}
            _ => return false,
        }
        let fl = self.in_flight.take().expect("checked above");
        let b = fl.requests.len();
        let mut served = 0usize;
        let mut correct = 0usize;
        let mut downgrades = 0usize;
        for (i, req) in fl.requests.iter().enumerate() {
            if !fresh(req) {
                self.wasted += 1;
                // The losing copy of a hedge race: it burned a batch slot
                // but another replica had already answered.
                dl_trace::emit_hedge_loser(
                    rec,
                    self.track_base + fl.variant as u32,
                    req.id,
                    self.replica,
                    fl.done_s - req.arrival_s,
                );
                continue;
            }
            served += 1;
            let latency = fl.done_s - req.arrival_s;
            self.latencies.push(latency);
            // The request id rides along as a bucket exemplar, linking
            // histogram tail buckets back to concrete waterfalls.
            rec.observe_exemplar("serve.latency_s", latency, req.id);
            if rec.enabled() {
                // The structured per-request sample the monitor tier
                // subscribes to (skipped entirely on the NullRecorder
                // path, which keeps unmonitored serving allocation-free).
                rec.instant(
                    self.track_base + fl.variant as u32,
                    "serve.complete",
                    fields! {
                        "request" => req.id,
                        "replica" => self.replica,
                        "latency_s" => latency,
                        "sample" => req.sample,
                        "pred" => fl.preds[i],
                        "downgraded" => fl.downgraded[i],
                    },
                );
            }
            if fl.correct[i] {
                correct += 1;
            }
            if fl.downgraded[i] {
                downgrades += 1;
            }
        }
        self.stats[fl.variant].served += served;
        self.stats[fl.variant].batches += 1;
        self.stats[fl.variant].correct += correct;
        self.downgraded += downgrades;
        rec.add_counter("serve.served", served as u64);
        rec.add_counter("serve.downgraded", downgrades as u64);
        rec.span_end(fl.span, fields! { "batch" => b, "replica" => self.replica });
        self.last_completion = self.last_completion.max(fl.done_s);
        true
    }

    /// Runs one arrival through admission control and enqueues (or sheds)
    /// it. Returns the controller's decision.
    pub fn admit_arrival(
        &mut self,
        req: Request,
        registry: &VariantRegistry,
        cfg: &ServeConfig,
        now_s: f64,
        rec: &dyn Recorder,
    ) -> Decision {
        self.admit_arrival_with_residency(req, registry, cfg, now_s, 0.0, rec)
    }

    /// As [`ReplicaEngine::admit_arrival`], but charging the admission
    /// prediction `residency_delay_s` extra seconds before the family's
    /// weights are usable (the multi-model tier's cold-start signal;
    /// `0.0` — always-resident weights — is exactly `admit_arrival`).
    #[allow(clippy::too_many_arguments)]
    pub fn admit_arrival_with_residency(
        &mut self,
        req: Request,
        registry: &VariantRegistry,
        cfg: &ServeConfig,
        now_s: f64,
        residency_delay_s: f64,
        rec: &dyn Recorder,
    ) -> Decision {
        self.first_arrival = self.first_arrival.min(req.arrival_s);
        let queue_lens: Vec<usize> = self.queues.iter().map(VecDeque::len).collect();
        let busy_remaining_s = self
            .in_flight
            .as_ref()
            .map_or(0.0, |fl| (fl.done_s - now_s).max(0.0));
        let ctx = AdmissionContext {
            registry,
            device: &cfg.device,
            batch: &cfg.batch,
            queue_lens: &queue_lens,
            busy_remaining_s,
            residency_delay_s,
        };
        let decision = admit(&cfg.admission, &ctx, self.primary);
        match decision {
            Decision::Accept(v) => {
                self.queues[v].push_back(req);
                self.downgraded_pending[v].push_back(false);
                if rec.enabled() {
                    rec.instant(
                        self.track_base + v as u32,
                        "serve.admit",
                        fields! {
                            "request" => req.id,
                            "replica" => self.replica,
                            "queue" => self.load(),
                        },
                    );
                }
            }
            Decision::Downgrade { from, to } => {
                self.queues[to].push_back(req);
                self.downgraded_pending[to].push_back(true);
                rec.instant(
                    self.track_base + to as u32,
                    "serve.downgrade",
                    fields! {
                        "request" => req.id,
                        "replica" => self.replica,
                        "queue" => self.load(),
                        "from" => registry.variants[from].name.clone(),
                        "to" => registry.variants[to].name.clone(),
                    },
                );
            }
            Decision::Shed => {
                self.shed += 1;
                rec.add_counter("serve.shed", 1);
                rec.instant(
                    self.track_base + self.primary as u32,
                    "serve.shed",
                    fields! { "request" => req.id, "replica" => self.replica },
                );
            }
        }
        decision
    }

    /// Flushes the readiest queue into an in-flight batch if the device is
    /// idle and some queue is due at `now_s`. `service_factor` scales the
    /// batch's simulated duration (cold-start warmup, stragglers; 1.0
    /// nominal). Returns whether a batch launched.
    #[allow(clippy::too_many_arguments)]
    pub fn try_flush(
        &mut self,
        registry: &mut VariantRegistry,
        data: &Dataset,
        cfg: &ServeConfig,
        now_s: f64,
        drain: bool,
        service_factor: f64,
        rec: &dyn Recorder,
    ) -> bool {
        if self.in_flight.is_some() {
            return false;
        }
        // Oldest head wins; ties break on the lower variant index.
        let n_variants = self.queues.len();
        let ready = (0..n_variants)
            .filter(|&v| {
                self.queues[v].front().is_some_and(|head| {
                    cfg.batch
                        .ready(self.queues[v].len(), head.arrival_s, now_s, drain)
                })
            })
            .min_by(|&a, &b| {
                self.queues[a]
                    .front()
                    .expect("ready implies non-empty")
                    .arrival_s
                    .total_cmp(
                        &self.queues[b]
                            .front()
                            .expect("ready implies non-empty")
                            .arrival_s,
                    )
            });
        let Some(v) = ready else { return false };
        // Why this batch flushed *now*, mirroring `BatchPolicy::ready`'s
        // precedence: a full queue flushes regardless, drain mode flushes
        // whatever is left, and otherwise the head request aged out.
        let trigger = if self.queues[v].len() >= cfg.batch.max_batch {
            dl_trace::FlushTrigger::Full
        } else if drain {
            dl_trace::FlushTrigger::Drain
        } else {
            dl_trace::FlushTrigger::Aged
        };
        let b = self.queues[v].len().min(cfg.batch.max_batch);
        let mut requests = Vec::with_capacity(b);
        let mut samples = Vec::with_capacity(b);
        let mut downgraded = Vec::with_capacity(b);
        for _ in 0..b {
            let r = self.queues[v].pop_front().expect("len checked");
            samples.push(r.sample);
            requests.push(r);
            downgraded.push(self.downgraded_pending[v].pop_front().expect("tracks queue"));
        }
        // The real batched forward: one [B, d] eval-mode pass, fanned
        // across the kernel pool only when the batch's measured cost
        // amortizes the per-thread launch overhead (small batches stay
        // sequential). The parallel kernels are bit-identical, so neither
        // answers nor simulated time depend on the thread count.
        let cost = *registry.variants[v].cost_at(b);
        let threads = cfg.device.threads_for(&cost, dl_tensor::par::threads());
        let xb = data.x.select_rows(&samples);
        let variant = &mut registry.variants[v];
        let preds = dl_tensor::par::with_threads(threads, || variant.model.predict(&xb));
        let correct: Vec<bool> = preds
            .iter()
            .zip(&samples)
            .map(|(p, &s)| *p == data.y[s])
            .collect();
        let dur = cfg.device.service_time(&cost) * service_factor;
        let span = rec.span_start(
            self.track_base + v as u32,
            "serve.batch",
            fields! {
                "variant" => registry.variants[v].name.clone(),
                "batch" => b,
                "replica" => self.replica,
                "seq" => self.batch_seq,
            },
        );
        if rec.enabled() {
            for (pos, r) in requests.iter().enumerate() {
                dl_trace::emit_batch_join(
                    rec,
                    self.track_base + v as u32,
                    r.id,
                    self.replica,
                    self.batch_seq,
                    pos,
                    b,
                    trigger,
                );
            }
        }
        self.batch_seq += 1;
        self.in_flight = Some(InFlight {
            variant: v,
            done_s: now_s + dur,
            span,
            requests,
            preds,
            correct,
            downgraded,
        });
        true
    }

    /// Crash-stops the replica: the in-flight batch is abandoned (its span
    /// ends marked `crashed`) and every queue empties. Returns the lost
    /// requests — in-flight first, then queued in variant order — for the
    /// cluster's retry policy to re-route or discard.
    pub fn crash_drain(&mut self, rec: &dyn Recorder) -> Vec<Request> {
        let mut lost = Vec::new();
        if let Some(fl) = self.in_flight.take() {
            rec.span_end(
                fl.span,
                fields! { "batch" => fl.requests.len(), "crashed" => true, "replica" => self.replica },
            );
            lost.extend(fl.requests);
        }
        for (q, flags) in self.queues.iter_mut().zip(&mut self.downgraded_pending) {
            lost.extend(q.drain(..));
            flags.clear();
        }
        lost
    }

    /// Consumes the replica, yielding its accumulated accounting.
    pub fn into_parts(self) -> ReplicaParts {
        ReplicaParts {
            stats: self.stats,
            latencies: self.latencies,
            shed: self.shed,
            downgraded: self.downgraded,
            wasted: self.wasted,
            first_arrival_s: self.first_arrival,
            last_completion_s: self.last_completion,
        }
    }
}

/// Aggregates one or more replicas' [`ReplicaParts`] into a
/// [`ServeReport`]. Latencies concatenate in replica order (percentiles
/// sort internally, so the order only fixes the f64 summation order —
/// deterministically).
pub(crate) fn assemble_report(offered: usize, parts: Vec<ReplicaParts>) -> ServeReport {
    let mut stats: Vec<VariantServeStats> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0usize;
    let mut downgraded = 0usize;
    let mut first_arrival = f64::INFINITY;
    let mut last_completion = 0.0f64;
    for p in parts {
        if stats.is_empty() {
            stats = p.stats;
        } else {
            for (agg, s) in stats.iter_mut().zip(p.stats) {
                agg.served += s.served;
                agg.batches += s.batches;
                agg.correct += s.correct;
            }
        }
        latencies.extend(p.latencies);
        shed += p.shed;
        downgraded += p.downgraded;
        first_arrival = first_arrival.min(p.first_arrival_s);
        last_completion = last_completion.max(p.last_completion_s);
    }
    let served: usize = stats.iter().map(|s| s.served).sum();
    let correct: usize = stats.iter().map(|s| s.correct).sum();
    let batches: usize = stats.iter().map(|s| s.batches).sum();
    let sim_seconds = if served == 0 {
        0.0
    } else {
        last_completion - first_arrival.min(last_completion)
    };
    ServeReport {
        offered,
        served,
        shed,
        downgraded,
        sim_seconds,
        throughput_rps: if sim_seconds > 0.0 {
            served as f64 / sim_seconds
        } else {
            0.0
        },
        accuracy: if served == 0 {
            0.0
        } else {
            correct as f64 / served as f64
        },
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        max_s: latencies.iter().copied().fold(0.0, f64::max),
        mean_s: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        mean_batch: if batches == 0 {
            0.0
        } else {
            served as f64 / batches as f64
        },
        per_variant: stats,
    }
}

/// Serves `requests` (sorted by arrival time) against the family.
///
/// Observability: per-batch spans on the variant's track, `serve.shed` /
/// `serve.downgrade` instants, `serve.{served,shed,downgraded}` counters
/// and a `serve.latency_s` histogram — all through `rec`, so a
/// `NullRecorder` run does no collection work and returns a bit-identical
/// report (the clock still advances; it is shared simulation state).
///
/// # Panics
/// Panics when the primary variant is unknown or a request's sample index
/// is out of range for `data`.
pub fn serve(
    registry: &mut VariantRegistry,
    data: &Dataset,
    requests: &[Request],
    cfg: &ServeConfig,
    rec: &dyn Recorder,
) -> ServeReport {
    let mut engine = ReplicaEngine::new(registry, cfg, 0);
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;

    loop {
        // ---- next event time -------------------------------------------
        let drain = next_arrival >= requests.len();
        let mut t_next = f64::INFINITY;
        if let Some(t) = engine.next_completion_s() {
            t_next = t_next.min(t);
        }
        if !drain {
            t_next = t_next.min(requests[next_arrival].arrival_s);
        }
        if let Some(t) = engine.next_flush_deadline_s(&cfg.batch, now, drain) {
            t_next = t_next.min(t);
        }
        if t_next.is_infinite() {
            break;
        }
        now = now.max(t_next);
        rec.clock().set(now);

        // ---- 1: completion ---------------------------------------------
        if engine.try_complete(now, rec, &mut |_| true) {
            continue;
        }

        // ---- 2: arrival ------------------------------------------------
        if !drain && requests[next_arrival].arrival_s <= now {
            let req = requests[next_arrival];
            next_arrival += 1;
            let _ = engine.admit_arrival(req, registry, cfg, now, rec);
            continue;
        }

        // ---- 3: flush --------------------------------------------------
        engine.try_flush(registry, data, cfg, now, drain, 1.0, rec);
    }

    assemble_report(requests.len(), vec![engine.into_parts()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{open_loop, LoadConfig};
    use crate::variant::{build_family, FamilyConfig};
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn family_and_data() -> (VariantRegistry, Dataset) {
        let data = dl_data::blobs(120, 3, 8, 6.0, 0.5, 70);
        let eval = dl_data::blobs(80, 3, 8, 6.0, 0.5, 71);
        let reg = build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 24, 3],
                student_hidden: vec![6],
                prune_sparsity: 0.7,
                morph_budget: 150,
                ensemble_members: 2,
                max_batch: 16,
                epochs: 9,
                seed: 80,
            },
        );
        (reg, eval)
    }

    fn cfg(batch: BatchPolicy, admission: AdmissionPolicy) -> ServeConfig {
        ServeConfig {
            batch,
            admission,
            primary: "fp32-base".into(),
            device: DeviceModel::nominal(),
        }
    }

    #[test]
    fn run_is_deterministic_and_recorder_invisible() {
        let (mut reg, eval) = family_and_data();
        let load = open_loop(
            &LoadConfig {
                rate_rps: 200_000.0,
                requests: 400,
                seed: 5,
            },
            eval.x.dims()[0],
        );
        let c = cfg(BatchPolicy::dynamic(16, 5e-6), AdmissionPolicy::AcceptAll);
        let a = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        let b = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        assert_eq!(a, b, "same schedule, same report");
        let rec = TimelineRecorder::new();
        let traced = serve(&mut reg, &eval, &load, &c, &rec);
        assert_eq!(a, traced, "tracing must not change the result");
        let events = rec.events();
        assert!(events.iter().any(|e| e.name == "serve.batch"));
        let h = rec.histogram("serve.latency_s").expect("latency histogram");
        assert_eq!(h.count, traced.served as u64);
    }

    #[test]
    fn all_requests_served_without_admission_control() {
        let (mut reg, eval) = family_and_data();
        let load = open_loop(
            &LoadConfig {
                rate_rps: 50_000.0,
                requests: 300,
                seed: 6,
            },
            eval.x.dims()[0],
        );
        let c = cfg(BatchPolicy::no_batching(), AdmissionPolicy::AcceptAll);
        let r = serve(&mut reg, &eval, &load, &c, &NullRecorder::new());
        assert_eq!(r.served, 300);
        assert_eq!(r.shed, 0);
        assert_eq!(r.downgraded, 0);
        assert!((r.mean_batch - 1.0).abs() < 1e-12, "batch=1 policy");
        assert!(r.accuracy > 0.5, "served answers come from a real model");
        assert!(r.p50_s <= r.p99_s && r.p99_s <= r.max_s);
    }

    #[test]
    fn batching_multiplies_throughput_at_bounded_tail() {
        let (mut reg, eval) = family_and_data();
        // Offered load near the batch=1 saturation knee.
        let base = &reg.variants[0];
        let device = DeviceModel::nominal();
        let cap1 = 1.0 / device.service_time(base.cost_at(1));
        let load = open_loop(
            &LoadConfig {
                rate_rps: 3.0 * cap1,
                requests: 600,
                seed: 7,
            },
            eval.x.dims()[0],
        );
        let single = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(BatchPolicy::no_batching(), AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        let dynamic = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(BatchPolicy::dynamic(16, 5e-6), AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        assert!(dynamic.mean_batch > 2.0, "batches actually form");
        assert!(
            dynamic.throughput_rps > 2.0 * single.throughput_rps,
            "dynamic {} vs batch=1 {}",
            dynamic.throughput_rps,
            single.throughput_rps
        );
        assert!(
            dynamic.p99_s < single.p99_s,
            "amortized service keeps the tail lower at 3x the knee"
        );
    }

    #[test]
    fn slo_aware_admission_bounds_the_tail_under_overload() {
        let (mut reg, eval) = family_and_data();
        let device = DeviceModel::nominal();
        let batch = BatchPolicy::dynamic(16, 5e-6);
        let base = &reg.variants[0];
        let cap_dyn = 16.0 / device.service_time(base.cost_at(16));
        let slo = 2e-5;
        let load = open_loop(
            &LoadConfig {
                rate_rps: 2.0 * cap_dyn,
                requests: 2000,
                seed: 8,
            },
            eval.x.dims()[0],
        );
        let melted = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(batch, AdmissionPolicy::AcceptAll),
            &NullRecorder::new(),
        );
        let governed = serve(
            &mut reg,
            &eval,
            &load,
            &cfg(
                batch,
                AdmissionPolicy::SloAware {
                    p99_slo_s: slo,
                    headroom: 0.7,
                    min_accuracy: 0.0,
                },
            ),
            &NullRecorder::new(),
        );
        assert!(
            melted.p99_s > 2.0 * slo,
            "accept-all must bust the SLO at 2x capacity: p99 {}",
            melted.p99_s
        );
        assert!(governed.shed > 0, "overload must shed");
        assert!(
            governed.p99_s <= slo,
            "governed p99 {} vs slo {slo}",
            governed.p99_s
        );
        assert!(governed.served + governed.shed == governed.offered);
    }
}
