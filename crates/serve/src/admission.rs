//! SLO-aware admission control: shed or downgrade before the queue busts
//! the tail.
//!
//! An open-loop overload cannot be absorbed by waiting — the queue (and
//! therefore p99) grows without bound. The only bounded-latency responses
//! are to *downgrade* (answer from a cheaper variant, spending accuracy
//! instead of time) or to *shed* (reject outright). The controller
//! predicts the completion delay a request would see from the measured
//! cost tables and refuses work whose prediction would bust the SLO.

use crate::batcher::BatchPolicy;
use crate::device::DeviceModel;
use crate::variant::VariantRegistry;

/// Admission policy for the serving engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Enqueue everything (the policy that melts past the knee).
    AcceptAll,
    /// Keep predicted completion delay inside the SLO.
    SloAware {
        /// The p99 latency objective, simulated seconds.
        p99_slo_s: f64,
        /// Fraction of the SLO the *prediction* may use (< 1 leaves slack
        /// for cross-queue interleaving the estimate cannot see).
        headroom: f64,
        /// Accuracy floor a downgrade target must meet.
        min_accuracy: f64,
    },
}

/// What the controller decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unexamined decision silently drops the shed/downgrade outcome"]
pub enum Decision {
    /// Enqueue on the requested variant.
    Accept(usize),
    /// Enqueue on a cheaper variant than requested.
    Downgrade {
        /// The variant the request asked for.
        from: usize,
        /// The cheaper variant that will answer it.
        to: usize,
    },
    /// Reject: no variant can answer inside the SLO.
    Shed,
}

/// Everything the controller can see at one arrival instant.
#[derive(Debug)]
pub struct AdmissionContext<'a> {
    /// The served family (for measured cost tables and accuracies).
    pub registry: &'a VariantRegistry,
    /// The device converting costs to seconds.
    pub device: &'a DeviceModel,
    /// The flush policy (its delay bound is part of predicted latency).
    pub batch: &'a BatchPolicy,
    /// Current queue length per variant.
    pub queue_lens: &'a [usize],
    /// Seconds of already-committed work: remaining in-flight batch time.
    pub busy_remaining_s: f64,
    /// Seconds before the requested family's weights are usable on this
    /// replica: zero when resident (warm), the modeled artifact load time
    /// when the weight store must fault it in (cold). Added to every
    /// variant's predicted delay, so a cold model can push an arrival
    /// over the SLO budget that a warm one would have met.
    pub residency_delay_s: f64,
}

impl AdmissionContext<'_> {
    /// Seconds to drain `len` queued requests of variant `v`, flushed in
    /// `max_batch`-sized chunks at measured per-chunk cost.
    fn drain_time_s(&self, v: usize, len: usize) -> f64 {
        let variant = &self.registry.variants[v];
        let mut rest = len;
        let mut total = 0.0;
        while rest > 0 {
            let b = rest.min(self.batch.max_batch);
            total += self.device.service_time(variant.cost_at(b));
            rest -= b;
        }
        total
    }

    /// Predicted completion delay for a request joining variant `v` now:
    /// any weight-store load the request must wait for, committed
    /// in-flight work, every queue drained ahead of it (the server is
    /// shared), the flush-delay wait, and its own batch.
    #[must_use]
    pub fn predicted_delay_s(&self, v: usize) -> f64 {
        let queued: f64 = (0..self.queue_lens.len())
            .map(|u| self.drain_time_s(u, self.queue_lens[u] + usize::from(u == v)))
            .sum();
        self.residency_delay_s + self.busy_remaining_s + queued + self.batch.max_delay_s
    }
}

/// Decides what to do with one arrival bound for variant `target`.
///
/// Under [`AdmissionPolicy::SloAware`], candidates are considered in
/// descending accuracy order among variants meeting the accuracy floor
/// (the requested variant first when tied), and the first whose predicted
/// delay fits inside `headroom * p99_slo_s` wins; nothing fits → shed.
pub fn admit(policy: &AdmissionPolicy, ctx: &AdmissionContext<'_>, target: usize) -> Decision {
    match *policy {
        AdmissionPolicy::AcceptAll => Decision::Accept(target),
        AdmissionPolicy::SloAware {
            p99_slo_s,
            headroom,
            min_accuracy,
        } => {
            let budget = headroom * p99_slo_s;
            if ctx.predicted_delay_s(target) <= budget {
                return Decision::Accept(target);
            }
            // Highest-accuracy variant that still fits the budget; sort is
            // stable over registry order, so ties are deterministic.
            let mut candidates: Vec<usize> = (0..ctx.registry.variants.len())
                .filter(|&v| v != target && ctx.registry.variants[v].accuracy >= min_accuracy)
                .collect();
            candidates.sort_by(|&a, &b| {
                ctx.registry.variants[b]
                    .accuracy
                    .total_cmp(&ctx.registry.variants[a].accuracy)
            });
            for v in candidates {
                if ctx.predicted_delay_s(v) <= budget {
                    return Decision::Downgrade { from: target, to: v };
                }
            }
            Decision::Shed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{build_family, FamilyConfig};

    fn small_registry() -> VariantRegistry {
        let data = dl_data::blobs(100, 3, 8, 6.0, 0.5, 60);
        let eval = dl_data::blobs(50, 3, 8, 6.0, 0.5, 61);
        build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 16, 3],
                student_hidden: vec![4],
                prune_sparsity: 0.6,
                morph_budget: 100,
                ensemble_members: 2,
                max_batch: 4,
                epochs: 6,
                seed: 9,
            },
        )
    }

    #[test]
    fn accept_all_never_sheds() {
        let reg = small_registry();
        let ctx = AdmissionContext {
            registry: &reg,
            device: &DeviceModel::nominal(),
            batch: &BatchPolicy::dynamic(4, 1e-6),
            queue_lens: &[10_000, 0, 0, 0, 0, 0],
            busy_remaining_s: 1.0,
            residency_delay_s: 0.0,
        };
        assert_eq!(admit(&AdmissionPolicy::AcceptAll, &ctx, 0), Decision::Accept(0));
    }

    #[test]
    fn empty_system_accepts_and_overload_sheds() {
        let reg = small_registry();
        let device = DeviceModel::nominal();
        let batch = BatchPolicy::dynamic(4, 1e-6);
        let policy = AdmissionPolicy::SloAware {
            p99_slo_s: 1e-3,
            headroom: 0.8,
            min_accuracy: 0.0,
        };
        let empty = [0usize; 6];
        let ctx = AdmissionContext {
            registry: &reg,
            device: &device,
            batch: &batch,
            queue_lens: &empty,
            busy_remaining_s: 0.0,
            residency_delay_s: 0.0,
        };
        assert_eq!(admit(&policy, &ctx, 0), Decision::Accept(0));
        // A second of committed work busts any millisecond SLO for every
        // variant: the only bounded answer is to shed.
        let drowned = AdmissionContext {
            busy_remaining_s: 1.0,
            ..ctx
        };
        assert_eq!(admit(&policy, &drowned, 0), Decision::Shed);
    }

    #[test]
    fn pressure_band_downgrades_to_a_fitting_variant() {
        let reg = small_registry();
        // Launch-free, bandwidth-starved device: chunk cost is dominated
        // by real weight traffic, so cheaper variants have genuinely
        // smaller marginal cost than the fp32 target.
        let device = DeviceModel {
            flops_per_sec: 1e12,
            bytes_per_sec: 1e6,
            launch_overhead_s: 0.0,
        };
        let batch = BatchPolicy::dynamic(4, 1e-6);
        let target = 0;
        // Backlog at a chunk boundary: one more fp32 request opens a whole
        // new fp32 chunk, while a cheap variant's first chunk costs less.
        let mut lens = [0usize; 6];
        lens[target] = 8;
        let ctx = AdmissionContext {
            registry: &reg,
            device: &device,
            batch: &batch,
            queue_lens: &lens,
            busy_remaining_s: 0.0,
            residency_delay_s: 0.0,
        };
        let p_target = ctx.predicted_delay_s(target);
        let p_best_other = (1..reg.variants.len())
            .map(|v| ctx.predicted_delay_s(v))
            .fold(f64::INFINITY, f64::min);
        assert!(
            p_best_other < p_target,
            "some variant must be marginally cheaper: {p_best_other} vs {p_target}"
        );
        // A budget between the two predictions forces exactly the
        // downgrade band: target busts, a cheaper variant fits.
        let headroom = 0.9;
        let policy = AdmissionPolicy::SloAware {
            p99_slo_s: (p_best_other + p_target) / 2.0 / headroom,
            headroom,
            min_accuracy: 0.0,
        };
        match admit(&policy, &ctx, target) {
            Decision::Downgrade { from, to } => {
                assert_eq!(from, target);
                assert_ne!(to, target);
            }
            other => panic!("expected downgrade, got {other:?}"),
        }
    }

    #[test]
    fn cold_residency_delay_can_flip_an_accept_into_a_shed() {
        let reg = small_registry();
        let device = DeviceModel::nominal();
        let batch = BatchPolicy::dynamic(4, 1e-6);
        let empty = [0usize; 6];
        let warm = AdmissionContext {
            registry: &reg,
            device: &device,
            batch: &batch,
            queue_lens: &empty,
            busy_remaining_s: 0.0,
            residency_delay_s: 0.0,
        };
        let policy = AdmissionPolicy::SloAware {
            p99_slo_s: 1e-3,
            headroom: 0.8,
            min_accuracy: 0.0,
        };
        assert_eq!(admit(&policy, &warm, 0), Decision::Accept(0));
        // The same empty system, but the family's weights are cold and
        // the modeled load alone outruns the SLO. The delay applies to
        // every variant in the family, so there is nothing to downgrade
        // into: the only bounded answer is to shed.
        let cold = AdmissionContext {
            residency_delay_s: 0.01,
            ..warm
        };
        assert!(cold.predicted_delay_s(0) >= warm.predicted_delay_s(0) + 0.01);
        assert_eq!(admit(&policy, &cold, 0), Decision::Shed);
    }
}
