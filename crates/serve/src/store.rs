//! The memory-budgeted weight store: many model families, one device
//! budget.
//!
//! A serving device cannot hold every family's weights at once. The
//! [`WeightStore`] keeps each family's serialized `dl-store` artifact on
//! simulated "disk" and materializes decoded registries into a byte
//! budget on demand. A warm fetch is free — zero simulated time, zero
//! recorder events, so a store-fronted single-family run stays
//! bit-identical to serving without a store. A cold fetch evicts
//! residents until the artifact fits, decodes it, and charges the
//! modeled load time: the artifact's bytes read through the
//! [`DeviceModel`]'s memory system, exactly how batch service time is
//! priced.
//!
//! Eviction is either classic LRU or cost-aware via
//! `dl_memsched::residency`: victims are scored by reload price (from
//! the same device bandwidth the load path charges) weighted by hit
//! count and discounted by staleness, so a big, hot family survives over
//! a small, idle one even when it was touched less recently.

use crate::device::DeviceModel;
use crate::persist::{load_family, save_family};
use crate::variant::VariantRegistry;
use dl_memsched::residency::{eviction_score, reload_cost, ResidencyStats};
use dl_obs::{fields, Recorder};
use dl_tensor::acct::OpCost;

/// How the store picks an eviction victim when a cold load does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used resident family.
    Lru,
    /// Evict the family with the lowest `dl_memsched` eviction score:
    /// reload price weighted by hits, discounted by staleness.
    CostAware,
}

struct FamilySlot {
    name: String,
    artifact: Vec<u8>,
    resident: Option<VariantRegistry>,
    stats: ResidencyStats,
}

/// What one fetch cost.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "the fetch outcome carries the simulated load delay"]
pub struct FetchOutcome {
    /// Whether the family was already resident.
    pub warm: bool,
    /// Simulated seconds until the weights are usable (0 when warm).
    pub load_s: f64,
    /// Families evicted to make room (0 when warm or when it fit).
    pub evicted: usize,
}

/// Hosts many serialized model families under one byte budget.
pub struct WeightStore {
    budget_bytes: u64,
    policy: EvictionPolicy,
    families: Vec<FamilySlot>,
    tick: u64,
    /// Cold loads performed.
    pub loads: usize,
    /// Warm hits served.
    pub hits: usize,
    /// Families evicted.
    pub evictions: usize,
    /// Total artifact bytes read by cold loads.
    pub bytes_loaded: u64,
}

impl WeightStore {
    /// An empty store with a byte budget and an eviction policy.
    #[must_use]
    pub fn new(budget_bytes: u64, policy: EvictionPolicy) -> Self {
        WeightStore {
            budget_bytes,
            policy,
            families: Vec::new(),
            tick: 0,
            loads: 0,
            hits: 0,
            evictions: 0,
            bytes_loaded: 0,
        }
    }

    /// Serializes `reg` and registers it under `name` (cold: on disk,
    /// not resident). Returns the family's id — the index every other
    /// method takes.
    ///
    /// # Panics
    /// Panics on a duplicate name, or when the family's artifact alone
    /// exceeds the budget (it could never be served).
    pub fn insert(&mut self, name: &str, reg: &VariantRegistry) -> usize {
        assert!(
            self.families.iter().all(|f| f.name != name),
            "duplicate family {name:?}"
        );
        let artifact = save_family(reg);
        assert!(
            artifact.len() as u64 <= self.budget_bytes,
            "family {name:?} ({} bytes) exceeds the store budget ({} bytes)",
            artifact.len(),
            self.budget_bytes
        );
        self.families.push(FamilySlot {
            name: name.to_string(),
            artifact,
            resident: None,
            stats: ResidencyStats {
                hits: 0,
                last_access: 0,
            },
        });
        self.families.len() - 1
    }

    /// Registered family count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when no family is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The registered family's name.
    #[must_use]
    pub fn name(&self, id: usize) -> &str {
        &self.families[id].name
    }

    /// The family's artifact footprint in bytes — what residency costs.
    #[must_use]
    pub fn artifact_bytes(&self, id: usize) -> u64 {
        self.families[id].artifact.len() as u64
    }

    /// Bytes currently held by resident families.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.families
            .iter()
            .filter(|f| f.resident.is_some())
            .map(|f| f.artifact.len() as u64)
            .sum()
    }

    /// Whether the family's weights are usable right now.
    #[must_use]
    pub fn is_resident(&self, id: usize) -> bool {
        self.families[id].resident.is_some()
    }

    /// Simulated seconds to load the family's artifact through the
    /// device's memory system — the modeled cold-start price. The
    /// artifact is pure read traffic, so it is priced exactly like a
    /// batch whose cost is `bytes_read = artifact_len`.
    #[must_use]
    pub fn load_seconds(&self, id: usize, device: &DeviceModel) -> f64 {
        device.service_time(&OpCost {
            flops: 0,
            bytes_read: self.families[id].artifact.len() as u64,
            bytes_written: 0,
        })
    }

    /// The residency delay an arrival for `id` would see: zero when warm,
    /// the modeled load time when cold.
    #[must_use]
    pub fn residency_delay_s(&self, id: usize, device: &DeviceModel) -> f64 {
        if self.is_resident(id) {
            0.0
        } else {
            self.load_seconds(id, device)
        }
    }

    /// Forces the family resident without charging time or emitting
    /// events — deployment-time warmup, before the clock starts. Counts
    /// neither as a hit nor as a load.
    ///
    /// # Panics
    /// Panics when the artifact does not fit next to current residents.
    pub fn preload(&mut self, id: usize) {
        if self.families[id].resident.is_some() {
            return;
        }
        let need = self.families[id].artifact.len() as u64;
        assert!(
            self.resident_bytes() + need <= self.budget_bytes,
            "preload of {:?} does not fit",
            self.families[id].name
        );
        let reg = load_family(&self.families[id].artifact).expect("store-serialized artifact");
        self.families[id].resident = Some(reg);
    }

    /// Picks the eviction victim among evictable residents other than
    /// `keep`; `None` when nothing qualifies.
    fn victim(&self, keep: usize, device: &DeviceModel, evictable: &[bool]) -> Option<usize> {
        let residents = self
            .families
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != keep && f.resident.is_some() && evictable[*i]);
        match self.policy {
            EvictionPolicy::Lru => residents
                .min_by_key(|(i, f)| (f.stats.last_access, *i))
                .map(|(i, _)| i),
            EvictionPolicy::CostAware => residents
                .map(|(i, f)| {
                    let cost = reload_cost(
                        f.artifact.len() as u64,
                        device.bytes_per_sec,
                        device.launch_overhead_s,
                    );
                    (i, eviction_score(cost, f.stats, self.tick))
                })
                .min_by(|(i, a), (j, b)| a.total_cmp(b).then(i.cmp(j)))
                .map(|(i, _)| i),
        }
    }

    /// Makes the family resident, evicting as needed, and returns what it
    /// cost. Warm fetches touch the recency state and return zero load
    /// time without recording anything; cold fetches emit one
    /// `store.evict` instant per victim and one `store.load` instant, on
    /// `track`.
    pub fn fetch(&mut self, id: usize, device: &DeviceModel, track: u32, rec: &dyn Recorder) -> FetchOutcome {
        let all = vec![true; self.families.len()];
        self.fetch_guarded(id, device, &all, track, rec)
            .expect("insert checked the artifact fits an empty store")
    }

    /// [`Self::fetch`] restricted to evicting only families the caller
    /// marks `evictable` (indexed by family id). Returns `None` — with
    /// no state change and no events — when the artifact cannot fit
    /// without evicting a protected family; callers use this to shield
    /// families that are mid-load or still owe queued work, deferring
    /// the fault instead of stealing a contended slot (which would
    /// live-lock two queues over one slot).
    pub fn fetch_guarded(
        &mut self,
        id: usize,
        device: &DeviceModel,
        evictable: &[bool],
        track: u32,
        rec: &dyn Recorder,
    ) -> Option<FetchOutcome> {
        if self.families[id].resident.is_some() {
            self.tick += 1;
            self.hits += 1;
            self.families[id].stats.hits += 1;
            self.families[id].stats.last_access = self.tick;
            return Some(FetchOutcome {
                warm: true,
                load_s: 0.0,
                evicted: 0,
            });
        }
        let need = self.families[id].artifact.len() as u64;
        let freeable: u64 = self
            .families
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != id && f.resident.is_some() && evictable[*i])
            .map(|(_, f)| f.artifact.len() as u64)
            .sum();
        if self.resident_bytes() - freeable + need > self.budget_bytes {
            return None;
        }
        self.tick += 1;
        let mut evicted = 0usize;
        while self.resident_bytes() + need > self.budget_bytes {
            let v = self
                .victim(id, device, evictable)
                .expect("feasibility was prechecked above");
            self.families[v].resident = None;
            self.evictions += 1;
            evicted += 1;
            rec.instant(
                track,
                "store.evict",
                fields! {
                    "family" => self.families[v].name.clone(),
                    "bytes" => self.families[v].artifact.len(),
                    "for" => self.families[id].name.clone(),
                },
            );
        }
        let reg = load_family(&self.families[id].artifact).expect("store-serialized artifact");
        let load_s = self.load_seconds(id, device);
        self.families[id].resident = Some(reg);
        self.families[id].stats = ResidencyStats {
            hits: 0,
            last_access: self.tick,
        };
        self.loads += 1;
        self.bytes_loaded += need;
        rec.instant(
            track,
            "store.load",
            fields! {
                "family" => self.families[id].name.clone(),
                "bytes" => need,
                "load_s" => load_s,
                "evicted" => evicted,
            },
        );
        Some(FetchOutcome {
            warm: false,
            load_s,
            evicted,
        })
    }

    /// The resident registry (immutable).
    ///
    /// # Panics
    /// Panics when the family is not resident — fetch first.
    #[must_use]
    pub fn registry(&self, id: usize) -> &VariantRegistry {
        self.families[id]
            .resident
            .as_ref()
            .unwrap_or_else(|| panic!("family {:?} is not resident", self.families[id].name))
    }

    /// The resident registry (mutable — batches run real forwards).
    ///
    /// # Panics
    /// Panics when the family is not resident — fetch first.
    pub fn registry_mut(&mut self, id: usize) -> &mut VariantRegistry {
        let name = self.families[id].name.clone();
        self.families[id]
            .resident
            .as_mut()
            .unwrap_or_else(|| panic!("family {name:?} is not resident"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{build_family, FamilyConfig};
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn family(seed: u64) -> VariantRegistry {
        let data = dl_data::blobs(100, 3, 8, 6.0, 0.5, seed);
        let eval = dl_data::blobs(50, 3, 8, 6.0, 0.5, seed + 1);
        build_family(
            &data,
            &eval,
            &FamilyConfig {
                teacher_dims: vec![8, 16, 3],
                student_hidden: vec![4],
                prune_sparsity: 0.6,
                morph_budget: 100,
                ensemble_members: 2,
                max_batch: 4,
                epochs: 5,
                seed,
            },
        )
    }

    fn two_family_store(policy: EvictionPolicy) -> (WeightStore, u64) {
        let a = family(100);
        let b = family(200);
        let bytes_a = save_family(&a).len() as u64;
        let bytes_b = save_family(&b).len() as u64;
        // Budget fits either family alone but never both.
        let budget = bytes_a.max(bytes_b) + bytes_a.min(bytes_b) / 2;
        let mut store = WeightStore::new(budget, policy);
        store.insert("a", &a);
        store.insert("b", &b);
        (store, budget)
    }

    #[test]
    fn warm_fetches_are_free_and_silent() {
        let reg = family(300);
        let mut store = WeightStore::new(u64::MAX, EvictionPolicy::Lru);
        let id = store.insert("only", &reg);
        store.preload(id);
        let rec = TimelineRecorder::new();
        let out = store.fetch(id, &DeviceModel::nominal(), 0, &rec);
        assert!(out.warm);
        assert_eq!(out.load_s, 0.0);
        assert_eq!(out.evicted, 0);
        assert_eq!(rec.len(), 0, "warm fetch records nothing");
        assert_eq!(store.hits, 1);
        assert_eq!(store.loads, 0);
    }

    #[test]
    fn cold_fetch_charges_the_modeled_artifact_read() {
        let reg = family(300);
        let mut store = WeightStore::new(u64::MAX, EvictionPolicy::Lru);
        let id = store.insert("only", &reg);
        let device = DeviceModel::nominal();
        let rec = TimelineRecorder::new();
        let out = store.fetch(id, &device, 0, &rec);
        assert!(!out.warm);
        let expected = device.service_time(&OpCost {
            flops: 0,
            bytes_read: store.artifact_bytes(id),
            bytes_written: 0,
        });
        assert_eq!(out.load_s, expected);
        assert!(out.load_s > 0.0);
        assert_eq!(store.loads, 1);
        assert_eq!(store.bytes_loaded, store.artifact_bytes(id));
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "store.load");
        // The decoded registry serves the same family that was inserted.
        assert_eq!(store.registry(id).variants.len(), reg.variants.len());
    }

    #[test]
    fn over_budget_fetch_evicts_lru_first() {
        let (mut store, _) = two_family_store(EvictionPolicy::Lru);
        let device = DeviceModel::nominal();
        let rec = NullRecorder::new();
        let _ = store.fetch(0, &device, 0, &rec);
        assert!(store.is_resident(0) && !store.is_resident(1));
        // Fetching b must evict a (the only other resident).
        let out = store.fetch(1, &device, 0, &rec);
        assert_eq!(out.evicted, 1);
        assert!(!store.is_resident(0) && store.is_resident(1));
        assert_eq!(store.evictions, 1);
        // Thrash back: a is cold again.
        let back = store.fetch(0, &device, 0, &rec);
        assert!(!back.warm);
        assert!(store.resident_bytes() <= store.budget_bytes());
    }

    #[test]
    fn cost_aware_eviction_spares_the_hot_family() {
        let a = family(100);
        let b = family(200);
        let c = family(400);
        let sizes: Vec<u64> = [&a, &b, &c]
            .iter()
            .map(|r| save_family(r).len() as u64)
            .collect();
        // Fits any two families, never all three.
        let budget = sizes.iter().sum::<u64>() - sizes.iter().min().unwrap() / 2;
        let mut store = WeightStore::new(budget, EvictionPolicy::CostAware);
        store.insert("a", &a);
        store.insert("b", &b);
        store.insert("c", &c);
        let device = DeviceModel::nominal();
        let rec = NullRecorder::new();
        let _ = store.fetch(0, &device, 0, &rec);
        let _ = store.fetch(1, &device, 0, &rec);
        // Hammer a: many hits, and recent.
        for _ in 0..10 {
            let out = store.fetch(0, &device, 0, &rec);
            assert!(out.warm);
        }
        // c needs room: the idle b must go, not the hot a.
        let _ = store.fetch(2, &device, 0, &rec);
        assert!(store.is_resident(0), "hot family survives");
        assert!(!store.is_resident(1), "idle family evicted");
        assert!(store.is_resident(2));
    }

    #[test]
    fn guarded_fetch_defers_instead_of_evicting_protected_families() {
        let (mut store, _) = two_family_store(EvictionPolicy::Lru);
        let device = DeviceModel::nominal();
        let rec = NullRecorder::new();
        let _ = store.fetch(0, &device, 0, &rec);
        let loads_before = store.loads;
        // With the resident family protected, b's fetch must defer —
        // no eviction, no load, no counter movement.
        let out = store.fetch_guarded(1, &device, &[false, true], 0, &rec);
        assert!(out.is_none(), "protected resident must not be evicted");
        assert!(store.is_resident(0) && !store.is_resident(1));
        assert_eq!(store.evictions, 0);
        assert_eq!(store.loads, loads_before);
        // Unprotecting the resident lets the same fetch through.
        let out = store
            .fetch_guarded(1, &device, &[true, true], 0, &rec)
            .expect("evictable resident frees the slot");
        assert!(!out.warm);
        assert_eq!(out.evicted, 1);
        assert!(!store.is_resident(0) && store.is_resident(1));
    }

    #[test]
    #[should_panic(expected = "exceeds the store budget")]
    fn oversized_family_is_rejected_at_insert() {
        let reg = family(500);
        let mut store = WeightStore::new(16, EvictionPolicy::Lru);
        let _ = store.insert("too-big", &reg);
    }

    #[test]
    fn loaded_registry_predicts_identically_to_the_original() {
        let mut reg = family(600);
        let eval = dl_data::blobs(50, 3, 8, 6.0, 0.5, 601);
        let mut store = WeightStore::new(u64::MAX, EvictionPolicy::Lru);
        let id = store.insert("f", &reg);
        let _ = store.fetch(id, &DeviceModel::nominal(), 0, &NullRecorder::new());
        let loaded = store.registry_mut(id);
        for (v, w) in reg.variants.iter_mut().zip(loaded.variants.iter_mut()) {
            assert_eq!(v.model.predict(&eval.x), w.model.predict(&eval.x), "{}", v.name);
        }
    }
}
