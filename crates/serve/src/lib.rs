//! `dl-serve` — SLO-aware inference serving over the dl-sys stack.
//!
//! The ROADMAP's north star serves "heavy traffic from millions of users,
//! as fast as the hardware allows"; every crate so far lives on the
//! training side of that sentence. This crate is the inference side:
//!
//! 1. **Variant registry** ([`build_family`]): one trained dl-nn teacher
//!    is materialized into the tutorial's whole Part-1 menu — int8
//!    quantized, magnitude-pruned, distilled, MorphNet-resized and
//!    snapshot-ensembled — each measured for accuracy and annotated with
//!    per-layer costs from `dl_prof::NetworkProfile` plus a measured
//!    eval-mode forward cost at every batch size.
//! 2. **Dynamic batcher** ([`BatchPolicy`]): per-variant queues flushed
//!    by max-batch / max-delay, executing the *batched* dl-nn forward so
//!    the speedup is a measured kernel-level property (weights read once
//!    per batch), not scheduler bookkeeping.
//! 3. **Admission controller** ([`AdmissionPolicy`]): predicts queue
//!    delay from the measured cost tables and downgrades to a cheaper
//!    variant — or sheds — when the prediction would bust the p99 SLO.
//! 4. **Engine** ([`serve`]): a deterministic event-driven simulation on
//!    `dl_obs::VirtualClock`, emitting spans / instants / counters / a
//!    latency histogram through any `Recorder`, bit-identical under
//!    `NullRecorder`.
//!
//! 5. **Cluster tier** ([`serve_cluster`]): N [`engine::ReplicaEngine`]s
//!    behind a deterministic [`Router`] (round-robin, least-loaded,
//!    power-of-two-choices) on one shared clock, chaos-tested through
//!    `dl_distributed::FaultPlan` — replica crashes with bounded
//!    [`RetryPolicy`] re-routing and hedged duplicates, MTTR rejoins with
//!    cold-queue warmup, degraded links inflating dispatch latency,
//!    per-replica stragglers — plus a reactive [`Autoscaler`] sizing the
//!    fleet from the observed arrival rate and the family's measured
//!    cost tables. A fault-free one-replica cluster is bit-identical to
//!    single-node [`serve`] (regression-tested).
//! 6. **Persistence & multi-model tier** ([`save_family`] /
//!    [`WeightStore`] / [`serve_fleet`]): whole variant families
//!    round-trip bit-identically through `dl-store` artifacts (int8
//!    codes stored packed, never dequantized), a memory-budgeted
//!    [`WeightStore`] hosts many families with LRU or
//!    `dl_memsched`-priced cost-aware eviction, and [`serve_fleet`]
//!    serves model-tagged traffic with residency-aware routing and
//!    cold-start-aware admission. A preloaded one-replica one-family
//!    fleet is bit-identical to [`serve`] (regression-tested).
//!
//! The cost-model-driven variant choice follows SystemML's optimizer
//! philosophy (pick the execution plan by a cost model, here measured
//! rather than estimated); the deploy-stage focus follows *Engineering
//! Reliable Deep Learning Systems*.

pub mod admission;
pub mod autoscale;
pub mod batcher;
pub mod cluster;
pub mod device;
pub mod engine;
pub mod fleet;
pub mod load;
pub mod persist;
pub mod report;
pub mod router;
pub mod store;
pub mod variant;

pub use admission::{admit, AdmissionContext, AdmissionPolicy, Decision};
pub use autoscale::{replica_capacity_rps, AutoscaleConfig, Autoscaler};
pub use batcher::BatchPolicy;
pub use cluster::{
    serve_cluster, ClusterConfig, ClusterReport, ReplicaReport, RetryPolicy, ScaleEvent,
};
pub use device::DeviceModel;
pub use engine::{serve, ServeConfig};
pub use fleet::{serve_fleet, FleetConfig, FleetReport, ModelRequest};
pub use load::{bursty, open_loop, BurstConfig, LoadConfig, Request};
pub use persist::{load_family, load_family_file, save_family, save_family_file};
pub use report::{percentile, ServeReport, VariantServeStats};
pub use router::{Router, RouterPolicy};
pub use store::{EvictionPolicy, FetchOutcome, WeightStore};
pub use variant::{build_family, FamilyConfig, Variant, VariantModel, VariantRegistry};
