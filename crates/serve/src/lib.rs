//! `dl-serve` — SLO-aware inference serving over the dl-sys stack.
//!
//! The ROADMAP's north star serves "heavy traffic from millions of users,
//! as fast as the hardware allows"; every crate so far lives on the
//! training side of that sentence. This crate is the inference side:
//!
//! 1. **Variant registry** ([`build_family`]): one trained dl-nn teacher
//!    is materialized into the tutorial's whole Part-1 menu — int8
//!    quantized, magnitude-pruned, distilled, MorphNet-resized and
//!    snapshot-ensembled — each measured for accuracy and annotated with
//!    per-layer costs from `dl_prof::NetworkProfile` plus a measured
//!    eval-mode forward cost at every batch size.
//! 2. **Dynamic batcher** ([`BatchPolicy`]): per-variant queues flushed
//!    by max-batch / max-delay, executing the *batched* dl-nn forward so
//!    the speedup is a measured kernel-level property (weights read once
//!    per batch), not scheduler bookkeeping.
//! 3. **Admission controller** ([`AdmissionPolicy`]): predicts queue
//!    delay from the measured cost tables and downgrades to a cheaper
//!    variant — or sheds — when the prediction would bust the p99 SLO.
//! 4. **Engine** ([`serve`]): a deterministic event-driven simulation on
//!    `dl_obs::VirtualClock`, emitting spans / instants / counters / a
//!    latency histogram through any `Recorder`, bit-identical under
//!    `NullRecorder`.
//!
//! The cost-model-driven variant choice follows SystemML's optimizer
//! philosophy (pick the execution plan by a cost model, here measured
//! rather than estimated); the deploy-stage focus follows *Engineering
//! Reliable Deep Learning Systems*.

pub mod admission;
pub mod batcher;
pub mod device;
pub mod engine;
pub mod load;
pub mod report;
pub mod variant;

pub use admission::{admit, AdmissionContext, AdmissionPolicy, Decision};
pub use batcher::BatchPolicy;
pub use device::DeviceModel;
pub use engine::{serve, ServeConfig};
pub use load::{open_loop, LoadConfig, Request};
pub use report::{percentile, ServeReport, VariantServeStats};
pub use variant::{build_family, FamilyConfig, Variant, VariantModel, VariantRegistry};
