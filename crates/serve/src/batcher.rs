//! The dynamic batching policy: max-batch / max-delay flush.
//!
//! Requests queue per variant; a queue flushes when it holds a full batch
//! or when its oldest request has waited `max_delay_s`, whichever comes
//! first. `no_batching()` (batch 1, zero delay) is the baseline every
//! speedup claim in E25 is measured against.

/// Flush policy for the per-variant queues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch one flush may form.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait before a forced flush,
    /// in simulated seconds.
    pub max_delay_s: f64,
}

impl BatchPolicy {
    /// The serve-immediately baseline: every request is its own batch.
    #[must_use]
    pub fn no_batching() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_delay_s: 0.0,
        }
    }

    /// Dynamic batching with the given ceiling and delay bound.
    ///
    /// # Panics
    /// Panics when `max_batch` is zero or the delay is negative.
    #[must_use]
    pub fn dynamic(max_batch: usize, max_delay_s: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(
            max_delay_s >= 0.0 && max_delay_s.is_finite(),
            "max_delay_s must be finite and non-negative"
        );
        BatchPolicy {
            max_batch,
            max_delay_s,
        }
    }

    /// Is a queue of `len` requests whose head arrived at `head_arrival_s`
    /// ready to flush at time `now_s`? (`drain` marks that no further
    /// arrivals can ever top the batch up, so waiting is pointless.)
    ///
    /// The age test compares against `head_arrival_s + max_delay_s` — the
    /// exact expression [`Self::next_deadline`] returns — so an event loop
    /// stepping to that deadline always observes the queue as ready
    /// (`now - head >= delay` can round the other way in f64).
    #[must_use]
    pub fn ready(&self, len: usize, head_arrival_s: f64, now_s: f64, drain: bool) -> bool {
        len > 0
            && (len >= self.max_batch || drain || now_s >= head_arrival_s + self.max_delay_s)
    }

    /// The earliest future time a queue of `len` requests with the given
    /// head arrival could trigger a flush on its own (`None` when empty).
    #[must_use]
    pub fn next_deadline(&self, len: usize, head_arrival_s: f64) -> Option<f64> {
        if len == 0 {
            None
        } else if len >= self.max_batch {
            Some(head_arrival_s) // already ready; flush as soon as possible
        } else {
            Some(head_arrival_s + self.max_delay_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_batching_flushes_every_single_request() {
        let p = BatchPolicy::no_batching();
        assert!(p.ready(1, 5.0, 5.0, false));
        assert!(!p.ready(0, 0.0, 1.0, true));
    }

    #[test]
    fn dynamic_waits_until_full_or_aged() {
        let p = BatchPolicy::dynamic(4, 1e-3);
        assert!(!p.ready(2, 0.0, 0.5e-3, false), "young and short: wait");
        assert!(p.ready(4, 0.0, 0.0, false), "full batch: go");
        assert!(p.ready(1, 0.0, 1e-3, false), "aged out: go");
        assert!(p.ready(2, 0.0, 0.5e-3, true), "drain: no arrivals left");
        assert_eq!(p.next_deadline(0, 0.0), None);
        assert_eq!(p.next_deadline(2, 3.0), Some(3.0 + 1e-3));
        assert_eq!(p.next_deadline(4, 3.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let _ = BatchPolicy::dynamic(0, 0.0);
    }
}
