//! Seeded open-loop load generation.
//!
//! Open-loop means arrivals are scheduled by an external Poisson process
//! that does not wait for responses — the regime where queueing delay
//! actually shows up (a closed loop self-throttles and hides saturation).
//! Everything is drawn from one seeded `StdRng`, so a load schedule is a
//! pure function of its config and two engine runs see identical traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Stable id (arrival order).
    pub id: u64,
    /// Arrival time in simulated seconds.
    pub arrival_s: f64,
    /// Row index into the serving dataset this request asks about.
    pub sample: usize,
}

/// Open-loop generator config.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Mean arrival rate, requests per simulated second.
    pub rate_rps: f64,
    /// Total requests to generate.
    pub requests: usize,
    /// RNG seed (inter-arrival gaps and sample choice).
    pub seed: u64,
}

/// Generates a Poisson arrival schedule: exponential inter-arrival gaps
/// at `rate_rps`, each request asking about a uniformly drawn row of a
/// `n_samples`-row dataset.
///
/// # Panics
/// Panics when the rate is not positive-finite or `n_samples` is zero.
#[must_use]
pub fn open_loop(cfg: &LoadConfig, n_samples: usize) -> Vec<Request> {
    assert!(
        cfg.rate_rps.is_finite() && cfg.rate_rps > 0.0,
        "arrival rate must be positive, got {}",
        cfg.rate_rps
    );
    assert!(n_samples > 0, "need at least one sample row");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    (0..cfg.requests as u64)
        .map(|id| {
            // Inverse-CDF exponential; 1-u keeps the argument in (0, 1].
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.rate_rps;
            Request {
                id,
                arrival_s: t,
                sample: rng.gen_range(0..n_samples),
            }
        })
        .collect()
}

/// On/off rate modulation for [`bursty`] arrivals.
///
/// Each period starts in the *off* phase at the base rate and switches to
/// the *on* phase (base rate × `multiplier`) for its last `duty`
/// fraction. Off-first means a single-period schedule is a clean load
/// step at `(1 - duty) * period_s` — the shape E27's autoscale-reaction
/// scenario drives.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstConfig {
    /// Modulation period in simulated seconds.
    pub period_s: f64,
    /// Fraction of each period spent in the burst phase, in `[0, 1]`.
    pub duty: f64,
    /// Rate multiplier during the burst phase (> 0; 1 disables
    /// modulation).
    pub multiplier: f64,
}

/// Generates a bursty open-loop schedule: a nonhomogeneous Poisson
/// process whose rate alternates between `cfg.rate_rps` and
/// `cfg.rate_rps * burst.multiplier` per [`BurstConfig`]'s on/off cycle.
///
/// Sampling is the exact piecewise inverse-CDF construction: each
/// arrival draws one unit-exponential variate and integrates it through
/// the piecewise-constant rate profile, so the schedule is a pure
/// function of the config — same seed, same bytes — and uses exactly the
/// same draw sequence as [`open_loop`] (one uniform gap draw plus one
/// sample draw per request).
///
/// # Panics
/// Panics when the rate, period or multiplier is not positive-finite,
/// duty lies outside `[0, 1]`, or `n_samples` is zero.
#[must_use]
pub fn bursty(cfg: &LoadConfig, burst: &BurstConfig, n_samples: usize) -> Vec<Request> {
    assert!(
        cfg.rate_rps.is_finite() && cfg.rate_rps > 0.0,
        "arrival rate must be positive, got {}",
        cfg.rate_rps
    );
    assert!(
        burst.period_s.is_finite() && burst.period_s > 0.0,
        "burst period must be positive, got {}",
        burst.period_s
    );
    assert!(
        (0.0..=1.0).contains(&burst.duty),
        "duty must lie in [0, 1], got {}",
        burst.duty
    );
    assert!(
        burst.multiplier.is_finite() && burst.multiplier > 0.0,
        "burst multiplier must be positive, got {}",
        burst.multiplier
    );
    assert!(n_samples > 0, "need at least one sample row");
    let p = burst.period_s;
    let off_len = (1.0 - burst.duty) * p;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    (0..cfg.requests as u64)
        .map(|id| {
            let u: f64 = rng.gen();
            // Unit exponential, integrated through the rate profile one
            // constant segment at a time.
            let mut e = -(1.0 - u).ln();
            loop {
                let phase = t - (t / p).floor() * p;
                let (rate, seg_end) = if phase < off_len {
                    (cfg.rate_rps, off_len)
                } else {
                    (cfg.rate_rps * burst.multiplier, p)
                };
                let remaining = seg_end - phase;
                if e / rate < remaining {
                    t += e / rate;
                    break;
                }
                t += remaining;
                e -= remaining * rate;
            }
            Request {
                id,
                arrival_s: t,
                sample: rng.gen_range(0..n_samples),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let cfg = LoadConfig {
            rate_rps: 1000.0,
            requests: 500,
            seed: 7,
        };
        let a = open_loop(&cfg, 64);
        let b = open_loop(&cfg, 64);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().all(|r| r.sample < 64));
        assert_eq!(a.last().unwrap().id, 499);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        for rate in [100.0, 10_000.0] {
            let cfg = LoadConfig {
                rate_rps: rate,
                requests: 4000,
                seed: 11,
            };
            let reqs = open_loop(&cfg, 10);
            let span = reqs.last().unwrap().arrival_s;
            let measured = reqs.len() as f64 / span;
            assert!(
                (measured / rate - 1.0).abs() < 0.1,
                "rate {rate}: measured {measured}"
            );
        }
    }

    #[test]
    fn bursty_modulates_rate_and_is_deterministic() {
        let cfg = LoadConfig {
            rate_rps: 1000.0,
            requests: 6000,
            seed: 13,
        };
        let burst = BurstConfig {
            period_s: 1.0,
            duty: 0.5,
            multiplier: 4.0,
        };
        let a = bursty(&cfg, &burst, 32);
        assert_eq!(a, bursty(&cfg, &burst, 32), "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // Count arrivals landing in off vs on phases over *complete*
        // periods only (the schedule ends mid-period, which would bias a
        // raw count ratio): the on phase should hold multiplier x the off
        // phase's traffic, both phases being half of every period here.
        let horizon = a.last().unwrap().arrival_s.floor();
        let (mut off, mut on) = (0usize, 0usize);
        for r in a.iter().filter(|r| r.arrival_s < horizon) {
            let phase = r.arrival_s.rem_euclid(1.0);
            if phase < 0.5 {
                off += 1;
            } else {
                on += 1;
            }
        }
        let ratio = on as f64 / off as f64;
        assert!(
            (ratio / 4.0 - 1.0).abs() < 0.15,
            "on/off ratio {ratio} should track the 4x multiplier"
        );
    }

    #[test]
    fn bursty_with_unit_multiplier_matches_poisson_rate() {
        let cfg = LoadConfig {
            rate_rps: 500.0,
            requests: 4000,
            seed: 17,
        };
        let flat = bursty(
            &cfg,
            &BurstConfig {
                period_s: 0.25,
                duty: 0.5,
                multiplier: 1.0,
            },
            8,
        );
        let span = flat.last().unwrap().arrival_s;
        let measured = flat.len() as f64 / span;
        assert!(
            (measured / 500.0 - 1.0).abs() < 0.1,
            "unit multiplier must reduce to plain Poisson: {measured}"
        );
        // Identical draw sequence: samples match open_loop's exactly.
        let plain = open_loop(&cfg, 8);
        assert!(flat
            .iter()
            .zip(&plain)
            .all(|(b, p)| b.sample == p.sample));
    }

    #[test]
    fn bursty_schedule_is_byte_stable() {
        // Pins the exact f64 bit patterns so any RNG or integration-order
        // change in the generator is caught, not just statistical drift.
        let reqs = bursty(
            &LoadConfig {
                rate_rps: 100.0,
                requests: 4,
                seed: 42,
            },
            &BurstConfig {
                period_s: 0.02,
                duty: 0.5,
                multiplier: 3.0,
            },
            16,
        );
        let bits: Vec<u64> = reqs.iter().map(|r| r.arrival_s.to_bits()).collect();
        let samples: Vec<usize> = reqs.iter().map(|r| r.sample).collect();
        assert_eq!(
            bits,
            vec![
                4575270700065701855,
                4577434037163321274,
                4577440296366313021,
                4578392150808060040,
            ],
            "arrival bits: {bits:?}"
        );
        assert_eq!(samples, vec![10, 2, 8, 2], "samples: {samples:?}");
    }

    #[test]
    fn zero_requests_yield_an_empty_schedule() {
        // The empty-window convention end to end: zero requests is a
        // valid (empty) schedule, not a panic or a NaN-rate one, and
        // every downstream rate estimator reads exactly 0.0 over it.
        assert!(open_loop(
            &LoadConfig { rate_rps: 100.0, requests: 0, seed: 1 },
            4
        )
        .is_empty());
        assert!(bursty(
            &LoadConfig { rate_rps: 100.0, requests: 0, seed: 1 },
            &BurstConfig { period_s: 1.0, duty: 0.5, multiplier: 2.0 },
            4
        )
        .is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = open_loop(
            &LoadConfig { rate_rps: 50.0, requests: 50, seed: 1 },
            8,
        );
        let b = open_loop(
            &LoadConfig { rate_rps: 50.0, requests: 50, seed: 2 },
            8,
        );
        assert_ne!(a, b);
    }
}
