//! Seeded open-loop load generation.
//!
//! Open-loop means arrivals are scheduled by an external Poisson process
//! that does not wait for responses — the regime where queueing delay
//! actually shows up (a closed loop self-throttles and hides saturation).
//! Everything is drawn from one seeded `StdRng`, so a load schedule is a
//! pure function of its config and two engine runs see identical traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Stable id (arrival order).
    pub id: u64,
    /// Arrival time in simulated seconds.
    pub arrival_s: f64,
    /// Row index into the serving dataset this request asks about.
    pub sample: usize,
}

/// Open-loop generator config.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Mean arrival rate, requests per simulated second.
    pub rate_rps: f64,
    /// Total requests to generate.
    pub requests: usize,
    /// RNG seed (inter-arrival gaps and sample choice).
    pub seed: u64,
}

/// Generates a Poisson arrival schedule: exponential inter-arrival gaps
/// at `rate_rps`, each request asking about a uniformly drawn row of a
/// `n_samples`-row dataset.
///
/// # Panics
/// Panics when the rate is not positive-finite or `n_samples` is zero.
#[must_use]
pub fn open_loop(cfg: &LoadConfig, n_samples: usize) -> Vec<Request> {
    assert!(
        cfg.rate_rps.is_finite() && cfg.rate_rps > 0.0,
        "arrival rate must be positive, got {}",
        cfg.rate_rps
    );
    assert!(n_samples > 0, "need at least one sample row");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    (0..cfg.requests as u64)
        .map(|id| {
            // Inverse-CDF exponential; 1-u keeps the argument in (0, 1].
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.rate_rps;
            Request {
                id,
                arrival_s: t,
                sample: rng.gen_range(0..n_samples),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let cfg = LoadConfig {
            rate_rps: 1000.0,
            requests: 500,
            seed: 7,
        };
        let a = open_loop(&cfg, 64);
        let b = open_loop(&cfg, 64);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().all(|r| r.sample < 64));
        assert_eq!(a.last().unwrap().id, 499);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        for rate in [100.0, 10_000.0] {
            let cfg = LoadConfig {
                rate_rps: rate,
                requests: 4000,
                seed: 11,
            };
            let reqs = open_loop(&cfg, 10);
            let span = reqs.last().unwrap().arrival_s;
            let measured = reqs.len() as f64 / span;
            assert!(
                (measured / rate - 1.0).abs() < 0.1,
                "rate {rate}: measured {measured}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = open_loop(
            &LoadConfig { rate_rps: 50.0, requests: 50, seed: 1 },
            8,
        );
        let b = open_loop(
            &LoadConfig { rate_rps: 50.0, requests: 50, seed: 2 },
            8,
        );
        assert_ne!(a, b);
    }
}
