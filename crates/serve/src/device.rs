//! Converts measured kernel costs into simulated service time.
//!
//! The serving engine times batches with the same additive roofline the
//! trainer uses for simulated epochs: compute at a nominal FLOP rate,
//! memory traffic at a nominal bandwidth, plus a fixed per-launch
//! overhead. Because the [`dl_tensor::acct::OpCost`] fed in is *measured*
//! from the actual batched kernels (weights read once per batch, not once
//! per request), dynamic batching shows up here as a genuine reduction in
//! per-request time, not as scheduler bookkeeping.

use dl_obs::{fields, Fields, ToFields};
use dl_tensor::acct::OpCost;

/// A simulated inference device: the knobs that decide where the
/// batching win comes from.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Peak floating-point throughput, FLOPs per second.
    pub flops_per_sec: f64,
    /// Memory bandwidth, bytes per second (reads and writes combined).
    pub bytes_per_sec: f64,
    /// Fixed overhead per batch launch, seconds (queue handoff, kernel
    /// launch, response fan-out) — the part batch=1 serving pays per
    /// request and batching amortizes.
    pub launch_overhead_s: f64,
}

impl DeviceModel {
    /// The nominal serving accelerator: the trainer's 10 TFLOP/s device
    /// with memory bandwidth low enough that toy-MLP inference is
    /// bandwidth-bound — exactly the regime where re-reading weights for
    /// every single-row forward is the dominant cost.
    #[must_use]
    pub fn nominal() -> Self {
        DeviceModel {
            flops_per_sec: 10e12,
            bytes_per_sec: 8e9,
            launch_overhead_s: 1e-6,
        }
    }

    /// Simulated seconds to execute one batch with the given measured
    /// cost: launch overhead + compute time + memory-traffic time.
    #[must_use]
    pub fn service_time(&self, cost: &OpCost) -> f64 {
        let compute = cost.flops as f64 / self.flops_per_sec;
        let traffic = (cost.bytes_read + cost.bytes_written) as f64 / self.bytes_per_sec;
        self.launch_overhead_s + compute + traffic
    }

    /// How many `dl_tensor::par` worker threads to fan a batch of this
    /// cost across, at most `max_threads` (the serving host's configured
    /// pool size). Each extra thread is modeled as paying one more launch
    /// overhead, so fanning out is only worth it while every thread's
    /// slice of the serial time covers at least
    /// [`DeviceModel::MIN_WORK_PER_THREAD_LAUNCHES`] launches — small
    /// batches (the batch=1 admission path, tiny distilled variants)
    /// stay single-threaded instead of drowning in coordination.
    ///
    /// Deterministic: depends only on the measured cost and this model,
    /// never on wall-clock behavior, so serving runs stay reproducible.
    #[must_use]
    pub fn threads_for(&self, cost: &OpCost, max_threads: usize) -> usize {
        if max_threads <= 1 || self.launch_overhead_s <= 0.0 {
            return max_threads.max(1);
        }
        let serial = self.service_time(cost) - self.launch_overhead_s;
        let per_thread_floor = Self::MIN_WORK_PER_THREAD_LAUNCHES * self.launch_overhead_s;
        let fit = (serial / per_thread_floor) as usize;
        fit.clamp(1, max_threads)
    }
}

impl DeviceModel {
    /// A thread must take on at least this many launch-overheads' worth
    /// of serial work before [`DeviceModel::threads_for`] adds it.
    pub const MIN_WORK_PER_THREAD_LAUNCHES: f64 = 4.0;
}

impl ToFields for DeviceModel {
    fn to_fields(&self) -> Fields {
        fields! {
            "flops_per_sec" => self.flops_per_sec,
            "bytes_per_sec" => self.bytes_per_sec,
            "launch_overhead_s" => self.launch_overhead_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_additive_roofline() {
        let d = DeviceModel {
            flops_per_sec: 1e9,
            bytes_per_sec: 1e6,
            launch_overhead_s: 1e-3,
        };
        let c = OpCost {
            flops: 2_000_000,
            bytes_read: 1500,
            bytes_written: 500,
        };
        // 1ms launch + 2ms compute + 2ms traffic
        assert!((d.service_time(&c) - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_batch_still_pays_launch_overhead() {
        let d = DeviceModel::nominal();
        assert_eq!(d.service_time(&OpCost::default()), d.launch_overhead_s);
    }

    #[test]
    fn thread_heuristic_keeps_small_batches_sequential() {
        let d = DeviceModel::nominal();
        // A batch=1 toy-MLP forward: a few thousand FLOPs, serial time
        // far below one launch overhead -> never fan out.
        let tiny = OpCost {
            flops: 4_000,
            bytes_read: 8_000,
            bytes_written: 200,
        };
        assert_eq!(d.threads_for(&tiny, 8), 1);
        // A batch whose serial time dwarfs the launch overhead uses the
        // whole pool.
        let big = OpCost {
            flops: 2_000_000_000,
            bytes_read: 400_000_000,
            bytes_written: 4_000_000,
        };
        assert_eq!(d.threads_for(&big, 8), 8);
        // In between, the count scales with serial work: 12us of serial
        // work over a 1us launch overhead and a 4-launch floor -> 3.
        let mid = OpCost {
            flops: 120_000_000, // 12us at 10 TFLOP/s
            bytes_read: 0,
            bytes_written: 0,
        };
        assert_eq!(d.threads_for(&mid, 8), 3);
        // max_threads caps everything.
        assert_eq!(d.threads_for(&big, 1), 1);
    }
}
