//! Converts measured kernel costs into simulated service time.
//!
//! The serving engine times batches with the same additive roofline the
//! trainer uses for simulated epochs: compute at a nominal FLOP rate,
//! memory traffic at a nominal bandwidth, plus a fixed per-launch
//! overhead. Because the [`dl_tensor::acct::OpCost`] fed in is *measured*
//! from the actual batched kernels (weights read once per batch, not once
//! per request), dynamic batching shows up here as a genuine reduction in
//! per-request time, not as scheduler bookkeeping.

use dl_obs::{fields, Fields, ToFields};
use dl_tensor::acct::OpCost;

/// A simulated inference device: the knobs that decide where the
/// batching win comes from.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Peak floating-point throughput, FLOPs per second.
    pub flops_per_sec: f64,
    /// Memory bandwidth, bytes per second (reads and writes combined).
    pub bytes_per_sec: f64,
    /// Fixed overhead per batch launch, seconds (queue handoff, kernel
    /// launch, response fan-out) — the part batch=1 serving pays per
    /// request and batching amortizes.
    pub launch_overhead_s: f64,
}

impl DeviceModel {
    /// The nominal serving accelerator: the trainer's 10 TFLOP/s device
    /// with memory bandwidth low enough that toy-MLP inference is
    /// bandwidth-bound — exactly the regime where re-reading weights for
    /// every single-row forward is the dominant cost.
    #[must_use]
    pub fn nominal() -> Self {
        DeviceModel {
            flops_per_sec: 10e12,
            bytes_per_sec: 8e9,
            launch_overhead_s: 1e-6,
        }
    }

    /// Simulated seconds to execute one batch with the given measured
    /// cost: launch overhead + compute time + memory-traffic time.
    #[must_use]
    pub fn service_time(&self, cost: &OpCost) -> f64 {
        let compute = cost.flops as f64 / self.flops_per_sec;
        let traffic = (cost.bytes_read + cost.bytes_written) as f64 / self.bytes_per_sec;
        self.launch_overhead_s + compute + traffic
    }
}

impl ToFields for DeviceModel {
    fn to_fields(&self) -> Fields {
        fields! {
            "flops_per_sec" => self.flops_per_sec,
            "bytes_per_sec" => self.bytes_per_sec,
            "launch_overhead_s" => self.launch_overhead_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_additive_roofline() {
        let d = DeviceModel {
            flops_per_sec: 1e9,
            bytes_per_sec: 1e6,
            launch_overhead_s: 1e-3,
        };
        let c = OpCost {
            flops: 2_000_000,
            bytes_read: 1500,
            bytes_written: 500,
        };
        // 1ms launch + 2ms compute + 2ms traffic
        assert!((d.service_time(&c) - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_batch_still_pays_launch_overhead() {
        let d = DeviceModel::nominal();
        assert_eq!(d.service_time(&OpCost::default()), d.launch_overhead_s);
    }
}
