//! DeepBase-lite: declarative hypothesis queries over activations.
//!
//! DeepBase (Sellam et al., SIGMOD 2019) lets an analyst state hypotheses
//! about what network units encode ("unit u activates for inputs with
//! property P") and scores them en masse. This module provides that
//! interface over activation matrices: a query names a per-sample property
//! (here: class labels or any boolean mask) and gets back every unit
//! ranked by how strongly it tracks the property.

use dl_tensor::Tensor;

/// A hypothesis query over a `[samples, units]` activation matrix.
#[derive(Debug, Clone)]
pub enum ActivationQuery {
    /// Which units correlate (Pearson) with membership in `class`?
    CorrelatesWithClass {
        /// The class whose indicator is correlated against.
        class: usize,
    },
    /// Which units are "selective": mean activation on `class` at least
    /// `margin` above their mean on other classes?
    SelectiveFor {
        /// Target class.
        class: usize,
        /// Required mean-activation margin.
        margin: f32,
    },
    /// Which units are dead (activation below `eps` on every sample)?
    Dead {
        /// Absolute activation threshold.
        eps: f32,
    },
}

/// One scored unit in a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitScore {
    /// Unit (column) index.
    pub unit: usize,
    /// Query-specific score (correlation, margin, or max |activation|).
    pub score: f64,
}

/// The result of running a query: matching units, best first.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Scored units satisfying the query, sorted by descending score
    /// (for [`ActivationQuery::Dead`], ascending max activation).
    pub units: Vec<UnitScore>,
}

impl ActivationQuery {
    /// Runs the query against activations `[samples, units]` and
    /// per-sample labels.
    ///
    /// # Panics
    /// Panics when label count mismatches the activation rows.
    pub fn run(&self, acts: &Tensor, labels: &[usize]) -> QueryResult {
        let (n, units) = (acts.dims()[0], acts.dims()[1]);
        assert_eq!(n, labels.len(), "labels must align with activations");
        match self {
            ActivationQuery::CorrelatesWithClass { class } => {
                let indicator: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == *class { 1.0 } else { 0.0 })
                    .collect();
                let mean_y = indicator.iter().sum::<f64>() / n as f64;
                let var_y: f64 = indicator.iter().map(|y| (y - mean_y).powi(2)).sum();
                let mut scored: Vec<UnitScore> = (0..units)
                    .map(|u| {
                        let vals: Vec<f64> =
                            (0..n).map(|i| f64::from(acts.get(&[i, u]))).collect();
                        let mean_x = vals.iter().sum::<f64>() / n as f64;
                        let var_x: f64 = vals.iter().map(|x| (x - mean_x).powi(2)).sum();
                        let cov: f64 = vals
                            .iter()
                            .zip(&indicator)
                            .map(|(x, y)| (x - mean_x) * (y - mean_y))
                            .sum();
                        let denom = (var_x * var_y).sqrt();
                        let corr = if denom > 1e-12 { cov / denom } else { 0.0 };
                        UnitScore {
                            unit: u,
                            score: corr,
                        }
                    })
                    .collect();
                scored.sort_by(|a, b| b.score.abs().total_cmp(&a.score.abs()));
                QueryResult { units: scored }
            }
            ActivationQuery::SelectiveFor { class, margin } => {
                let mut scored = Vec::new();
                for u in 0..units {
                    let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0f64, 0, 0.0f64, 0);
                    for (i, label) in labels.iter().enumerate().take(n) {
                        let v = f64::from(acts.get(&[i, u]));
                        if label == class {
                            in_sum += v;
                            in_n += 1;
                        } else {
                            out_sum += v;
                            out_n += 1;
                        }
                    }
                    if in_n == 0 || out_n == 0 {
                        continue;
                    }
                    let gap = in_sum / in_n as f64 - out_sum / out_n as f64;
                    if gap >= f64::from(*margin) {
                        scored.push(UnitScore {
                            unit: u,
                            score: gap,
                        });
                    }
                }
                scored.sort_by(|a, b| b.score.total_cmp(&a.score));
                QueryResult { units: scored }
            }
            ActivationQuery::Dead { eps } => {
                let mut scored = Vec::new();
                for u in 0..units {
                    let max_abs = (0..n)
                        .map(|i| acts.get(&[i, u]).abs())
                        .fold(0.0f32, f32::max);
                    if max_abs < *eps {
                        scored.push(UnitScore {
                            unit: u,
                            score: f64::from(max_abs),
                        });
                    }
                }
                scored.sort_by(|a, b| a.score.total_cmp(&b.score));
                QueryResult { units: scored }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 samples, 3 units: unit 0 fires exactly on class 1, unit 1 is
    /// dead, unit 2 is noise.
    fn fixture() -> (Tensor, Vec<usize>) {
        let acts = Tensor::from_vec(
            vec![
                0.0, 0.0, 0.3, //
                1.0, 0.0, 0.1, //
                0.0, 0.0, 0.9, //
                1.0, 0.0, 0.2,
            ],
            [4, 3],
        )
        .unwrap();
        (acts, vec![0, 1, 0, 1])
    }

    #[test]
    fn correlation_ranks_the_tracking_unit_first() {
        let (acts, labels) = fixture();
        let r = ActivationQuery::CorrelatesWithClass { class: 1 }.run(&acts, &labels);
        assert_eq!(r.units[0].unit, 0);
        assert!((r.units[0].score - 1.0).abs() < 1e-9);
        // dead unit has zero correlation
        let dead = r.units.iter().find(|u| u.unit == 1).unwrap();
        assert_eq!(dead.score, 0.0);
    }

    #[test]
    fn selective_query_finds_class_units() {
        let (acts, labels) = fixture();
        let r = ActivationQuery::SelectiveFor {
            class: 1,
            margin: 0.5,
        }
        .run(&acts, &labels);
        assert_eq!(r.units.len(), 1);
        assert_eq!(r.units[0].unit, 0);
        assert!((r.units[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dead_query_finds_silent_units() {
        let (acts, labels) = fixture();
        let r = ActivationQuery::Dead { eps: 1e-3 }.run(&acts, &labels);
        assert_eq!(r.units.len(), 1);
        assert_eq!(r.units[0].unit, 1);
    }

    #[test]
    fn selective_margin_filters() {
        let (acts, labels) = fixture();
        let r = ActivationQuery::SelectiveFor {
            class: 1,
            margin: 1.5,
        }
        .run(&acts, &labels);
        assert!(r.units.is_empty());
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn mismatched_labels_rejected() {
        let (acts, _) = fixture();
        ActivationQuery::Dead { eps: 0.1 }.run(&acts, &[0, 1]);
    }

    #[test]
    fn works_on_real_network_activations() {
        use dl_data::blobs;
        use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
        use dl_tensor::init::rng;
        let data = blobs(150, 2, 4, 6.0, 0.4, 0);
        let mut r = rng(1);
        let mut net = Network::mlp(&[4, 16, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        // hidden activations after the ReLU (trace index 2)
        let trace = net.forward_trace(&data.x, false);
        let hidden = &trace[2];
        let r1 = ActivationQuery::CorrelatesWithClass { class: 1 }.run(hidden, &data.y);
        // a trained net must have at least one strongly class-tracking unit
        assert!(
            r1.units[0].score.abs() > 0.5,
            "best correlation {}",
            r1.units[0].score
        );
    }
}
