//! Mistique-lite: a store for model intermediates.
//!
//! Mistique (Vartak et al., SIGMOD 2018) stores the activations a model
//! produces across training so diagnosis queries ("how did this neuron's
//! behaviour evolve?") don't require rerunning the model. Its two core
//! storage tricks are reproduced here:
//!
//! * **quantization** — activations are stored as 8-bit codes on a
//!   store-wide grid (analysis tolerates the precision loss),
//! * **deduplication** — identical quantized row-chunks (common across
//!   adjacent epochs, since activations drift slowly) are stored once and
//!   referenced by content hash.
//!
//! The store reports logical vs. physical bytes so experiment E19 can plot
//! the footprint saving, and per-query touched-chunk counts as the
//! latency proxy.

use bytes::Bytes;
use dl_tensor::Tensor;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Identifies one stored intermediate: a layer's activations at a
/// training snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntermediateKey {
    /// Training snapshot (e.g. epoch).
    pub snapshot: u32,
    /// Layer index.
    pub layer: u32,
}

/// One stored matrix: geometry + per-row chunk references.
#[derive(Debug, Clone)]
struct StoredMatrix {
    rows: usize,
    cols: usize,
    /// Content hash of each row chunk.
    chunks: Vec<u64>,
}

/// The intermediate store.
///
/// Quantization uses one **store-wide** range so that a row whose values
/// did not change between snapshots produces byte-identical codes — the
/// property content deduplication depends on. Values outside the range are
/// clamped.
#[derive(Debug)]
pub struct IntermediateStore {
    matrices: HashMap<IntermediateKey, StoredMatrix>,
    /// Content-addressed chunk storage.
    chunk_data: HashMap<u64, Bytes>,
    /// Logical bytes if everything were stored as f32 (for the report).
    logical_bytes: u64,
    dedup_hits: u64,
    lo: f32,
    hi: f32,
}

impl Default for IntermediateStore {
    fn default() -> Self {
        IntermediateStore::new()
    }
}

/// Footprint and behaviour statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes the intermediates would occupy as raw f32.
    pub logical_bytes: u64,
    /// Bytes actually held (quantized, deduplicated chunks + headers).
    pub physical_bytes: u64,
    /// Number of row-chunks that were deduplicated away.
    pub dedup_hits: u64,
    /// Number of stored matrices.
    pub matrices: usize,
}

impl StoreStats {
    /// Compression factor (logical / physical).
    pub fn ratio(&self) -> f64 {
        self.logical_bytes as f64 / self.physical_bytes.max(1) as f64
    }
}

impl IntermediateStore {
    /// An empty store with the default quantization range `[-8, 8]`.
    pub fn new() -> Self {
        IntermediateStore::with_range(-8.0, 8.0)
    }

    /// An empty store quantizing into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn with_range(lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "quantization range must be non-empty");
        IntermediateStore {
            matrices: HashMap::new(),
            chunk_data: HashMap::new(),
            logical_bytes: 0,
            dedup_hits: 0,
            lo,
            hi,
        }
    }

    fn scale(&self) -> f32 {
        (self.hi - self.lo) / 255.0
    }

    /// Stores a `[rows, cols]` activation matrix under `key`, quantizing
    /// to 8 bits and deduplicating identical rows.
    ///
    /// # Panics
    /// Panics when the key is already present or the tensor is not a
    /// matrix.
    pub fn put(&mut self, key: IntermediateKey, acts: &Tensor) {
        assert_eq!(acts.rank(), 2, "store expects [rows, cols] activations");
        assert!(
            !self.matrices.contains_key(&key),
            "key {key:?} already stored"
        );
        let (rows, cols) = (acts.dims()[0], acts.dims()[1]);
        let scale = self.scale();
        let lo = self.lo;
        let mut chunks = Vec::with_capacity(rows);
        for r in 0..rows {
            let row: Vec<u8> = (0..cols)
                .map(|c| {
                    let clamped = acts.get(&[r, c]).clamp(self.lo, self.hi);
                    (((clamped - lo) / scale).round() as u32).min(255) as u8
                })
                .collect();
            let mut hasher = DefaultHasher::new();
            row.hash(&mut hasher);
            let h = hasher.finish();
            if let Some(existing) = self.chunk_data.get(&h) {
                // hash collision check: verify content matches
                if existing.as_ref() == row.as_slice() {
                    self.dedup_hits += 1;
                } else {
                    // extremely unlikely; fall back to salted hash
                    let mut salt = DefaultHasher::new();
                    (h, &row).hash(&mut salt);
                    let h2 = salt.finish();
                    self.chunk_data.insert(h2, Bytes::from(row));
                    chunks.push(h2);
                    self.logical_bytes += (cols * 4) as u64;
                    continue;
                }
            } else {
                self.chunk_data.insert(h, Bytes::from(row));
            }
            chunks.push(h);
        }
        self.logical_bytes += (rows * cols * 4) as u64;
        self.matrices.insert(key, StoredMatrix { rows, cols, chunks });
    }

    /// Fetches (dequantizes) a stored matrix. Returns the tensor and the
    /// number of chunks touched (the query-latency proxy).
    pub fn get(&self, key: IntermediateKey) -> Option<(Tensor, usize)> {
        let m = self.matrices.get(&key)?;
        let (lo, scale) = (self.lo, self.scale());
        let mut data = Vec::with_capacity(m.rows * m.cols);
        for &h in &m.chunks {
            let chunk = self.chunk_data.get(&h).expect("chunk must exist");
            data.extend(chunk.iter().map(|&c| lo + scale * f32::from(c)));
        }
        Some((
            Tensor::from_vec(data, [m.rows, m.cols]).expect("length matches"),
            m.chunks.len(),
        ))
    }

    /// Fetches a single row (one sample's activations) touching only one
    /// chunk — the point-query path Mistique optimizes for.
    pub fn get_row(&self, key: IntermediateKey, row: usize) -> Option<(Vec<f32>, usize)> {
        let m = self.matrices.get(&key)?;
        if row >= m.rows {
            return None;
        }
        let chunk = self.chunk_data.get(&m.chunks[row]).expect("chunk exists");
        let (lo, scale) = (self.lo, self.scale());
        Some((
            chunk.iter().map(|&c| lo + scale * f32::from(c)).collect(),
            1,
        ))
    }

    /// Current footprint statistics.
    pub fn stats(&self) -> StoreStats {
        let chunk_bytes: u64 = self.chunk_data.values().map(|b| b.len() as u64).sum();
        let header_bytes: u64 = self
            .matrices
            .values()
            .map(|m| (m.chunks.len() * 8 + 16) as u64)
            .sum();
        StoreStats {
            logical_bytes: self.logical_bytes,
            physical_bytes: chunk_bytes + header_bytes,
            dedup_hits: self.dedup_hits,
            matrices: self.matrices.len(),
        }
    }

    /// Stored snapshot/layer keys, unordered.
    pub fn keys(&self) -> Vec<IntermediateKey> {
        self.matrices.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init::{self, rng};

    fn key(s: u32, l: u32) -> IntermediateKey {
        IntermediateKey {
            snapshot: s,
            layer: l,
        }
    }

    #[test]
    fn roundtrip_within_quantization_error() {
        let mut store = IntermediateStore::new();
        let mut r = rng(0);
        let acts = init::uniform([32, 16], -1.0, 1.0, &mut r);
        store.put(key(0, 0), &acts);
        let (back, touched) = store.get(key(0, 0)).expect("stored");
        assert_eq!(back.dims(), &[32, 16]);
        assert_eq!(touched, 32);
        let max_err = (&back - &acts).map(f32::abs).max();
        // half a quantization step of the [-8, 8] store range
        assert!(max_err <= 8.0 / 255.0 + 1e-6, "max error {max_err}");
    }

    #[test]
    fn quantization_alone_gives_4x() {
        let mut store = IntermediateStore::new();
        let mut r = rng(1);
        // unique random rows: no dedup possible
        let acts = init::uniform([64, 64], -1.0, 1.0, &mut r);
        store.put(key(0, 0), &acts);
        let stats = store.stats();
        assert!(stats.ratio() > 3.0, "ratio {}", stats.ratio());
        assert_eq!(stats.dedup_hits, 0);
    }

    #[test]
    fn identical_snapshots_dedup_to_one_copy() {
        let mut store = IntermediateStore::new();
        let mut r = rng(2);
        let acts = init::uniform([50, 32], -1.0, 1.0, &mut r);
        for epoch in 0..10 {
            store.put(key(epoch, 0), &acts);
        }
        let stats = store.stats();
        assert_eq!(stats.dedup_hits, 9 * 50);
        // 10 epochs stored for one epoch's chunks (headers remain per epoch)
        assert!(stats.ratio() > 10.0, "ratio {}", stats.ratio());
    }

    #[test]
    fn drifting_activations_dedup_partially() {
        let mut store = IntermediateStore::new();
        let mut r = rng(3);
        let base = init::uniform([100, 16], -1.0, 1.0, &mut r);
        store.put(key(0, 0), &base);
        // epoch 1: only 10 rows change
        let mut drifted = base.clone();
        for i in 0..10 {
            for c in 0..16 {
                drifted.set(&[i, c], drifted.get(&[i, c]) + 0.5);
            }
        }
        store.put(key(1, 0), &drifted);
        let stats = store.stats();
        // the store-wide quantization grid keeps unchanged rows
        // byte-identical: exactly the 90 untouched rows dedup
        assert_eq!(stats.dedup_hits, 90);
    }

    #[test]
    fn point_queries_touch_one_chunk() {
        let mut store = IntermediateStore::new();
        let mut r = rng(4);
        let acts = init::uniform([20, 8], 0.0, 1.0, &mut r);
        store.put(key(0, 1), &acts);
        let (row, touched) = store.get_row(key(0, 1), 7).expect("stored");
        assert_eq!(touched, 1);
        assert_eq!(row.len(), 8);
        let step = 16.0 / 255.0; // store range [-8, 8] at 8 bits
        for (c, v) in row.iter().enumerate() {
            assert!((v - acts.get(&[7, c])).abs() <= step / 2.0 + 1e-6);
        }
        assert!(store.get_row(key(0, 1), 99).is_none());
    }

    #[test]
    fn missing_key_returns_none() {
        let store = IntermediateStore::new();
        assert!(store.get(key(9, 9)).is_none());
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_key_rejected() {
        let mut store = IntermediateStore::new();
        let acts = Tensor::ones([2, 2]);
        store.put(key(0, 0), &acts);
        store.put(key(0, 0), &acts);
    }
}
