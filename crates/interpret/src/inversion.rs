//! Network inversion: reconstructing inputs from layer activations.
//!
//! The tutorial's §4.2 describes DeconvNet and Network Inversion as
//! operating "in the reverse direction": given only the information
//! present at some layer, what input does it correspond to? The answer
//! visualizes which aspects of the input each layer preserves — early
//! layers reconstruct almost everything, late layers only what matters
//! for the task.
//!
//! This module implements inversion by optimization: minimize
//! `|| f_k(x') - a ||² + λ ||x'||²` over the input `x'`, where `f_k` is
//! the network truncated at layer `k` and `a` the target activation.

use dl_nn::{Layer, Loss, Network};
use dl_tensor::{init, Tensor};

/// Inversion hyper-parameters.
#[derive(Debug, Clone)]
pub struct InversionConfig {
    /// Gradient-descent steps.
    pub steps: usize,
    /// Step size.
    pub lr: f32,
    /// L2 regularization on the reconstructed input.
    pub weight_decay: f32,
    /// Seed for the starting point.
    pub seed: u64,
}

impl Default for InversionConfig {
    fn default() -> Self {
        InversionConfig {
            steps: 300,
            lr: 0.5,
            weight_decay: 0.002,
            seed: 0,
        }
    }
}

/// A network truncated after its first `layers` layers.
///
/// # Panics
/// Panics when `layers` is zero or exceeds the pipeline length.
pub fn truncate(net: &Network, layers: usize) -> Network {
    assert!(
        layers > 0 && layers <= net.layers().len(),
        "cannot truncate to {layers} of {} layers",
        net.layers().len()
    );
    let mut out = Network::new(net.input_dim);
    let kept: Vec<Layer> = net.layers()[..layers].to_vec();
    *out.layers_mut() = kept;
    out
}

/// Result of an inversion run.
#[derive(Debug, Clone)]
pub struct Inversion {
    /// The reconstructed input `[1, d]`.
    pub reconstruction: Tensor,
    /// Final activation-matching loss.
    pub residual: f32,
}

/// Inverts `target` (a `[1, units]` activation of `net` truncated at
/// `layer_count` layers) back to input space.
pub fn invert_activation(
    net: &Network,
    layer_count: usize,
    target: &Tensor,
    config: &InversionConfig,
) -> Inversion {
    let mut truncated = truncate(net, layer_count);
    let mut rng = init::rng(config.seed);
    let mut x = init::normal([1, net.input_dim], 0.0, 0.1, &mut rng);
    let mut residual = f32::INFINITY;
    for _ in 0..config.steps {
        let out = truncated.forward(&x, false);
        let (loss, grad) = Loss::MeanSquaredError.evaluate(&out, target);
        residual = loss;
        let gx = truncated.backward(&grad);
        // descent with decay toward zero (the natural-image prior's poor
        // man's version)
        x = &(&x - &(&gx * config.lr)) * (1.0 - config.weight_decay);
    }
    truncated.clear_caches();
    Inversion {
        reconstruction: x,
        residual,
    }
}

/// Inverts the representation of a concrete input at layer `layer_count`:
/// runs the input forward to get its activation, then reconstructs from
/// that activation alone. The reconstruction error against the original
/// input measures how much the layer preserves.
pub fn invert_input(
    net: &Network,
    layer_count: usize,
    input: &Tensor,
    config: &InversionConfig,
) -> (Inversion, f32) {
    let mut truncated = truncate(net, layer_count);
    let target = truncated.forward(input, false);
    truncated.clear_caches();
    let inv = invert_activation(net, layer_count, &target, config);
    let input_err = (&inv.reconstruction - input).map(f32::abs).mean();
    (inv, input_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_nn::{Optimizer, TrainConfig, Trainer};
    use dl_tensor::init::rng;

    fn trained() -> (Network, dl_nn::Dataset) {
        let data = dl_data::blobs(150, 3, 6, 6.0, 0.4, 0);
        let mut r = rng(1);
        let mut net = Network::mlp(&[6, 16, 8, 3], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        (net, data)
    }

    #[test]
    fn truncate_produces_prefix() {
        let (net, data) = trained();
        let mut t2 = truncate(&net, 2);
        assert_eq!(t2.layers().len(), 2);
        // prefix output equals the full trace at that depth
        let mut full = net.clone();
        let trace = full.forward_trace(&data.x, false);
        let out = t2.forward(&data.x, false);
        assert!(out.approx_eq(&trace[2], 1e-6));
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_rejects_zero() {
        let (net, _) = trained();
        truncate(&net, 0);
    }

    #[test]
    fn inversion_reduces_residual() {
        let (net, data) = trained();
        let x0 = data.x.select_rows(&[0]);
        let (inv, _) = invert_input(&net, 2, &x0, &InversionConfig::default());
        // activation matched well after optimization
        assert!(inv.residual < 0.05, "residual {}", inv.residual);
    }

    #[test]
    fn reconstruction_activates_like_the_original() {
        let (net, data) = trained();
        let x0 = data.x.select_rows(&[3]);
        let (inv, _) = invert_input(&net, 2, &x0, &InversionConfig::default());
        let mut t = truncate(&net, 2);
        let a_orig = t.forward(&x0, false);
        let a_rec = t.forward(&inv.reconstruction, false);
        assert!(
            (&a_orig - &a_rec).map(f32::abs).mean() < 0.2,
            "reconstruction does not reproduce the activation"
        );
    }

    #[test]
    fn early_layers_preserve_more_than_late_layers() {
        let (net, data) = trained();
        // average input-space reconstruction error at depth 1 vs full depth
        let mut early = 0.0;
        let mut late = 0.0;
        for i in 0..5 {
            let x0 = data.x.select_rows(&[i * 7]);
            let (_, e) = invert_input(&net, 1, &x0, &InversionConfig::default());
            let (_, l) = invert_input(&net, net.layers().len(), &x0, &InversionConfig::default());
            early += e;
            late += l;
        }
        assert!(
            early < late,
            "early-layer inversion ({early}) should beat late ({late})"
        );
    }
}
