//! # dl-interpret
//!
//! Interpretable deep learning (tutorial §4.2), across the tutorial's three
//! directions plus the systems it highlights:
//!
//! * [`reduce`] — **dimensionality reduction**: PCA and an exact t-SNE with
//!   a neighborhood-preservation score to quantify how much local structure
//!   survives the projection.
//! * [`explain`] — **visualization of relationships & model surrogacy**:
//!   LIME (local linear surrogates), input-gradient saliency maps,
//!   activation maximization (synthesizing the input a neuron loves), and
//!   global decision-tree surrogates.
//! * [`inversion`] — **network inversion** (DeconvNet's direction):
//!   reconstruct the input from a layer's activation alone, showing what
//!   each layer preserves.
//! * [`evolution`] — **DeepVis-lite**: per-unit selectivity trajectories
//!   and dead-unit censuses across training snapshots held in the store.
//! * [`store`] — **Mistique-lite**: a store for model intermediates
//!   (activations across training) with quantization and content
//!   deduplication, plus footprint/query accounting.
//! * [`query`] — **DeepBase-lite**: a small declarative interface for
//!   hypothesis queries over stored activations ("which units correlate
//!   with class k?").

#![warn(missing_docs)]

pub mod evolution;
pub mod explain;
pub mod inversion;
pub mod query;
pub mod reduce;
pub mod store;

pub use explain::{
    activation_maximization, lime_explain, saliency, LimeExplanation, SurrogateTree,
};
pub use evolution::{class_correlation_evolution, dead_unit_census, UnitTrajectory};
pub use inversion::{invert_activation, invert_input, truncate, Inversion, InversionConfig};
pub use query::{ActivationQuery, QueryResult};
pub use reduce::{neighborhood_preservation, pca, tsne, TsneConfig};
pub use store::{IntermediateStore, StoreStats};
