//! Per-decision and global explanations: LIME, saliency maps, activation
//! maximization, and decision-tree surrogates.

use dl_nn::{loss::one_hot, Network};
use dl_tensor::{init, Tensor};

// ----------------------------------------------------------------------
// Saliency
// ----------------------------------------------------------------------

/// Input-gradient saliency: `|d logit_class / d input|` per input feature
/// for a single sample `[1, d]`. Large values mark the features the
/// decision is most sensitive to.
///
/// # Panics
/// Panics when `x` is not a single row or `class` is out of range.
pub fn saliency(net: &mut Network, x: &Tensor, class: usize) -> Tensor {
    assert_eq!(x.dims()[0], 1, "saliency expects a single row");
    let logits = net.forward(x, false);
    assert!(class < logits.dims()[1], "class out of range");
    let mut seed = Tensor::zeros(logits.shape().clone());
    seed.set(&[0, class], 1.0);
    let grad = net.backward(&seed);
    net.clear_caches();
    grad.map(f32::abs)
}

// ----------------------------------------------------------------------
// Activation maximization
// ----------------------------------------------------------------------

/// Synthesizes an input that maximally activates output unit `unit` of
/// `net` (gradient ascent with L2 decay). To target a hidden unit, pass a
/// truncated network. Returns the synthetic input `[1, d]`.
pub fn activation_maximization(
    net: &mut Network,
    unit: usize,
    steps: usize,
    lr: f32,
    seed: u64,
) -> Tensor {
    let d = net.input_dim;
    let mut rng = init::rng(seed);
    let mut x = init::normal([1, d], 0.0, 0.1, &mut rng);
    for _ in 0..steps {
        let out = net.forward(&x, false);
        assert!(unit < out.dims()[1], "unit out of range");
        let mut g = Tensor::zeros(out.shape().clone());
        g.set(&[0, unit], 1.0);
        let gx = net.backward(&g);
        // ascent + weight decay keeps the input bounded
        x = &(&x + &(&gx * lr)) * 0.995;
    }
    net.clear_caches();
    x
}

// ----------------------------------------------------------------------
// LIME
// ----------------------------------------------------------------------

/// A LIME explanation: a local linear surrogate around one input.
#[derive(Debug, Clone)]
pub struct LimeExplanation {
    /// Per-feature weight of the linear surrogate (importance + sign).
    pub weights: Vec<f32>,
    /// Surrogate intercept.
    pub intercept: f32,
    /// Weighted R² of the surrogate on the perturbation sample — the
    /// explanation's local fidelity.
    pub r_squared: f64,
    /// The class being explained.
    pub class: usize,
}

impl LimeExplanation {
    /// Indices of the `k` most important features by |weight|.
    pub fn top_features(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| self.weights[b].abs().total_cmp(&self.weights[a].abs()));
        idx.truncate(k);
        idx
    }
}

/// LIME: samples Gaussian perturbations around `x` (a `[1, d]` row), reads
/// the model's probability for `class`, weights samples by an RBF
/// proximity kernel and fits a weighted ridge regression. The result
/// explains which features locally drive the decision.
///
/// # Panics
/// Panics when `x` is not a single row or `samples < d + 2`.
pub fn lime_explain(
    net: &mut Network,
    x: &Tensor,
    class: usize,
    samples: usize,
    kernel_width: f32,
    seed: u64,
) -> LimeExplanation {
    assert_eq!(x.dims()[0], 1, "lime expects a single row");
    let d = x.dims()[1];
    assert!(samples >= d + 2, "need more samples ({samples}) than features ({d})");
    let mut rng = init::rng(seed);
    // perturbations and their model outputs
    let noise = init::normal([samples, d], 0.0, 0.5, &mut rng);
    let xs = &noise + x; // broadcast the row
    let probs = net.predict_proba(&xs);
    let targets: Vec<f32> = (0..samples).map(|i| probs.get(&[i, class])).collect();
    // proximity weights
    let weights: Vec<f64> = (0..samples)
        .map(|i| {
            let d2: f32 = (0..d)
                .map(|f| (xs.get(&[i, f]) - x.get(&[0, f])).powi(2))
                .sum();
            f64::from((-d2 / (kernel_width * kernel_width)).exp())
        })
        .collect();
    // weighted ridge regression on (features, 1) -> target
    // normal equations: (Z^T W Z + rI) beta = Z^T W t, Z = [x | 1]
    let dim = d + 1;
    let mut a = vec![0.0f64; dim * dim];
    let mut b = vec![0.0f64; dim];
    for i in 0..samples {
        let w = weights[i];
        let mut row: Vec<f64> = (0..d).map(|f| f64::from(xs.get(&[i, f]))).collect();
        row.push(1.0);
        for p in 0..dim {
            b[p] += w * row[p] * f64::from(targets[i]);
            for q in 0..dim {
                a[p * dim + q] += w * row[p] * row[q];
            }
        }
    }
    for p in 0..d {
        a[p * dim + p] += 1e-3; // ridge (not on the intercept)
    }
    let beta = solve(&mut a, &mut b, dim);
    // weighted R²
    let wsum: f64 = weights.iter().sum();
    let mean_t: f64 = (0..samples)
        .map(|i| weights[i] * f64::from(targets[i]))
        .sum::<f64>()
        / wsum.max(1e-300);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..samples {
        let mut pred = beta[d];
        for (f, b) in beta.iter().enumerate().take(d) {
            pred += b * f64::from(xs.get(&[i, f]));
        }
        let t = f64::from(targets[i]);
        ss_res += weights[i] * (t - pred) * (t - pred);
        ss_tot += weights[i] * (t - mean_t) * (t - mean_t);
    }
    let r_squared = if ss_tot <= 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LimeExplanation {
        weights: beta[..d].iter().map(|&v| v as f32).collect(),
        intercept: beta[d] as f32,
        r_squared,
        class,
    }
}

/// Gaussian elimination with partial pivoting; solves `A x = b` in place.
fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // pivot
        let mut pivot = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; ridge keeps this rare
        }
        for r in (col + 1)..n {
            let factor = a[r * n + col] / diag;
            for c in col..n {
                a[r * n + c] -= factor * a[col * n + c];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col * n + c] * x[c];
        }
        let diag = a[col * n + col];
        x[col] = if diag.abs() < 1e-12 { 0.0 } else { acc / diag };
    }
    x
}

// ----------------------------------------------------------------------
// Surrogate decision tree
// ----------------------------------------------------------------------

/// A CART-style decision tree distilled from a network's predictions —
/// the "self-explanatory surrogate model" of §4.2.
#[derive(Debug, Clone)]
pub enum SurrogateTree {
    /// A leaf predicting one class.
    Leaf {
        /// Predicted class.
        class: usize,
    },
    /// An internal split `feature < threshold`.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f32,
        /// Branch taken when `value < threshold`.
        left: Box<SurrogateTree>,
        /// Branch taken otherwise.
        right: Box<SurrogateTree>,
    },
}

impl SurrogateTree {
    /// Fits a depth-bounded tree to the network's own predictions on `x`
    /// (model distillation into an interpretable form).
    pub fn distill(net: &mut Network, x: &Tensor, max_depth: usize) -> Self {
        let targets = net.predict(x);
        let indices: Vec<usize> = (0..x.dims()[0]).collect();
        Self::grow(x, &targets, &indices, max_depth)
    }

    fn grow(x: &Tensor, y: &[usize], indices: &[usize], depth: usize) -> SurrogateTree {
        let majority = {
            let mut counts = std::collections::HashMap::new();
            for &i in indices {
                *counts.entry(y[i]).or_insert(0usize) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c)))
                .map(|(c, _)| c)
                .unwrap_or(0)
        };
        if depth == 0 || indices.len() < 4 {
            return SurrogateTree::Leaf { class: majority };
        }
        let pure = indices.iter().all(|&i| y[i] == y[indices[0]]);
        if pure {
            return SurrogateTree::Leaf { class: majority };
        }
        // best gini split over all features, candidate thresholds at
        // feature quantiles
        let d = x.dims()[1];
        let gini = |subset: &[usize]| -> f64 {
            let mut counts = std::collections::HashMap::new();
            for &i in subset {
                *counts.entry(y[i]).or_insert(0usize) += 1;
            }
            let n = subset.len() as f64;
            1.0 - counts
                .values()
                .map(|&c| (c as f64 / n).powi(2))
                .sum::<f64>()
        };
        let parent_gini = gini(indices);
        let mut best: Option<(f64, usize, f32)> = None;
        for f in 0..d {
            let mut vals: Vec<f32> = indices.iter().map(|&i| x.get(&[i, f])).collect();
            vals.sort_by(f32::total_cmp);
            for q in [0.25, 0.5, 0.75] {
                let t = vals[((vals.len() - 1) as f64 * q) as usize];
                let (left, right): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x.get(&[i, f]) < t);
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let n = indices.len() as f64;
                let weighted = gini(&left) * left.len() as f64 / n
                    + gini(&right) * right.len() as f64 / n;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, t));
                }
            }
        }
        match best {
            Some((gain, f, t)) if gain > 1e-9 => {
                let (left, right): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x.get(&[i, f]) < t);
                SurrogateTree::Split {
                    feature: f,
                    threshold: t,
                    left: Box::new(Self::grow(x, y, &left, depth - 1)),
                    right: Box::new(Self::grow(x, y, &right, depth - 1)),
                }
            }
            _ => SurrogateTree::Leaf { class: majority },
        }
    }

    /// Predicts the class of a feature row.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        match self {
            SurrogateTree::Leaf { class } => *class,
            SurrogateTree::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] < *threshold {
                    left.predict_row(row)
                } else {
                    right.predict_row(row)
                }
            }
        }
    }

    /// Fidelity: fraction of rows where the tree agrees with the network.
    pub fn fidelity(&self, net: &mut Network, x: &Tensor) -> f64 {
        let model = net.predict(x);
        let n = x.dims()[0];
        let d = x.dims()[1];
        let agree = (0..n)
            .filter(|&i| {
                let row: Vec<f32> = (0..d).map(|f| x.get(&[i, f])).collect();
                self.predict_row(&row) == model[i]
            })
            .count();
        agree as f64 / n as f64
    }

    /// Number of decision nodes (interpretability proxy).
    pub fn node_count(&self) -> usize {
        match self {
            SurrogateTree::Leaf { .. } => 1,
            SurrogateTree::Split { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }
}

/// Convenience: one-hot helper re-export used in doctests/examples.
pub fn one_hot_targets(labels: &[usize], classes: usize) -> Tensor {
    one_hot(labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::blobs;
    use dl_nn::{Dataset, Optimizer, TrainConfig, Trainer};
    use dl_tensor::init::rng;

    /// Data where only feature 0 matters: label = (x0 > 0).
    fn single_feature_data(n: usize, d: usize, seed: u64) -> Dataset {
        let mut r = rng(seed);
        let x = init::uniform([n, d], -1.0, 1.0, &mut r);
        let y: Vec<usize> = (0..n).map(|i| usize::from(x.get(&[i, 0]) > 0.0)).collect();
        Dataset::new(x, y, 2)
    }

    fn train(data: &Dataset, seed: u64) -> Network {
        let mut r = rng(seed);
        let mut net = Network::mlp(&[data.x.dims()[1], 16, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, data);
        net
    }

    #[test]
    fn saliency_highlights_the_causal_feature() {
        let data = single_feature_data(200, 6, 0);
        let mut net = train(&data, 1);
        let x = data.x.select_rows(&[0]);
        let s = saliency(&mut net, &x, 1);
        let max_f = s.argmax();
        assert_eq!(max_f, 0, "saliency should peak on feature 0: {s:?}");
    }

    #[test]
    fn lime_recovers_the_causal_feature() {
        let data = single_feature_data(300, 6, 2);
        let mut net = train(&data, 3);
        let x = data.x.select_rows(&[5]);
        let exp = lime_explain(&mut net, &x, 1, 400, 2.0, 4);
        assert_eq!(exp.top_features(1), vec![0], "weights {:?}", exp.weights);
        // the causal feature has positive influence on class 1
        assert!(exp.weights[0] > 0.0);
    }

    #[test]
    fn lime_fidelity_improves_with_samples() {
        let data = blobs(200, 2, 4, 6.0, 0.4, 5);
        let mut net = train(&data, 6);
        let x = data.x.select_rows(&[3]);
        let small = lime_explain(&mut net, &x, 1, 30, 2.0, 7);
        let large = lime_explain(&mut net, &x, 1, 600, 2.0, 7);
        // more samples: fidelity estimate stabilizes; both should be
        // meaningfully positive in the smooth region
        assert!(large.r_squared > 0.3, "large-sample R² {}", large.r_squared);
        assert!(large.r_squared >= small.r_squared - 0.3);
    }

    #[test]
    fn activation_maximization_drives_the_unit_up() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 8);
        let mut net = train_k3(&data, 9);
        let before = {
            let mut r = rng(10);
            let x = init::normal([1, 4], 0.0, 0.1, &mut r);
            net.forward(&x, false).get(&[0, 2])
        };
        let x = activation_maximization(&mut net, 2, 100, 0.5, 10);
        let after = net.forward(&x, false).get(&[0, 2]);
        assert!(after > before + 1.0, "activation {before} -> {after}");
    }

    fn train_k3(data: &Dataset, seed: u64) -> Network {
        let mut r = rng(seed);
        let mut net = Network::mlp(&[4, 16, 3], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, data);
        net
    }

    #[test]
    fn surrogate_tree_high_fidelity_on_simple_model() {
        let data = single_feature_data(300, 4, 11);
        let mut net = train(&data, 12);
        let tree = SurrogateTree::distill(&mut net, &data.x, 4);
        let fid = tree.fidelity(&mut net, &data.x);
        assert!(fid > 0.9, "fidelity {fid}");
        assert!(tree.node_count() < 40);
    }

    #[test]
    fn deeper_surrogates_are_at_least_as_faithful() {
        let data = blobs(200, 3, 4, 6.0, 0.5, 13);
        let mut net = train_k3(&data, 14);
        let shallow = SurrogateTree::distill(&mut net, &data.x, 1);
        let deep = SurrogateTree::distill(&mut net, &data.x, 6);
        assert!(deep.fidelity(&mut net, &data.x) >= shallow.fidelity(&mut net, &data.x));
    }

    #[test]
    fn solve_linear_system() {
        // 2x + y = 5; x - y = 1 -> x = 2, y = 1
        let mut a = vec![2.0, 1.0, 1.0, -1.0];
        let mut b = vec![5.0, 1.0];
        let x = solve(&mut a, &mut b, 2);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "single row")]
    fn saliency_rejects_batches() {
        let data = single_feature_data(10, 3, 15);
        let mut net = train(&data, 16);
        saliency(&mut net, &data.x, 0);
    }
}
