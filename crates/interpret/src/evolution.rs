//! DeepVis-lite: how unit behaviour evolves across training.
//!
//! §4.2 cites DeepVis as "a system to visualize activations in deep neural
//! networks *as they train*". Combined with the Mistique-lite store (which
//! holds activations per training snapshot), this module provides the
//! analysis layer: per-unit trajectories of class selectivity across
//! snapshots, the onset epoch at which a unit specializes, and a census of
//! dead units over time.

use crate::query::ActivationQuery;
use crate::store::{IntermediateKey, IntermediateStore};

/// One unit's metric across training snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitTrajectory {
    /// Unit (column) index.
    pub unit: usize,
    /// Metric value per queried snapshot, in snapshot order.
    pub values: Vec<f64>,
}

impl UnitTrajectory {
    /// First snapshot index where `|value|` reaches `threshold`
    /// (the unit's "specialization onset"), or `None` if it never does.
    pub fn onset(&self, threshold: f64) -> Option<usize> {
        self.values.iter().position(|v| v.abs() >= threshold)
    }

    /// Final metric value (the trained behaviour).
    pub fn last(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }
}

/// Correlation-with-class trajectories for every unit of `layer`, across
/// the given `snapshots`, read from the store.
///
/// # Panics
/// Panics when a requested snapshot is missing from the store or labels
/// mismatch the stored row count.
pub fn class_correlation_evolution(
    store: &IntermediateStore,
    layer: u32,
    snapshots: &[u32],
    labels: &[usize],
    class: usize,
) -> Vec<UnitTrajectory> {
    assert!(!snapshots.is_empty(), "need at least one snapshot");
    let mut per_unit: Vec<Vec<f64>> = Vec::new();
    for &snap in snapshots {
        let (acts, _) = store
            .get(IntermediateKey {
                snapshot: snap,
                layer,
            })
            .unwrap_or_else(|| panic!("snapshot {snap} layer {layer} not in store"));
        let result = ActivationQuery::CorrelatesWithClass { class }.run(&acts, labels);
        // results come back sorted by |score|; index them by unit
        let units = acts.dims()[1];
        let mut by_unit = vec![0.0f64; units];
        for u in &result.units {
            by_unit[u.unit] = u.score;
        }
        if per_unit.is_empty() {
            per_unit = vec![Vec::with_capacity(snapshots.len()); units];
        }
        assert_eq!(per_unit.len(), units, "unit count changed across snapshots");
        for (u, &score) in by_unit.iter().enumerate() {
            per_unit[u].push(score);
        }
    }
    per_unit
        .into_iter()
        .enumerate()
        .map(|(unit, values)| UnitTrajectory { unit, values })
        .collect()
}

/// Number of dead units (max |activation| below `eps`) at each snapshot.
pub fn dead_unit_census(
    store: &IntermediateStore,
    layer: u32,
    snapshots: &[u32],
    eps: f32,
) -> Vec<(u32, usize)> {
    snapshots
        .iter()
        .map(|&snap| {
            let (acts, _) = store
                .get(IntermediateKey {
                    snapshot: snap,
                    layer,
                })
                .unwrap_or_else(|| panic!("snapshot {snap} layer {layer} not in store"));
            let dead = ActivationQuery::Dead { eps }
                .run(&acts, &vec![0; acts.dims()[0]])
                .units
                .len();
            (snap, dead)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
    use dl_tensor::init;

    /// Trains a model, storing hidden activations per epoch, and returns
    /// the store plus labels.
    fn stored_run() -> (IntermediateStore, Vec<usize>, Vec<u32>) {
        let data = dl_data::blobs(120, 2, 4, 2.0, 1.2, 0);
        let mut net = Network::mlp(&[4, 12, 2], &mut init::rng(1));
        let mut store = IntermediateStore::new();
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        let snapshots: Vec<u32> = (0..8).collect();
        // snapshot 0 = untrained
        for &snap in &snapshots {
            if snap > 0 {
                trainer.fit(&mut net, &data);
            }
            let trace = net.forward_trace(&data.x, false);
            store.put(
                IntermediateKey {
                    snapshot: snap,
                    layer: 2,
                },
                &trace[2],
            );
        }
        (store, data.y, snapshots)
    }

    #[test]
    fn selectivity_grows_during_training() {
        let (store, labels, snapshots) = stored_run();
        let trajectories =
            class_correlation_evolution(&store, 2, &snapshots, &labels, 1);
        assert_eq!(trajectories.len(), 12);
        // mean selectivity across units grows from init to trained
        let mean_at = |i: usize| {
            trajectories.iter().map(|t| t.values[i].abs()).sum::<f64>()
                / trajectories.len() as f64
        };
        let first = mean_at(0);
        let last = mean_at(snapshots.len() - 1);
        assert!(
            last > first,
            "mean selectivity should grow: {first} -> {last}"
        );
        let best = trajectories
            .iter()
            .map(|t| t.last().abs())
            .fold(0.0, f64::max);
        assert!(best > 0.5, "best trained unit only reaches {best}");
    }

    #[test]
    fn onset_detects_when_units_specialize() {
        let (store, labels, snapshots) = stored_run();
        let trajectories =
            class_correlation_evolution(&store, 2, &snapshots, &labels, 1);
        let best = trajectories
            .iter()
            .max_by(|a, b| a.last().abs().total_cmp(&b.last().abs()))
            .expect("non-empty");
        let onset = best.onset(0.5).expect("a selective unit has an onset");
        assert!(onset < snapshots.len());
        // an impossible threshold has no onset
        assert_eq!(best.onset(2.0), None);
    }

    #[test]
    fn dead_census_counts_match_query() {
        let (store, _, snapshots) = stored_run();
        let census = dead_unit_census(&store, 2, &snapshots, 1e-6);
        assert_eq!(census.len(), snapshots.len());
        // counts are within the layer width
        assert!(census.iter().all(|&(_, n)| n <= 12));
    }

    #[test]
    #[should_panic(expected = "not in store")]
    fn missing_snapshot_panics() {
        let (store, labels, _) = stored_run();
        class_correlation_evolution(&store, 2, &[99], &labels, 1);
    }
}
