//! Dimensionality reduction: PCA and exact t-SNE.
//!
//! t-SNE (van der Maaten & Hinton) preserves *local* similarity: nearby
//! points in high dimension stay nearby in the 2-D map, which is what makes
//! it the tutorial's go-to tool for inspecting training data and learned
//! representations. This is the exact O(n²) formulation with perplexity
//! calibration, early exaggeration and momentum — ample for the laptop-
//! scale datasets in this workspace.

use dl_tensor::{init, Tensor};

/// PCA via power iteration on the covariance matrix: returns the data
/// projected onto the top `k` principal components, `[n, k]`.
///
/// # Panics
/// Panics when `k` exceeds the feature count or the input is not a matrix.
pub fn pca(x: &Tensor, k: usize) -> Tensor {
    assert_eq!(x.rank(), 2, "pca expects [n, d]");
    let (n, d) = (x.dims()[0], x.dims()[1]);
    assert!(k <= d, "cannot extract {k} components from {d} features");
    // center
    let mean = x.mean_axis(0);
    let centered = x - &mean;
    // covariance d x d
    let cov = centered.transpose().matmul(&centered) * (1.0 / (n.max(2) - 1) as f32);
    let mut components: Vec<Tensor> = Vec::with_capacity(k);
    let mut deflated = cov;
    let mut rng = init::rng(0xC0FFEE);
    for _ in 0..k {
        // power iteration
        let mut v = init::normal([d, 1], 0.0, 1.0, &mut rng);
        for _ in 0..100 {
            let next = deflated.matmul(&v);
            let norm = next.norm().max(1e-12);
            v = next * (1.0 / norm);
        }
        // deflate: cov -= lambda v v^T
        let av = deflated.matmul(&v);
        let lambda = v.transpose().matmul(&av).item();
        let vvt = v.matmul(&v.transpose());
        deflated = &deflated - &(&vvt * lambda);
        components.push(v);
    }
    // project: centered [n,d] x components [d,k]
    let mut proj = Vec::with_capacity(n * k);
    for i in 0..n {
        for comp in &components {
            let mut dot = 0.0;
            for j in 0..d {
                dot += centered.get(&[i, j]) * comp.get(&[j, 0]);
            }
            proj.push(dot);
        }
    }
    Tensor::from_vec(proj, [n, k]).expect("length matches by construction")
}

/// t-SNE configuration.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count), typically 5-50.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Iterations of early exaggeration (P scaled by 4).
    pub exaggeration_iters: usize,
    /// Seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration_iters: 50,
            seed: 0,
        }
    }
}

/// Exact t-SNE to 2 dimensions. Returns `[n, 2]`.
///
/// # Panics
/// Panics when fewer than 4 points are given or perplexity is not
/// achievable (`3 * perplexity >= n` is rejected).
pub fn tsne(x: &Tensor, config: &TsneConfig) -> Tensor {
    let n = x.dims()[0];
    assert!(n >= 4, "t-SNE needs at least 4 points");
    assert!(
        (config.perplexity * 3.0) < n as f64,
        "perplexity {} too large for {n} points",
        config.perplexity
    );
    let d = x.dims()[1];
    // pairwise squared distances
    let mut dist2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f64;
            for f in 0..d {
                let diff = f64::from(x.get(&[i, f]) - x.get(&[j, f]));
                s += diff * diff;
            }
            dist2[i * n + j] = s;
            dist2[j * n + i] = s;
        }
    }
    // per-point sigma via binary search on perplexity
    let target_entropy = config.perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = &dist2[i * n..(i + 1) * n];
        let (mut beta_lo, mut beta_hi) = (1e-12f64, 1e12f64);
        let mut beta = 1.0f64;
        for _ in 0..64 {
            let mut sum = 0.0;
            let mut weighted = 0.0;
            for (j, &d2) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let w = (-beta * d2).exp();
                sum += w;
                weighted += w * d2;
            }
            let sum = sum.max(1e-300);
            let entropy = beta * weighted / sum + sum.ln();
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                beta_lo = beta;
                beta = if beta_hi >= 1e12 { beta * 2.0 } else { 0.5 * (beta + beta_hi) };
            } else {
                beta_hi = beta;
                beta = 0.5 * (beta + beta_lo);
            }
        }
        let mut sum = 0.0;
        for (j, &d2) in row.iter().enumerate() {
            if j != i {
                let w = (-beta * d2).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            p[i * n + j] /= sum;
        }
    }
    // symmetrize
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
        }
    }
    // gradient descent on 2-D embedding
    let mut rng = init::rng(config.seed);
    let mut y: Vec<f64> = init::normal([n * 2], 0.0, 1e-2, &mut rng)
        .data()
        .iter()
        .map(|&v| f64::from(v))
        .collect();
    let mut velocity = vec![0.0f64; n * 2];
    for iter in 0..config.iterations {
        let exaggeration = if iter < config.exaggeration_iters { 4.0 } else { 1.0 };
        // student-t affinities in the embedding
        let mut q = vec![0.0f64; n * n];
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i * 2] - y[j * 2];
                let dy = y[i * 2 + 1] - y[j * 2 + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        let qsum = qsum.max(1e-300);
        // gradient
        let momentum = if iter < 100 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut gx = 0.0f64;
            let mut gy = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let coeff = 4.0 * (exaggeration * pij[i * n + j] - w / qsum) * w;
                gx += coeff * (y[i * 2] - y[j * 2]);
                gy += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
            }
            velocity[i * 2] = momentum * velocity[i * 2] - f64::from(config.learning_rate) * gx;
            velocity[i * 2 + 1] =
                momentum * velocity[i * 2 + 1] - f64::from(config.learning_rate) * gy;
        }
        for (yv, v) in y.iter_mut().zip(&velocity) {
            *yv += v;
        }
    }
    Tensor::from_vec(y.iter().map(|&v| v as f32).collect(), [n, 2])
        .expect("length matches by construction")
}

/// Neighborhood preservation: the mean fraction of each point's `k`
/// nearest neighbors in the original space that are still among its `k`
/// nearest neighbors in the embedding. 1.0 = perfect local structure.
///
/// # Panics
/// Panics when the two matrices disagree on row count or `k` is too large.
pub fn neighborhood_preservation(original: &Tensor, embedded: &Tensor, k: usize) -> f64 {
    let n = original.dims()[0];
    assert_eq!(n, embedded.dims()[0], "row count mismatch");
    assert!(k < n, "k must be smaller than the point count");
    let knn = |data: &Tensor| -> Vec<Vec<usize>> {
        let d = data.dims()[1];
        (0..n)
            .map(|i| {
                let mut dists: Vec<(f64, usize)> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| {
                        let mut s = 0.0f64;
                        for f in 0..d {
                            let diff = f64::from(data.get(&[i, f]) - data.get(&[j, f]));
                            s += diff * diff;
                        }
                        (s, j)
                    })
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0));
                dists[..k].iter().map(|&(_, j)| j).collect()
            })
            .collect()
    };
    let orig_nn = knn(original);
    let emb_nn = knn(embedded);
    let mut total = 0.0;
    for i in 0..n {
        let set: std::collections::HashSet<usize> = orig_nn[i].iter().copied().collect();
        let overlap = emb_nn[i].iter().filter(|j| set.contains(j)).count();
        total += overlap as f64 / k as f64;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::high_dim_clusters;

    #[test]
    fn pca_projects_to_requested_dims() {
        let (x, _) = high_dim_clusters(60, 3, 16, 0);
        let p = pca(&x, 2);
        assert_eq!(p.dims(), &[60, 2]);
    }

    #[test]
    fn pca_first_component_captures_most_variance() {
        let (x, _) = high_dim_clusters(80, 2, 8, 1);
        let p = pca(&x, 2);
        let var = |col: usize| {
            let vals: Vec<f32> = (0..80).map(|i| p.get(&[i, col])).collect();
            let mean = vals.iter().sum::<f32>() / 80.0;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 80.0
        };
        assert!(var(0) >= var(1));
        assert!(var(0) > 0.0);
    }

    #[test]
    fn pca_separates_well_separated_clusters() {
        let (x, labels) = high_dim_clusters(60, 2, 32, 2);
        let p = pca(&x, 2);
        // cluster means in the projection should be far apart relative to
        // within-cluster spread
        let mean_of = |c: usize| {
            let pts: Vec<(f32, f32)> = (0..60)
                .filter(|&i| labels[i] == c)
                .map(|i| (p.get(&[i, 0]), p.get(&[i, 1])))
                .collect();
            let n = pts.len() as f32;
            (
                pts.iter().map(|p| p.0).sum::<f32>() / n,
                pts.iter().map(|p| p.1).sum::<f32>() / n,
            )
        };
        let (ax, ay) = mean_of(0);
        let (bx, by) = mean_of(1);
        let sep = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        assert!(sep > 1.0, "cluster separation {sep} too small");
    }

    #[test]
    fn tsne_output_shape_and_determinism() {
        let (x, _) = high_dim_clusters(40, 2, 8, 3);
        let cfg = TsneConfig {
            perplexity: 8.0,
            iterations: 100,
            ..TsneConfig::default()
        };
        let a = tsne(&x, &cfg);
        let b = tsne(&x, &cfg);
        assert_eq!(a.dims(), &[40, 2]);
        assert_eq!(a, b, "t-SNE must be deterministic per seed");
    }

    #[test]
    fn tsne_preserves_cluster_structure() {
        let (x, labels) = high_dim_clusters(90, 3, 32, 4);
        let emb = tsne(
            &x,
            &TsneConfig {
                perplexity: 10.0,
                iterations: 250,
                ..TsneConfig::default()
            },
        );
        // same-cluster points should end up closer than cross-cluster ones
        let mut within = 0.0f64;
        let mut across = 0.0f64;
        let mut wn = 0;
        let mut an = 0;
        for i in 0..90 {
            for j in (i + 1)..90 {
                let dx = f64::from(emb.get(&[i, 0]) - emb.get(&[j, 0]));
                let dy = f64::from(emb.get(&[i, 1]) - emb.get(&[j, 1]));
                let dist = (dx * dx + dy * dy).sqrt();
                if labels[i] == labels[j] {
                    within += dist;
                    wn += 1;
                } else {
                    across += dist;
                    an += 1;
                }
            }
        }
        let within = within / wn as f64;
        let across = across / an as f64;
        assert!(
            across > within * 1.5,
            "within {within} vs across {across}: clusters not separated"
        );
    }

    #[test]
    fn tsne_beats_random_projection_on_neighborhoods() {
        let (x, _) = high_dim_clusters(60, 3, 32, 5);
        let emb = tsne(
            &x,
            &TsneConfig {
                perplexity: 8.0,
                iterations: 200,
                ..TsneConfig::default()
            },
        );
        let np_tsne = neighborhood_preservation(&x, &emb, 5);
        // random embedding: shuffled points
        let mut rng = init::rng(9);
        let random = init::normal([60, 2], 0.0, 1.0, &mut rng);
        let np_rand = neighborhood_preservation(&x, &random, 5);
        assert!(
            np_tsne > np_rand + 0.2,
            "t-SNE {np_tsne} vs random {np_rand}"
        );
    }

    #[test]
    fn neighborhood_preservation_is_one_for_identity() {
        let (x, _) = high_dim_clusters(30, 2, 8, 6);
        assert!((neighborhood_preservation(&x, &x, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "perplexity")]
    fn tsne_rejects_oversized_perplexity() {
        let (x, _) = high_dim_clusters(20, 2, 4, 7);
        tsne(
            &x,
            &TsneConfig {
                perplexity: 10.0,
                ..TsneConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn tsne_rejects_tiny_input() {
        let x = Tensor::zeros([3, 2]);
        tsne(&x, &TsneConfig::default());
    }
}
