//! Criterion bench for E7: the cost of the optimization step itself
//! (simulator evaluations + MCMC search) at different budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_distributed::{optimize_placement, Cluster, Device, Link, Placement, PlacementSearchConfig};
use dl_tensor::init;

fn bench_search(c: &mut Criterion) {
    let net = dl_nn::Network::mlp(
        &[256, 512, 128, 512, 64, 256, 32, 128, 16, 32, 10],
        &mut init::rng(0),
    );
    let costs = net.layer_costs(64);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::nvlink());
    let mut group = c.benchmark_group("placement");
    group.bench_function("simulate_one_strategy", |b| {
        let p = Placement::round_robin(costs.len(), 4);
        b.iter(|| p.simulate(std::hint::black_box(&cluster), std::hint::black_box(&costs)))
    });
    for iters in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("mcmc", iters), &iters, |b, &iters| {
            b.iter(|| {
                optimize_placement(
                    &cluster,
                    &costs,
                    &PlacementSearchConfig {
                        iterations: iters,
                        seed: 1,
                        ..PlacementSearchConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
