//! Criterion bench for E9: cost of computing checkpointing schedules
//! (the optimization-time side of the memory tradeoff).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_memsched::{optimal_schedule, sqrt_schedule, store_all};
use dl_tensor::init;

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("remat_schedule");
    for layers in [16usize, 32, 64] {
        let mut dims = vec![128usize];
        dims.extend(std::iter::repeat_n(128, layers));
        dims.push(10);
        let net = dl_nn::Network::mlp(&dims, &mut init::rng(0));
        let costs = net.layer_costs(32);
        let budget = store_all(&costs).peak_bytes / 3;
        group.bench_with_input(BenchmarkId::new("sqrt", layers), &costs, |b, costs| {
            b.iter(|| sqrt_schedule(std::hint::black_box(costs)))
        });
        group.bench_with_input(BenchmarkId::new("optimal_dp", layers), &costs, |b, costs| {
            b.iter(|| optimal_schedule(std::hint::black_box(costs), budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
