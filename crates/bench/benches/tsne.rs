//! Criterion bench for E17: t-SNE and PCA runtime scaling with point count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_interpret::{pca, tsne, TsneConfig};

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dim_reduction");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let (x, _) = dl_data::high_dim_clusters(n, 4, 32, 0);
        group.bench_with_input(BenchmarkId::new("tsne_100it", n), &x, |b, x| {
            b.iter(|| {
                tsne(
                    std::hint::black_box(x),
                    &TsneConfig {
                        perplexity: 10.0,
                        iterations: 100,
                        ..TsneConfig::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pca", n), &x, |b, x| {
            b.iter(|| pca(std::hint::black_box(x), 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
