//! Criterion bench for E4: wall-clock training cost of the four ensemble
//! strategies at identical member count.

use criterion::{criterion_group, criterion_main, Criterion};
use dl_ensemble::{independent, mothernet, snapshot, treenet, MotherNetConfig, TreeNetConfig};
use dl_nn::TrainConfig;
use dl_tensor::init;

fn bench_strategies(c: &mut Criterion) {
    let data = dl_data::blobs(200, 3, 8, 6.0, 0.5, 0);
    let eval = dl_data::blobs(60, 3, 8, 6.0, 0.5, 1);
    let mut group = c.benchmark_group("ensemble_train_3members");
    group.sample_size(10);
    group.bench_function("independent", |b| {
        b.iter(|| {
            independent(
                &data,
                &eval,
                &[8, 16, 3],
                3,
                &TrainConfig {
                    epochs: 6,
                    ..TrainConfig::default()
                },
                &mut init::rng(2),
            )
        })
    });
    group.bench_function("snapshot", |b| {
        b.iter(|| snapshot(&data, &eval, &[8, 16, 3], 3, 6, 3, &mut init::rng(3)))
    });
    group.bench_function("treenet", |b| {
        b.iter(|| {
            treenet(
                &data,
                &eval,
                &TreeNetConfig {
                    trunk_dims: vec![8, 16],
                    branch_dims: vec![16, 8, 3],
                    members: 3,
                    epochs: 6,
                    batch_size: 32,
                    seed: 4,
                },
                &mut init::rng(4),
            )
        })
    });
    group.bench_function("mothernet", |b| {
        b.iter(|| {
            mothernet(
                &data,
                &eval,
                &MotherNetConfig {
                    member_hidden: vec![vec![12], vec![16], vec![20]],
                    mother_epochs: 6,
                    finetune_epochs: 2,
                    batch_size: 32,
                    seed: 5,
                    hatch_noise: 0.01,
                },
                &mut init::rng(5),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
