//! Criterion bench for E11: actual lookup latency, learned index vs
//! B-tree vs plain binary search, per key distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_data::KeyDistribution;
use dl_learneddb::{BTreeIndex, RecursiveModelIndex};

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_lookup_200k");
    for dist in [KeyDistribution::Uniform, KeyDistribution::Clustered] {
        let keys = dist.generate(200_000, 7);
        let bt = BTreeIndex::build_default(keys.clone());
        let rmi = RecursiveModelIndex::build(keys.clone(), 1024);
        let probes: Vec<u64> = keys.iter().step_by(37).copied().collect();
        group.bench_with_input(
            BenchmarkId::new("btree", dist.name()),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &k in probes {
                        if bt.lookup(std::hint::black_box(k)).0.is_some() {
                            found += 1;
                        }
                    }
                    found
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rmi", dist.name()),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &k in probes {
                        if rmi.lookup(std::hint::black_box(k)).0.is_some() {
                            found += 1;
                        }
                    }
                    found
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("binary_search", dist.name()),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &k in probes {
                        if keys.binary_search(std::hint::black_box(&k)).is_ok() {
                            found += 1;
                        }
                    }
                    found
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
