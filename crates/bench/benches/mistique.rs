//! Criterion bench for E19: intermediate-store put/get throughput vs a
//! naive full-precision store.

use criterion::{criterion_group, criterion_main, Criterion};
use dl_interpret::store::IntermediateKey;
use dl_interpret::IntermediateStore;
use dl_tensor::init;

fn bench_store(c: &mut Criterion) {
    let mut rng = init::rng(0);
    let acts = init::uniform([500, 64], -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("mistique_store");
    group.bench_function("put_500x64", |b| {
        let mut epoch = 0u32;
        let mut store = IntermediateStore::new();
        b.iter(|| {
            store.put(
                IntermediateKey {
                    snapshot: epoch,
                    layer: 0,
                },
                std::hint::black_box(&acts),
            );
            epoch += 1;
        })
    });
    let mut store = IntermediateStore::new();
    store.put(
        IntermediateKey {
            snapshot: 0,
            layer: 0,
        },
        &acts,
    );
    group.bench_function("get_full", |b| {
        b.iter(|| {
            store.get(std::hint::black_box(IntermediateKey {
                snapshot: 0,
                layer: 0,
            }))
        })
    });
    group.bench_function("get_row", |b| {
        b.iter(|| {
            store.get_row(
                std::hint::black_box(IntermediateKey {
                    snapshot: 0,
                    layer: 0,
                }),
                250,
            )
        })
    });
    group.bench_function("naive_clone_full_precision", |b| {
        b.iter(|| std::hint::black_box(&acts).clone())
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
