//! Criterion bench for E1: quantization/dequantization throughput and the
//! inference cost of quantized vs fp32 models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl_compress::{quantize_network, CodebookQuantizer, QuantScheme, QuantizedTensor};
use dl_tensor::init;

fn bench_quantize_tensor(c: &mut Criterion) {
    let mut rng = init::rng(0);
    let t = init::normal([256 * 256], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("quantize_tensor_64k");
    for bits in [8u8, 4, 2] {
        group.bench_with_input(BenchmarkId::new("affine", bits), &bits, |b, &bits| {
            b.iter(|| QuantizedTensor::quantize(std::hint::black_box(&t), bits))
        });
    }
    group.bench_function("kmeans16_fit", |b| {
        b.iter(|| CodebookQuantizer::fit(std::hint::black_box(&t), 16))
    });
    group.finish();
}

fn bench_quantized_inference(c: &mut Criterion) {
    let mut rng = init::rng(1);
    let net = dl_nn::Network::mlp(&[144, 64, 32, 10], &mut rng);
    let x = init::uniform([64, 144], 0.0, 1.0, &mut rng);
    let (q8, _) = quantize_network(&net, QuantScheme::Affine { bits: 8 });
    let mut group = c.benchmark_group("inference_batch64");
    group.bench_function("fp32", |b| {
        let mut n = net.clone();
        b.iter(|| n.forward(std::hint::black_box(&x), false))
    });
    group.bench_function("int8-dequantized", |b| {
        let mut n = q8.clone();
        b.iter(|| n.forward(std::hint::black_box(&x), false))
    });
    group.finish();
}

criterion_group!(benches, bench_quantize_tensor, bench_quantized_inference);
criterion_main!(benches);
