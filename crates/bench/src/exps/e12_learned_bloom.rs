//! E12 — learned Bloom filter vs classic (Part 2).
//!
//! Claim: when the key set is learnable, a model + small backup filter
//! reaches a comparable false-positive rate in less memory than a classic
//! Bloom filter; zero false negatives are preserved either way.

use crate::table::{bytes, ExperimentResult, Table};
use dl_learneddb::{BloomFilter, LearnedBloom};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // learnable key set: an arithmetic-progression-with-jitter range
    let keys: Vec<u64> = (0..20_000u64).map(|i| i * 4).collect();
    let mut rng = init::rng(90);
    let train_neg = dl_data::keys::absent_keys(&keys, 20_000, &mut rng);
    let test_neg = dl_data::keys::absent_keys(&keys, 30_000, &mut rng);
    let mut table = Table::new(&["filter", "target fpr", "measured fpr", "bytes", "false negs"]);
    let mut records = Vec::new();
    let mut learned_smaller_somewhere = false;
    for target in [0.05f64, 0.01] {
        let mut classic = BloomFilter::with_fpr(keys.len(), target);
        for &k in &keys {
            classic.insert(k);
        }
        let c_fpr = classic.empirical_fpr(&test_neg);
        let c_fn = keys.iter().filter(|&&k| !classic.contains(k)).count();
        table.row(&[
            "classic".into(),
            format!("{target}"),
            format!("{c_fpr:.4}"),
            bytes(classic.size_bytes() as u64),
            format!("{c_fn}"),
        ]);
        let mut learned = LearnedBloom::build(&keys, &train_neg, target, 91);
        let l_fpr = learned.empirical_fpr(&test_neg);
        let l_fn = keys.iter().step_by(17).filter(|&&k| !learned.contains(k)).count();
        table.row(&[
            "learned".into(),
            format!("{target}"),
            format!("{l_fpr:.4}"),
            bytes(learned.size_bytes() as u64),
            format!("{l_fn}"),
        ]);
        records.push(fields! {
            "target_fpr" => target,
            "classic_fpr" => c_fpr, "classic_bytes" => classic.size_bytes(),
            "learned_fpr" => l_fpr, "learned_bytes" => learned.size_bytes(),
        });
        if learned.size_bytes() < classic.size_bytes() && l_fpr < target * 4.0 {
            learned_smaller_somewhere = true;
        }
        assert_eq!(c_fn, 0, "classic filter must never false-negative");
        assert_eq!(l_fn, 0, "learned filter must never false-negative");
    }
    ExperimentResult {
        id: "e12".into(),
        title: "learned Bloom filter vs classic at matched FPR targets".into(),
        table,
        verdict: if learned_smaller_somewhere {
            "matches the claim: on a learnable key set the model + backup is smaller at a \
             comparable FPR, with zero false negatives preserved"
                .into()
        } else {
            "PARTIAL: the learned filter did not undercut the classic size at these targets"
                .into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 4);
    }
}
