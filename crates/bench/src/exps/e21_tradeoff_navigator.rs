//! E21 — the tradeoff navigator over measured techniques (§2, framework).
//!
//! Claim: the techniques of Part 1 populate a Pareto frontier over
//! accuracy / training time / inference time / memory — no single winner —
//! and a navigator can answer constraint queries over it.
//!
//! This experiment re-measures a compact version of E1-E4 and registers
//! every point in `dl-core`, then extracts the frontier and runs
//! recommendation queries.

use crate::table::{f3, ExperimentResult, Table};
use dl_compress::{magnitude_prune, quantize_network, QuantScheme};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_nn::Trainer;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let (_, test, net, trainer) = super::digits_setup(600, &[64, 32], 20, 170);
    let base_acc = Trainer::evaluate(&mut net.clone(), &test);
    let inference = net.cost_profile(1).forward_flops;
    let mut registry = Registry::new();
    registry
        .add(Technique {
            name: "fp32-baseline".into(),
            category: Category::Baseline,
            metrics: Metrics {
                accuracy: base_acc,
                train_flops: trainer.flops,
                inference_flops: inference,
                memory_bytes: (net.param_count() * 4) as u64,
                energy_kwh: 0.0,
            },
            baseline: None,
        })
        .expect("unique");
    // quantized variants
    for scheme in [
        QuantScheme::Affine { bits: 8 },
        QuantScheme::Affine { bits: 4 },
        QuantScheme::Binary,
    ] {
        let (mut q, report) = quantize_network(&net, scheme);
        let acc = Trainer::evaluate(&mut q, &test);
        registry
            .add(Technique {
                name: format!("quant-{}", report.scheme),
                category: Category::Compression,
                metrics: Metrics {
                    accuracy: acc,
                    train_flops: trainer.flops,
                    inference_flops: inference,
                    memory_bytes: report.compressed_bytes as u64,
                    energy_kwh: 0.0,
                },
                baseline: Some("fp32-baseline".into()),
            })
            .expect("unique");
    }
    // pruned variants
    for sparsity in [0.5, 0.9] {
        let mut p = net.clone();
        magnitude_prune(&mut p, sparsity);
        let acc = Trainer::evaluate(&mut p, &test);
        let kept = ((1.0 - sparsity) * net.param_count() as f64) as u64;
        registry
            .add(Technique {
                name: format!("prune-{:.0}%", sparsity * 100.0),
                category: Category::Compression,
                metrics: Metrics {
                    accuracy: acc,
                    train_flops: trainer.flops,
                    // sparse storage: value+index per kept weight
                    memory_bytes: kept * 8,
                    inference_flops: (inference as f64 * (1.0 - sparsity)) as u64,
                    energy_kwh: 0.0,
                },
                baseline: Some("fp32-baseline".into()),
            })
            .expect("unique");
    }
    let nav = TradeoffNavigator::new(&registry);
    let frontier = nav.frontier();
    let mut table = Table::new(&["technique", "accuracy", "memory B", "on frontier"]);
    let frontier_names: Vec<&str> = frontier.iter().map(|t| t.name.as_str()).collect();
    for t in registry.techniques() {
        table.row(&[
            t.name.clone(),
            f3(t.metrics.accuracy),
            format!("{}", t.metrics.memory_bytes),
            if frontier_names.contains(&t.name.as_str()) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    // constraint queries
    let budget = registry.get("fp32-baseline").expect("registered").metrics.memory_bytes / 4;
    let pick = nav.recommend(&[Constraint::MaxMemoryBytes(budget)]);
    table.row(&[
        format!("query: memory <= {budget}"),
        pick.map(|t| f3(t.metrics.accuracy)).unwrap_or_default(),
        pick.map(|t| t.name.clone()).unwrap_or_else(|| "none".into()),
        "-".into(),
    ]);
    let records: Vec<dl_obs::Fields> = registry
        .techniques()
        .iter()
        .map(|t| {
            fields! {
                "name" => t.name.as_str(), "accuracy" => t.metrics.accuracy,
                "memory" => t.metrics.memory_bytes,
                "frontier" => frontier_names.contains(&t.name.as_str()),
            }
        })
        .collect();
    let multi_point_frontier = frontier.len() >= 3;
    let has_dominated_points = frontier.len() < registry.len();
    ExperimentResult {
        id: "e21".into(),
        title: "tradeoff navigator: Pareto frontier over measured techniques".into(),
        table,
        verdict: if multi_point_frontier && has_dominated_points {
            "matches the claim: multiple techniques are Pareto-optimal (no single winner), \
             others are dominated, and constrained queries pick different techniques than \
             the unconstrained best"
                .into()
        } else {
            format!("PARTIAL: frontier size {}/{}", frontier.len(), registry.len())
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e21_runs() {
        let r = super::run();
        assert!(r.table.rows.len() >= 7);
    }
}
