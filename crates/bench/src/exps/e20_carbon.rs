//! E20 — carbon footprint: model size, hardware, region, scheduling (§4.3).
//!
//! Claim: emissions scale with model size and differ by an order of
//! magnitude across hardware efficiency and grid region; carbon-aware
//! scheduling recovers most of the regional gap for deferrable jobs.

use crate::table::{f3, flops, ExperimentResult, Table};
use dl_green::{
    energy::energy_for, schedule_jobs, CarbonReport, HardwareProfile, Job, Region, SchedulePolicy,
};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&[
        "model", "train flops", "hardware", "region", "kWh", "gCO2e",
    ]);
    let mut records = Vec::new();
    // model-size sweep: small/medium/large MLPs trained for 200 epochs
    // over a 2M-sample corpus (cost-model math; FLOPs come from dl-nn)
    let sizes = [
        ("small", vec![144usize, 64, 10]),
        ("medium", vec![144, 512, 256, 10]),
        ("large", vec![144, 2048, 2048, 1024, 10]),
    ];
    let mut co2_by_size = Vec::new();
    for (name, dims) in &sizes {
        let net = dl_nn::Network::mlp(dims, &mut init::rng(160));
        let step = net.cost_profile(64).train_step_flops();
        let steps = 200u64 * 2_000_000 / 64;
        let total_flops = step * steps;
        for hw in [HardwareProfile::datacenter_gpu(), HardwareProfile::laptop_cpu()] {
            for region in [Region::HydroNorth, Region::CoalBelt] {
                let energy = energy_for(&hw, total_flops, 1.4);
                let carbon = CarbonReport::from_energy(&energy, region);
                table.row(&[
                    (*name).into(),
                    flops(total_flops),
                    hw.name.into(),
                    region.name().into(),
                    format!("{:.4}", carbon.kwh),
                    format!("{:.1}", carbon.grams_co2e),
                ]);
                records.push(fields! {
                    "model" => *name, "flops" => total_flops, "hardware" => hw.name,
                    "region" => region.name(), "kwh" => carbon.kwh,
                    "grams" => carbon.grams_co2e,
                });
                if hw.name == "datacenter-gpu" && region == Region::CoalBelt {
                    co2_by_size.push(carbon.grams_co2e);
                }
            }
        }
    }
    // scheduling coda
    let jobs: Vec<Job> = co2_by_size
        .iter()
        .map(|_| Job {
            kwh: 10.0,
            hours: 4,
            deadline: 36,
        })
        .collect();
    let naive = schedule_jobs(
        &jobs,
        SchedulePolicy::NaiveImmediate {
            home: Region::MixedAverage,
        },
    );
    let aware = schedule_jobs(&jobs, SchedulePolicy::CarbonAware);
    table.row(&[
        "scheduler".into(),
        "-".into(),
        "-".into(),
        "naive@mixed vs aware".into(),
        "-".into(),
        format!("{:.0} vs {:.0}", naive.total_grams, aware.total_grams),
    ]);
    records.push(fields! {
        "scheduler_naive_grams" => naive.total_grams,
        "scheduler_aware_grams" => aware.total_grams,
    });
    let grows = co2_by_size.windows(2).all(|w| w[1] > w[0] * 2.0);
    let region_gap = Region::CoalBelt.intensity() / Region::HydroNorth.intensity();
    let sched_saves = aware.total_grams < naive.total_grams * 0.2;
    ExperimentResult {
        id: "e20".into(),
        title: "carbon footprint: size x hardware x region, plus scheduling".into(),
        table,
        verdict: if grows && sched_saves {
            format!(
                "matches the claim: emissions grow superlinearly with model size, span a \
                 {}x regional gap, and carbon-aware scheduling recovers most of it",
                f3(region_gap)
            )
        } else {
            format!("PARTIAL: grows={grows} sched_saves={sched_saves}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e20_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 13);
    }
}
