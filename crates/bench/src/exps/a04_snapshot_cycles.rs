//! A4 (ablation) — cycle length in Snapshot Ensembles, plus FGE.
//!
//! Design choice under test: how a fixed training budget is split into
//! cycles. Many short cycles give many weak, under-converged members;
//! few long cycles give few strong but similar members. FGE's warmup +
//! short triangular cycles is the refinement the literature proposes.

use crate::table::{f3, flops, ExperimentResult, Table};
use dl_ensemble::{fge, snapshot, FgeConfig};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the ablation.
pub fn run() -> ExperimentResult {
    let all = dl_data::digits_dataset(600, 0.12, 220);
    let (train, test) = all.split(0.3, 221);
    let budget = 24usize; // total epochs, fixed across variants
    let mut table = Table::new(&["strategy", "members", "cycle len", "accuracy", "train flops"]);
    let mut records = Vec::new();
    let mut best_snapshot = 0.0f64;
    for (members, cycle) in [(12usize, 2usize), (6, 4), (4, 6), (2, 12)] {
        let (_, report) = snapshot(
            &train,
            &test,
            &[144, 32, 10],
            members,
            cycle,
            222,
            &mut init::rng(222),
        );
        table.row(&[
            "snapshot".into(),
            format!("{members}"),
            format!("{cycle}"),
            f3(report.accuracy),
            flops(report.train_flops),
        ]);
        records.push(fields! {
            "strategy" => "snapshot", "members" => members, "cycle" => cycle,
            "accuracy" => report.accuracy,
        });
        best_snapshot = best_snapshot.max(report.accuracy);
    }
    // FGE at the same budget: 12 warmup + 4 cycles of 3
    let (_, fge_report) = fge(
        &train,
        &test,
        &[144, 32, 10],
        &FgeConfig {
            warmup_epochs: budget / 2,
            members: 4,
            cycle_len: 3,
            floor: 0.1,
            seed: 223,
        },
        &mut init::rng(223),
    );
    table.row(&[
        "fge".into(),
        "4".into(),
        "3 (+12 warmup)".into(),
        f3(fge_report.accuracy),
        flops(fge_report.train_flops),
    ]);
    records.push(fields! {
        "strategy" => "fge", "accuracy" => fge_report.accuracy,
    });
    let extremes_lose = {
        use crate::table::field_f64;
        let shortest = field_f64(&records[0], "accuracy").unwrap_or(0.0);
        let middle: f64 = records[1..3]
            .iter()
            .map(|r| field_f64(r, "accuracy").unwrap_or(0.0))
            .fold(0.0, f64::max);
        middle >= shortest
    };
    ExperimentResult {
        id: "a4".into(),
        title: format!("ablation: snapshot cycle length at a fixed {budget}-epoch budget"),
        table,
        verdict: if extremes_lose && fge_report.accuracy > best_snapshot - 0.05 {
            "the design choice matters: very short cycles under-converge members; \
             mid-length cycles win, and FGE's warmup+short-cycles matches the best \
             snapshot split"
                .into()
        } else {
            format!(
                "inconclusive on this task: extremes_lose={extremes_lose} fge={:.3} vs best snapshot={:.3}",
                fge_report.accuracy, best_snapshot
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn a4_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 5);
    }
}
