//! E11 — learned index vs B-tree (Part 2).
//!
//! Claim: a learned index over a smooth key distribution is smaller than a
//! B-tree and needs less search work per lookup; adversarial (clustered)
//! keys erode the advantage.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_data::KeyDistribution;
use dl_learneddb::{BTreeIndex, RecursiveModelIndex};
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let n = 200_000;
    let mut table = Table::new(&[
        "distribution", "index", "size", "mean window", "max window", "depth/leaves",
    ]);
    let mut records = Vec::new();
    let mut rmi_smaller_on_smooth = true;
    // mean windows per distribution, to show hardness varies with the CDF
    let mut windows: Vec<(&str, f64)> = Vec::new();
    for dist in KeyDistribution::all() {
        let keys = dist.generate(n, 80);
        let bt = BTreeIndex::build_default(keys.clone());
        let rmi = RecursiveModelIndex::build(keys.clone(), 256);
        let (mean_w, max_w) = rmi.error_profile();
        // B-tree "window" = fanout-bounded leaf search; cost proxy = depth
        table.row(&[
            dist.name().into(),
            "btree".into(),
            bytes(bt.size_bytes() as u64),
            format!("{} nodes", bt.depth()),
            "-".into(),
            format!("depth {}", bt.depth()),
        ]);
        table.row(&[
            dist.name().into(),
            "rmi".into(),
            bytes(rmi.size_bytes() as u64),
            f3(mean_w),
            format!("{max_w}"),
            format!("{} leaves", rmi.leaf_count()),
        ]);
        records.push(fields! {
            "distribution" => dist.name(),
            "btree_bytes" => bt.size_bytes(), "btree_depth" => bt.depth(),
            "rmi_bytes" => rmi.size_bytes(), "rmi_mean_window" => mean_w,
            "rmi_max_window" => max_w,
        });
        if matches!(dist, KeyDistribution::Uniform | KeyDistribution::Lognormal)
            && rmi.size_bytes() >= bt.size_bytes()
        {
            rmi_smaller_on_smooth = false;
        }
        windows.push((dist.name(), mean_w));
    }
    let uniform_w = windows
        .iter()
        .find(|(n, _)| *n == "uniform")
        .map(|&(_, w)| w)
        .unwrap_or(f64::INFINITY);
    // some distribution must be markedly harder than uniform for the model
    let crossover = windows.iter().any(|&(_, w)| w > uniform_w * 3.0);
    ExperimentResult {
        id: "e11".into(),
        title: format!("learned index (RMI) vs B-tree over {n} keys"),
        table,
        verdict: if rmi_smaller_on_smooth && crossover {
            "matches the claim: the RMI is smaller with small search windows on smooth \
             CDFs, and its windows blow up on skewed/clustered key sets — the expected \
             data-dependence of learned indexes"
                .into()
        } else {
            format!(
                "PARTIAL: rmi_smaller_on_smooth={rmi_smaller_on_smooth} crossover={crossover}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 8);
    }
}
