//! E18 — LIME fidelity and feature recovery (§4.2).
//!
//! Claim: LIME's local linear surrogate explains individual predictions
//! faithfully (high local R²) and its top feature matches the known
//! generative cause; fidelity stabilizes as the perturbation sample
//! grows. Saliency and the surrogate tree corroborate.

use crate::table::{f3, ExperimentResult, Table};
use dl_interpret::{lime_explain, saliency, SurrogateTree};
use dl_nn::{Dataset, Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // ground truth: label depends only on feature 2 of 8
    let causal = 2usize;
    let mut rng = init::rng(140);
    let x = init::uniform([400, 8], -1.0, 1.0, &mut rng);
    let y: Vec<usize> = (0..400)
        .map(|i| usize::from(x.get(&[i, causal]) > 0.0))
        .collect();
    let data = Dataset::new(x, y, 2);
    let mut net = Network::mlp(&[8, 16, 2], &mut init::rng(141));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &data);
    let mut table = Table::new(&["samples", "median local R²", "top-feature recovery"]);
    let mut records = Vec::new();
    let mut final_recovery = 0.0;
    let mut final_r2 = 0.0;
    for samples in [50usize, 150, 500] {
        let mut r2s = Vec::new();
        let mut recovered = 0usize;
        let probes = 20;
        for p in 0..probes {
            let xi = data.x.select_rows(&[p * 17]);
            let exp = lime_explain(&mut net, &xi, 1, samples, 2.0, 142 + p as u64);
            r2s.push(exp.r_squared);
            if exp.top_features(1) == vec![causal] {
                recovered += 1;
            }
        }
        r2s.sort_by(f64::total_cmp);
        let med = r2s[r2s.len() / 2];
        let rec = recovered as f64 / probes as f64;
        table.row(&[format!("{samples}"), f3(med), f3(rec)]);
        records.push(fields! {"samples" => samples, "median_r2" => med, "recovery" => rec});
        final_recovery = rec;
        final_r2 = med;
    }
    // corroboration: saliency and a global surrogate point the same way
    let xi = data.x.select_rows(&[0]);
    let sal = saliency(&mut net, &xi, 1);
    let sal_top = sal.argmax();
    let tree = SurrogateTree::distill(&mut net, &data.x, 3);
    let fid = tree.fidelity(&mut net, &data.x);
    table.row(&[
        "saliency top".into(),
        format!("feature {sal_top}"),
        if sal_top == causal { "agrees".into() } else { "disagrees".into() },
    ]);
    table.row(&[
        "tree surrogate".into(),
        format!("fidelity {}", f3(fid)),
        format!("{} nodes", tree.node_count()),
    ]);
    records.push(fields! {"saliency_top" => sal_top, "tree_fidelity" => fid});
    ExperimentResult {
        id: "e18".into(),
        title: "LIME fidelity vs sample count + saliency/surrogate corroboration".into(),
        table,
        verdict: if final_recovery >= 0.9 && final_r2 > 0.3 && sal_top == causal && fid > 0.85 {
            "matches the claim: LIME recovers the causal feature with high local fidelity; \
             saliency and the tree surrogate agree"
                .into()
        } else {
            format!(
                "PARTIAL: recovery={final_recovery} r2={final_r2:.2} saliency_agrees={} fidelity={fid:.2}",
                sal_top == causal
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e18_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 5);
    }
}
