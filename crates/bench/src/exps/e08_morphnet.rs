//! E8 — MorphNet-style structure optimization under a budget (§2.2).
//!
//! Claim: an optimization step that reallocates width by measured
//! importance beats uniform scaling to the same parameter budget.

use crate::table::{f3, ExperimentResult, Table};
use dl_distributed::{morph_resize, uniform_baseline, MorphConfig};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let data = dl_data::blobs(500, 4, 12, 6.0, 0.6, 50);
    let eval = dl_data::blobs(200, 4, 12, 6.0, 0.6, 51);
    let mut table = Table::new(&["budget", "strategy", "final widths", "params", "accuracy"]);
    let mut records = Vec::new();
    let mut morph_wins = 0usize;
    let mut budgets_run = 0usize;
    for budget in [200usize, 400, 800] {
        let cfg = MorphConfig {
            param_budget: budget,
            rounds: 3,
            epochs_per_round: 12,
            min_width: 2,
            seed: 52,
        };
        let (_, m) = morph_resize(&data, &eval, &[48, 48], &cfg, &mut init::rng(53));
        let (_, u) = uniform_baseline(&data, &eval, &[48, 48], &cfg, &mut init::rng(53));
        table.row(&[
            format!("{budget}"),
            "morph".into(),
            format!("{:?}", m.final_widths),
            format!("{}", m.final_params),
            f3(m.accuracy),
        ]);
        table.row(&[
            format!("{budget}"),
            "uniform".into(),
            format!("{:?}", u.final_widths),
            format!("{}", u.final_params),
            f3(u.accuracy),
        ]);
        records.push(fields! {
            "budget" => budget, "morph_acc" => m.accuracy, "uniform_acc" => u.accuracy,
            "morph_widths" => format!("{:?}", m.final_widths),
            "uniform_widths" => format!("{:?}", u.final_widths),
        });
        budgets_run += 1;
        if m.accuracy >= u.accuracy - 0.02 {
            morph_wins += 1;
        }
    }
    ExperimentResult {
        id: "e8".into(),
        title: "MorphNet-style width reallocation vs uniform scaling".into(),
        table,
        verdict: if morph_wins == budgets_run {
            "matches the claim: importance-driven resizing matches or beats uniform scaling \
             at every budget"
                .into()
        } else {
            format!("PARTIAL: morph won {morph_wins}/{budgets_run} budgets")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 6);
    }
}
