//! E3 — knowledge distillation vs training from scratch (§2.1).
//!
//! Claim: a small student trained on a teacher's softened outputs beats
//! the same architecture trained on hard labels alone, at a fraction of
//! the teacher's footprint.

use crate::table::{f3, ExperimentResult, Table};
use dl_compress::{distill, DistillConfig};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // a noisy variant of the digits task, so small students do not
    // saturate from hard labels alone and the teacher's dark knowledge
    // has something to add
    let all = dl_data::digits_dataset(800, 0.3, 3);
    let (train, test) = all.split(0.3, 4);
    let mut teacher = Network::mlp(&[144, 96, 48, 10], &mut init::rng(5));
    let mut teacher_trainer = Trainer::new(
        TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    teacher_trainer.fit(&mut teacher, &train);
    let teacher_acc = Trainer::evaluate(&mut teacher.clone(), &test);
    let mut table = Table::new(&[
        "student hidden", "params", "scratch acc", "distilled acc", "gain",
    ]);
    let mut records = Vec::new();
    let mut gains = Vec::new();
    for hidden in [6usize, 10, 16] {
        let dims = [144, hidden, 10];
        // from scratch
        let mut scratch = Network::mlp(&dims, &mut init::rng(100 + hidden as u64));
        let mut t = Trainer::new(
            TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        t.fit(&mut scratch, &train);
        let scratch_acc = Trainer::evaluate(&mut scratch, &test);
        // distilled
        let mut student = Network::mlp(&dims, &mut init::rng(200 + hidden as u64));
        let report = distill(
            &mut teacher,
            &mut student,
            &train,
            &DistillConfig {
                train: TrainConfig {
                    epochs: 30,
                    ..TrainConfig::default()
                },
                ..DistillConfig::default()
            },
        );
        let distilled_acc = Trainer::evaluate(&mut student, &test);
        table.row(&[
            format!("{hidden}"),
            format!("{}", student.param_count()),
            f3(scratch_acc),
            f3(distilled_acc),
            format!("{:+.3}", distilled_acc - scratch_acc),
        ]);
        records.push(fields! {
            "hidden" => hidden, "params" => student.param_count(),
            "scratch_acc" => scratch_acc, "distilled_acc" => distilled_acc,
            "teacher_params" => report.teacher_params,
        });
        gains.push(distilled_acc - scratch_acc);
    }
    records.push(fields! {"teacher_acc" => teacher_acc, "teacher_params" => teacher.param_count()});
    ExperimentResult {
        id: "e3".into(),
        title: format!(
            "distillation into small students (teacher acc {})",
            f3(teacher_acc)
        ),
        table,
        // the published shape: large gains well below teacher capacity,
        // vanishing as the student approaches the teacher
        verdict: if gains[0] > 0.05 && gains.iter().all(|&g| g > -0.05) {
            "matches the claim: distillation lifts under-capacity students strongly and \
             never hurts materially; gains shrink as student capacity approaches the teacher"
                .into()
        } else {
            format!("PARTIAL: per-size gains were {gains:?}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 3);
    }
}
