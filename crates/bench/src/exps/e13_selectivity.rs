//! E13 — multi-attribute selectivity estimation (Part 2).
//!
//! Claim: neural estimators beat independence-assuming histograms on
//! correlated multi-attribute predicates; the gap widens with predicate
//! dimensionality.

use crate::table::{f3, ExperimentResult, Table};
use dl_data::{CorrelatedTable, RangePredicate};
use dl_learneddb::{HistogramEstimator, NeuralEstimator, SamplingEstimator};
use dl_learneddb::cardinality::q_error;
use dl_tensor::init;
use dl_obs::fields;

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let table_data = CorrelatedTable::generate(6000, 5, 0.9, 100);
    let hist = HistogramEstimator::build(&table_data, 32);
    let mut rng = init::rng(101);
    let sample = SamplingEstimator::build(&table_data, 300, &mut rng);
    let mut neural = NeuralEstimator::train(&table_data, 800, 4, 102);
    let mut table = Table::new(&[
        "predicate dims", "hist median q-err", "sample median q-err", "neural median q-err",
    ]);
    let mut records = Vec::new();
    let mut neural_wins_high_dim = false;
    let mut query_rng = init::rng(103);
    for dims in 1..=4usize {
        let mut hq = Vec::new();
        let mut sq = Vec::new();
        let mut nq = Vec::new();
        for _ in 0..80 {
            let p = RangePredicate::sample(5, dims, &mut query_rng);
            let truth = table_data.true_selectivity(&p);
            hq.push(q_error(hist.estimate(&p), truth, table_data.rows()));
            sq.push(q_error(sample.estimate(&p), truth, table_data.rows()));
            nq.push(q_error(neural.estimate(&p), truth, table_data.rows()));
        }
        let (h, s, n) = (median(&mut hq), median(&mut sq), median(&mut nq));
        table.row(&[format!("{dims}"), f3(h), f3(s), f3(n)]);
        records.push(fields! {
            "dims" => dims, "hist_qerr" => h, "sample_qerr" => s, "neural_qerr" => n,
        });
        if dims >= 3 && n < h {
            neural_wins_high_dim = true;
        }
    }
    ExperimentResult {
        id: "e13".into(),
        title: "selectivity estimation on correlated data: histogram vs sample vs neural".into(),
        table,
        verdict: if neural_wins_high_dim {
            "matches the claim: the learned estimator overtakes independence histograms on \
             multi-attribute predicates over correlated columns"
                .into()
        } else {
            "PARTIAL: the neural estimator did not beat histograms at high dims here".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 4);
    }
}
