//! E9 — checkpointing/rematerialization schedules (§2.3).
//!
//! Claim: equidistant checkpoints train in geometrically less memory at
//! the cost of one extra forward pass; Checkmate-style optimization finds
//! the best schedule for *any* budget.

use crate::table::{bytes, flops, ExperimentResult, Table};
use dl_memsched::{optimal_schedule, sqrt_schedule, store_all};
use dl_obs::fields;
use dl_prof::NetworkProfile;
use dl_tensor::init;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // a 24-layer MLP with uneven layer sizes at batch 64
    let mut dims = vec![256usize];
    for i in 0..24 {
        dims.push([512, 64, 256, 128][i % 4]);
    }
    dims.push(10);
    let net = dl_nn::Network::mlp(&dims, &mut init::rng(60));
    let costs = net.layer_costs(64);
    // measured counterpart: drive a real forward/backward pass under the
    // kernel cost accounting and schedule on what the kernels actually did
    // (ReLU zeros make measured FLOPs genuinely smaller than modeled).
    let x = init::uniform([64, 256], -1.0, 1.0, &mut init::rng(61));
    let measured_prof = NetworkProfile::profile(&mut net.clone(), &x);
    let measured_costs = measured_prof.measured_layer_costs();
    let base = store_all(&costs);
    let sq = sqrt_schedule(&costs);
    let sq_measured = sqrt_schedule(&measured_costs);
    let mut table = Table::new(&["schedule", "peak memory", "recompute", "checkpoints"]);
    let mut records = Vec::new();
    table.row(&[
        "store-all".into(),
        bytes(base.peak_bytes),
        flops(base.recompute_flops),
        format!("{}", base.checkpoints.len()),
    ]);
    table.row(&[
        "sqrt(n)".into(),
        bytes(sq.peak_bytes),
        flops(sq.recompute_flops),
        format!("{}", sq.checkpoints.len()),
    ]);
    table.row(&[
        "sqrt(n), measured".into(),
        bytes(sq_measured.peak_bytes),
        flops(sq_measured.recompute_flops),
        format!("{}", sq_measured.checkpoints.len()),
    ]);
    records.push(fields! {"schedule" => "store-all", "peak" => base.peak_bytes, "recompute" => 0u64});
    records.push(fields! {
        "schedule" => "sqrt", "peak" => sq.peak_bytes, "recompute" => sq.recompute_flops
    });
    records.push(fields! {
        "schedule" => "sqrt-measured",
        "peak" => sq_measured.peak_bytes,
        "recompute" => sq_measured.recompute_flops,
        "measured_fwd_flops" => measured_prof.forward.flops,
        "modeled_fwd_flops" => measured_prof.modeled.forward_flops,
        "peak_live_bytes" => measured_prof.peak_live_bytes,
    });
    // optimal DP across a budget sweep
    let mut optimal_beats_sqrt = false;
    for frac in [0.5, 0.25, 0.15, 0.08] {
        let budget = (base.peak_bytes as f64 * frac) as u64;
        match optimal_schedule(&costs, budget) {
            Some(opt) => {
                table.row(&[
                    format!("optimal@{:.0}%", frac * 100.0),
                    bytes(opt.peak_bytes),
                    flops(opt.recompute_flops),
                    format!("{}", opt.checkpoints.len()),
                ]);
                records.push(fields! {
                    "schedule" => format!("optimal-{frac}"),
                    "budget" => budget, "peak" => opt.peak_bytes,
                    "recompute" => opt.recompute_flops,
                });
                if opt.peak_bytes <= sq.peak_bytes && opt.recompute_flops <= sq.recompute_flops {
                    optimal_beats_sqrt = true;
                }
            }
            None => {
                table.row(&[
                    format!("optimal@{:.0}%", frac * 100.0),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    let sqrt_saves = sq.peak_bytes * 2 < base.peak_bytes;
    let one_extra_fwd = sq.recompute_flops <= costs.iter().map(|c| c.forward_flops).sum();
    // measured activations mirror the model exactly (geometry is geometry),
    // so the measured schedule must reach the same peak; only its
    // recompute FLOPs may shrink (ReLU zero-skips).
    debug_assert_eq!(sq_measured.peak_bytes, sq.peak_bytes);
    ExperimentResult {
        id: "e9".into(),
        title: "rematerialization: store-all vs sqrt(n) vs optimal DP under budgets".into(),
        table,
        verdict: if sqrt_saves && one_extra_fwd && optimal_beats_sqrt {
            "matches the claim: sqrt(n) cuts memory for <= one extra forward; the DP \
             dominates sqrt(n) and extends to any feasible budget"
                .into()
        } else {
            format!(
                "PARTIAL: sqrt_saves={sqrt_saves} one_extra={one_extra_fwd} dp_dominates={optimal_beats_sqrt}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_runs() {
        let r = super::run();
        assert!(r.table.rows.len() >= 5);
    }
}
