//! One module per experiment in `DESIGN.md`'s index.

pub mod a01_error_feedback;
pub mod a02_rmi_leaves;
pub mod a03_p3_slices;
pub mod a04_snapshot_cycles;
pub mod e01_quantization;
pub mod e02_pruning;
pub mod e03_distillation;
pub mod e04_ensembles;
pub mod e05_local_sgd;
pub mod e06_gradient_compression;
pub mod e07_placement_search;
pub mod e08_morphnet;
pub mod e09_rematerialization;
pub mod e10_offloading;
pub mod e11_learned_index;
pub mod e12_learned_bloom;
pub mod e13_selectivity;
pub mod e14_knob_tuning;
pub mod e15_bias_measurement;
pub mod e16_bias_mitigation;
pub mod e17_tsne;
pub mod e18_lime;
pub mod e19_mistique;
pub mod e20_carbon;
pub mod e21_tradeoff_navigator;
pub mod e22_fault_tolerance;
pub mod e23_observability;
pub mod e24_profiling;
pub mod e25_serving;
pub mod e26_parallel;
pub mod e27_cluster;
pub mod e28_monitoring;
pub mod e29_request_tracing;
pub mod e30_weight_store;
pub mod e31_kernels;

use dl_nn::{Dataset, Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

/// The shared digit-classification setup several Part-1 experiments use:
/// a train/test split of the procedural digits and a trained base model.
pub(crate) fn digits_setup(
    n: usize,
    hidden: &[usize],
    epochs: usize,
    seed: u64,
) -> (Dataset, Dataset, Network, Trainer) {
    let all = dl_data::digits_dataset(n, 0.08, seed);
    let (train, test) = all.split(0.3, seed.wrapping_add(1));
    let mut dims = vec![dl_data::DIGIT_SIDE * dl_data::DIGIT_SIDE];
    dims.extend_from_slice(hidden);
    dims.push(dl_data::DIGIT_CLASSES);
    let mut rng = init::rng(seed.wrapping_add(2));
    let mut net = Network::mlp(&dims, &mut rng);
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs,
            batch_size: 32,
            seed: seed.wrapping_add(3),
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &train);
    (train, test, net, trainer)
}
