//! E2 — pruning sparsity sweep (§2.1).
//!
//! Claim: many parameters are unnecessary; accuracy survives moderate
//! pruning and falls off a cliff at extreme sparsity. Loss-saliency
//! pruning should tolerate more sparsity than magnitude pruning.

use crate::table::{f3, flops, ExperimentResult, Table};
use dl_compress::{filter_prune, magnitude_prune, saliency_prune};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_obs::fields;
use dl_tensor::{acct, init};

/// Measured FLOPs of a sparse-aware forward pass: each dense layer runs as
/// `(Wᵀ·actᵀ)ᵀ` so the matmul kernel's zero-skip iterates over the pruned
/// *weights* — the measured cost genuinely shrinks with sparsity instead
/// of merely modeling the shrink.
fn measured_sparse_fwd(net: &Network, x: &dl_tensor::Tensor) -> u64 {
    let mut m = net.clone();
    let mut total = 0u64;
    let mut act = x.clone();
    for layer in m.layers_mut().iter_mut() {
        if let dl_nn::Layer::Dense(d) = layer {
            let wt = d.weight.transpose();
            let at = act.transpose();
            total += acct::measure(|| wt.matmul(&at)).1.flops;
        }
        act = layer.forward(&act, false);
    }
    total
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let (train, test, net, _) = super::digits_setup(600, &[48], 20, 2);
    let base_acc = Trainer::evaluate(&mut net.clone(), &test);
    let mut table = Table::new(&["sparsity", "magnitude acc", "saliency acc", "measured fwd"]);
    let mut records = Vec::new();
    let mut cliff_seen = false;
    let mut survives_half = false;
    let mut dense_fwd = 0u64;
    let mut sparse_fwd = u64::MAX;
    for sparsity in [0.0, 0.3, 0.5, 0.7, 0.9, 0.98] {
        let mut mag = net.clone();
        magnitude_prune(&mut mag, sparsity);
        let mag_acc = Trainer::evaluate(&mut mag, &test);
        let mag_fwd = measured_sparse_fwd(&mag, &test.x);
        if sparsity == 0.0 {
            dense_fwd = mag_fwd;
        }
        sparse_fwd = sparse_fwd.min(mag_fwd);
        let mut sal = net.clone();
        saliency_prune(&mut sal, &train, sparsity);
        let sal_acc = Trainer::evaluate(&mut sal, &test);
        table.row(&[
            format!("{:.0}%", sparsity * 100.0),
            f3(mag_acc),
            f3(sal_acc),
            flops(mag_fwd),
        ]);
        records.push(fields! {
            "sparsity" => sparsity, "magnitude_acc" => mag_acc, "saliency_acc" => sal_acc,
            "measured_fwd_flops" => mag_fwd,
        });
        if sparsity == 0.5 && mag_acc > base_acc - 0.1 {
            survives_half = true;
        }
        if sparsity >= 0.9 && mag_acc < base_acc - 0.15 {
            cliff_seen = true;
        }
    }
    // structural pruning row: physically remove half the hidden neurons
    let mut structural = net.clone();
    let report = dl_compress::neuron_prune(&mut structural, 0, 24);
    let s_acc = Trainer::evaluate(&mut structural, &test);
    table.row(&[
        "24/48 neurons".into(),
        f3(s_acc),
        "-".into(),
        format!(
            "params {} -> {} (real shrink)",
            report.params_before, report.params_after
        ),
    ]);
    records.push(fields! {
        "structural" => true, "accuracy" => s_acc,
        "params_before" => report.params_before, "params_after" => report.params_after,
    });
    // filter-level pruning on a small CNN (the tutorial's example class)
    let cnn_data = dl_data::digits_dataset(150, 0.05, 30);
    let mut cnn = Network::simple_cnn(1, 12, 12, 4, 16, 10, &mut init::rng(31));
    let mut cnn_trainer = Trainer::new(
        TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    cnn_trainer.fit(&mut cnn, &cnn_data);
    let cnn_base = Trainer::evaluate(&mut cnn, &cnn_data);
    filter_prune(&mut cnn, 0, 1);
    let cnn_pruned = Trainer::evaluate(&mut cnn, &cnn_data);
    table.row(&[
        "cnn: 1/4 filters".into(),
        f3(cnn_pruned),
        "-".into(),
        format!("filter-level (conv), base {}", f3(cnn_base)),
    ]);
    records.push(fields! {
        "cnn_filter_prune" => true, "base" => cnn_base, "pruned" => cnn_pruned,
    });
    records.push(fields! {
        "dense_measured_fwd" => dense_fwd, "min_measured_fwd" => sparse_fwd,
        "sparse_speedup" => dense_fwd as f64 / sparse_fwd.max(1) as f64,
    });
    ExperimentResult {
        id: "e2".into(),
        title: "pruning: sparsity vs accuracy, with the cliff".into(),
        table,
        verdict: if survives_half && cliff_seen {
            "matches the claim: graceful to ~50-70% sparsity, cliff by 90%+".into()
        } else if survives_half {
            "PARTIAL: graceful at 50%, but no cliff appeared at 90-98% on this model".into()
        } else {
            "MISMATCH: accuracy degraded early".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 8);
        assert!(r.verdict.contains("claim") || r.verdict.contains("PARTIAL"));
        // the sparse-aware kernel must measure real savings at 98% sparsity
        let summary = r.records.last().unwrap();
        let speedup = crate::table::field_f64(summary, "sparse_speedup").unwrap();
        assert!(speedup > 2.0, "sparse execution speedup {speedup} too small");
    }
}
