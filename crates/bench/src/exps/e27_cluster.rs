//! E27 — chaos-tested cluster serving: replication, routing, autoscaling.
//!
//! Claim: the serving tier's robustness knobs are quantifiable on the
//! deterministic cluster simulator. Four pillars: (1) under a crash
//! storm, adding replicas drives the failed-request fraction down while
//! p99 stays SLO-governed; (2) with one straggling replica, load-aware
//! routing (least-loaded) beats oblivious round-robin on p99;
//! (3) bounded crash-retries recover work fire-and-forget loses, and
//! hedged requests additionally cut the straggler tail; (4) a reactive
//! autoscaler sized by the family's measured cost tables absorbs a 3x
//! load step within a measurable reaction time. Everything runs on one
//! `VirtualClock`, so every cell is byte-reproducible and the whole
//! experiment is gated by `BENCH_E27.json`.

use crate::table::{ExperimentResult, Table};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_distributed::{FaultEvent, FaultPlan, FaultProfile};
use dl_obs::{fields, Fields, NullRecorder, Recorder, ToFields};
use dl_serve::{
    build_family, bursty, open_loop, serve_cluster, AdmissionPolicy, AutoscaleConfig, BatchPolicy,
    BurstConfig, ClusterConfig, ClusterReport, DeviceModel, FamilyConfig, LoadConfig, Request,
    RetryPolicy, RouterPolicy, ServeConfig,
};

/// The p99 objective the SLO-aware cells are governed against.
const SLO_S: f64 = 2e-5;
/// Fault-plan step grid every chaos schedule is laid out on.
const STEPS: usize = 64;

fn base_engine(admission: AdmissionPolicy) -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy::dynamic(16, 5e-6),
        admission,
        primary: "fp32-base".into(),
        device: DeviceModel::nominal(),
    }
}

fn cluster_record(scenario: &str, config: &str, replicas: usize, r: &ClusterReport) -> Fields {
    let mut f = fields! {
        "scenario" => scenario,
        "config" => config,
        "replicas" => replicas,
        "lost" => r.lost,
        "unavailable" => r.unavailable,
        "retried" => r.retried,
        "hedged" => r.hedged,
        "crashes" => r.crashes,
        "rejoins" => r.rejoins,
        "peak_replicas" => r.peak_replicas,
        "final_replicas" => r.final_replicas,
        "failure_fraction" => r.failure_fraction(),
    };
    f.extend(r.serve.to_fields());
    f
}

fn cluster_row(
    table: &mut Table,
    scenario: &str,
    config: &str,
    replicas: usize,
    r: &ClusterReport,
) {
    table.row(&[
        scenario.into(),
        config.into(),
        format!("{replicas}"),
        format!("{:.1}", r.serve.p99_s * 1e6),
        format!("{}", r.serve.served),
        format!("{}/{}/{}", r.serve.shed, r.lost, r.unavailable),
        format!("{}/{}", r.retried, r.hedged),
        format!("{:.1}", r.failure_fraction() * 100.0),
    ]);
}

fn load(rate_rps: f64, requests: usize, seed: u64, rows: usize) -> Vec<Request> {
    open_loop(
        &LoadConfig {
            rate_rps,
            requests,
            seed,
        },
        rows,
    )
}

/// Runs the experiment without tracing.
pub fn run() -> ExperimentResult {
    run_with(&NullRecorder::new())
}

/// Runs the experiment, threading `rec` into the headline crash-storm
/// cell so its per-replica tracks, crash/rejoin instants and latency
/// histogram land in the trace.
pub fn run_with(rec: &dyn Recorder) -> ExperimentResult {
    let data = dl_data::blobs(160, 3, 8, 6.0, 0.5, 93);
    let eval = dl_data::blobs(96, 3, 8, 6.0, 0.5, 94);
    let rows = eval.x.dims()[0];
    let mut family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![8, 24, 3],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 150,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 9,
            seed: 95,
        },
    );
    let device = DeviceModel::nominal();
    // Measured per-replica capacity at full batch — the denominator every
    // rate in this experiment is expressed against (and the same number
    // the autoscaler sizes with).
    let cap_dyn = {
        let v = &family.variants[0];
        v.max_batch() as f64 / device.service_time(v.cost_at(v.max_batch()))
    };

    let mut table = Table::new(&[
        "scenario", "config", "repl", "p99 us", "served", "shed/lost/unav", "retr/hedge",
        "fail %",
    ]);
    let mut records: Vec<Fields> = Vec::new();

    // Cost accounting for the served family (dl-prof measured costs).
    for v in &family.variants {
        records.push(fields! {
            "variant" => v.name.clone(),
            "accuracy" => v.accuracy,
            "weight_bytes" => v.weight_bytes,
            "flops1" => v.cost_at(1).flops,
            "svc1_s" => device.service_time(v.cost_at(1)),
        });
    }

    // --- pillar 1: replica sweep under a crash storm ----------------------
    // Total offered rate is fixed at 1.5x ONE replica's capacity, so the
    // one-replica cell is overloaded before the first crash and each added
    // replica buys real headroom against both load and faults.
    let storm_rate = 1.5 * cap_dyn;
    let storm_reqs = load(storm_rate, 1200, 101, rows);
    let storm_span = storm_reqs.last().expect("non-empty").arrival_s;
    let seconds_per_step = storm_span / (STEPS as f64 * 0.75);
    let mut sweep: Vec<(usize, ClusterReport)> = Vec::new();
    for replicas in 1..=4usize {
        let cfg = ClusterConfig {
            retry: RetryPolicy::retries(2),
            faults: FaultPlan::from_profile(&FaultProfile::crashes(7, 20.0, 6.0), replicas, STEPS),
            seconds_per_step,
            warmup_s: seconds_per_step,
            warmup_factor: 2.0,
            ..ClusterConfig::new(
                replicas,
                base_engine(AdmissionPolicy::SloAware {
                    p99_slo_s: SLO_S,
                    headroom: 0.7,
                    min_accuracy: 0.0,
                }),
            )
        };
        // The 3-replica cell is the headline trace.
        let cell_rec: &dyn Recorder = if replicas == 3 { rec } else { &NullRecorder::new() };
        let r = serve_cluster(&mut family, &eval, &storm_reqs, &cfg, cell_rec);
        cluster_row(&mut table, "crash-storm", "slo+retry2", replicas, &r);
        records.push(cluster_record("crash-storm", "slo+retry2", replicas, &r));
        sweep.push((replicas, r));
    }
    let fail_1 = sweep[0].1.failure_fraction();
    let fail_4 = sweep[3].1.failure_fraction();
    let storm_crashes: usize = sweep.iter().map(|(_, r)| r.crashes).sum();
    let replication_wins = storm_crashes >= 4 && fail_4 < 0.5 * fail_1;

    // --- pillar 2: router policies against a degraded replica -------------
    // Replica 0 straggles at 4x all run; a mid-run link degradation
    // quadruples dispatch latency for everyone. Round-robin keeps feeding
    // the slow replica obliviously; load-aware policies see its backlog.
    let router_rate = 1.8 * cap_dyn;
    let router_reqs = load(router_rate, 900, 102, rows);
    let router_span = router_reqs.last().expect("non-empty").arrival_s;
    let router_sps = router_span / (STEPS as f64 * 0.75);
    let degraded = FaultPlan::new(vec![
        FaultEvent::Straggler {
            worker: 0,
            slowdown: 4.0,
            from_step: 0,
            to_step: STEPS,
        },
        FaultEvent::LinkDegrade {
            factor: 0.25,
            from_step: STEPS / 4,
            to_step: STEPS / 2,
        },
    ]);
    let mut router_p99 = Vec::new();
    for (name, policy) in [
        ("round-robin", RouterPolicy::RoundRobin),
        ("least-loaded", RouterPolicy::LeastLoaded),
        ("power-of-two", RouterPolicy::PowerOfTwoChoices { seed: 17 }),
    ] {
        let cfg = ClusterConfig {
            router: policy,
            faults: degraded.clone(),
            seconds_per_step: router_sps,
            dispatch_s: 1e-6,
            ..ClusterConfig::new(3, base_engine(AdmissionPolicy::AcceptAll))
        };
        let r = serve_cluster(&mut family, &eval, &router_reqs, &cfg, &NullRecorder::new());
        cluster_row(&mut table, "degraded", name, 3, &r);
        records.push(cluster_record("degraded", name, 3, &r));
        router_p99.push((name, r.serve.p99_s, r.serve.served));
    }
    let rr_p99 = router_p99[0].1;
    let ll_p99 = router_p99[1].1;
    let routing_wins = router_p99.iter().all(|&(_, _, served)| served == 900)
        && ll_p99 < rr_p99;

    // --- pillar 3: retry vs hedge under crashes + a straggler --------------
    let tail_rate = 1.5 * cap_dyn;
    let tail_reqs = load(tail_rate, 900, 103, rows);
    let tail_span = tail_reqs.last().expect("non-empty").arrival_s;
    let tail_sps = tail_span / (STEPS as f64 * 0.75);
    let mut chaos_events = FaultPlan::from_profile(&FaultProfile::crashes(11, 24.0, 6.0), 3, STEPS)
        .events()
        .to_vec();
    chaos_events.push(FaultEvent::Straggler {
        worker: 1,
        slowdown: 8.0,
        from_step: 0,
        to_step: STEPS,
    });
    let chaos = FaultPlan::new(chaos_events);
    // The hedge fires after ~2 full-batch service times: long enough that
    // healthy replicas never trigger it, short enough to escape the 8x
    // straggler.
    let hedge_delay_s = 2.0 * 16.0 / cap_dyn;
    let mut tail_cells: Vec<(&str, ClusterReport)> = Vec::new();
    for (name, retry) in [
        ("no-retry", RetryPolicy::none()),
        ("retry2", RetryPolicy::retries(2)),
        ("retry2+hedge", RetryPolicy::hedged(2, hedge_delay_s)),
    ] {
        let cfg = ClusterConfig {
            retry,
            faults: chaos.clone(),
            seconds_per_step: tail_sps,
            warmup_s: tail_sps,
            warmup_factor: 2.0,
            ..ClusterConfig::new(3, base_engine(AdmissionPolicy::AcceptAll))
        };
        let r = serve_cluster(&mut family, &eval, &tail_reqs, &cfg, &NullRecorder::new());
        cluster_row(&mut table, "tail", name, 3, &r);
        records.push(cluster_record("tail", name, 3, &r));
        tail_cells.push((name, r));
    }
    let lost_none = tail_cells[0].1.lost;
    let lost_retry = tail_cells[1].1.lost;
    let retry_recovers = lost_none > 0
        && lost_retry < lost_none
        && tail_cells[1].1.retried > 0
        && tail_cells[1].1.serve.served > tail_cells[0].1.serve.served;
    let hedge = &tail_cells[2].1;
    let hedge_cuts_tail =
        hedge.hedged > 0 && hedge.serve.p99_s < tail_cells[1].1.serve.p99_s;

    // --- pillar 4: autoscale reaction to a 3x load step --------------------
    // Off-first bursty load: the first half-period runs at 70% of one
    // replica's capacity, then steps to 3x that for the rest of the run.
    let base_rate = 0.7 * cap_dyn;
    let t_off = 700.0 / base_rate;
    let step_reqs = bursty(
        &LoadConfig {
            rate_rps: base_rate,
            requests: 2000,
            seed: 104,
        },
        &BurstConfig {
            period_s: 2.0 * t_off,
            duty: 0.5,
            multiplier: 3.0,
        },
        rows,
    );
    let provision_delay_s = t_off / 20.0;
    let scale_cfg = AutoscaleConfig::new(
        t_off / 10.0,
        t_off / 8.0,
        0.7,
        1,
        6,
        provision_delay_s,
    );
    let auto_cfg = ClusterConfig {
        autoscale: Some(scale_cfg),
        warmup_s: t_off / 40.0,
        warmup_factor: 1.5,
        ..ClusterConfig::new(1, base_engine(AdmissionPolicy::AcceptAll))
    };
    let auto = serve_cluster(&mut family, &eval, &step_reqs, &auto_cfg, &NullRecorder::new());
    cluster_row(&mut table, "load-step", "autoscale", 1, &auto);
    records.push(cluster_record("load-step", "autoscale", 1, &auto));
    let fixed = serve_cluster(
        &mut family,
        &eval,
        &step_reqs,
        &ClusterConfig::new(1, base_engine(AdmissionPolicy::AcceptAll)),
        &NullRecorder::new(),
    );
    cluster_row(&mut table, "load-step", "fixed-1", 1, &fixed);
    records.push(cluster_record("load-step", "fixed-1", 1, &fixed));
    // Reaction time: step onset until enough capacity for the 3x rate
    // (ceil(3 * 0.7 / 0.7) = 3 replicas) is *live*, provisioning included.
    let needed = 3usize;
    let reaction_s = auto
        .scale_events
        .iter()
        .find(|e| e.target >= needed)
        .map(|e| e.at_s + provision_delay_s - t_off)
        .unwrap_or(f64::INFINITY);
    let autoscale_reacts = auto.peak_replicas >= needed
        && reaction_s > 0.0
        && reaction_s < 0.5 * t_off
        && auto.serve.p99_s < fixed.serve.p99_s;

    // --- the robustness knobs in the tradeoff navigator -------------------
    // Each sweep cell is a technique: availability bought with replicated
    // memory. The navigator prices the fleet from the same measured
    // weight/flop costs the serving tier uses.
    let mut registry = Registry::new();
    let base_bytes = family.variants[0].weight_bytes;
    let base_flops = family.variants[0].cost_at(1).flops;
    for (replicas, r) in &sweep {
        registry
            .add(Technique {
                name: format!("cluster-{replicas}x"),
                category: Category::Robustness,
                metrics: Metrics {
                    accuracy: 1.0 - r.failure_fraction(),
                    train_flops: 0,
                    inference_flops: base_flops * (*replicas as u64),
                    memory_bytes: base_bytes * (*replicas as u64),
                    energy_kwh: 0.0,
                },
                baseline: Some("cluster-1x".into()),
            })
            .expect("unique replica counts");
    }
    let navigator = TradeoffNavigator::new(&registry);
    let frontier = navigator.frontier().len();
    let budget_pick = navigator
        .recommend(&[Constraint::MaxMemoryBytes(base_bytes * 2)])
        .map(|t| t.name.clone())
        .unwrap_or_default();
    let navigable = frontier > 0 && !budget_pick.is_empty();

    records.push(fields! {
        "cap_dyn_rps" => cap_dyn,
        "slo_s" => SLO_S,
        "fail_frac_1" => fail_1,
        "fail_frac_4" => fail_4,
        "storm_crashes" => storm_crashes,
        "rr_p99_s" => rr_p99,
        "ll_p99_s" => ll_p99,
        "p2c_p99_s" => router_p99[2].1,
        "lost_no_retry" => lost_none,
        "lost_retry2" => lost_retry,
        "hedged" => hedge.hedged,
        "hedge_p99_s" => hedge.serve.p99_s,
        "retry_p99_s" => tail_cells[1].1.serve.p99_s,
        "reaction_s" => reaction_s,
        "peak_replicas" => auto.peak_replicas,
        "auto_p99_s" => auto.serve.p99_s,
        "fixed_p99_s" => fixed.serve.p99_s,
        "frontier_size" => frontier,
        "robustness_techniques" => registry.by_category(Category::Robustness).len(),
        "recommended_under_budget" => budget_pick.clone(),
    });

    let ok = replication_wins && routing_wins && retry_recovers && hedge_cuts_tail
        && autoscale_reacts && navigable;
    ExperimentResult {
        id: "e27".into(),
        title: "cluster serving: replication, fault-aware routing, autoscaling".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: 4 replicas cut the crash-storm failure fraction {:.1}% -> \
                 {:.1}%, least-loaded routing beats round-robin p99 {:.1}us vs {:.1}us past a 4x \
                 straggler, retries recover {} of {} lost requests and hedging trims p99 to \
                 {:.1}us, and the autoscaler reaches {} replicas {:.0}us after a 3x load step",
                fail_1 * 100.0,
                fail_4 * 100.0,
                ll_p99 * 1e6,
                rr_p99 * 1e6,
                lost_none - lost_retry,
                lost_none,
                hedge.serve.p99_s * 1e6,
                needed,
                reaction_s * 1e6,
            )
        } else {
            format!(
                "PARTIAL: replication_wins={replication_wins} routing_wins={routing_wins} \
                 retry_recovers={retry_recovers} hedge_cuts_tail={hedge_cuts_tail} \
                 autoscale_reacts={autoscale_reacts} navigable={navigable}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e27_cluster_matches_claim() {
        let r = super::run();
        assert!(r.verdict.contains("matches the claim"), "verdict: {}", r.verdict);
        let summary = r.records.last().unwrap();
        let fail_1 = crate::table::field_f64(summary, "fail_frac_1").unwrap();
        let fail_4 = crate::table::field_f64(summary, "fail_frac_4").unwrap();
        assert!(fail_4 < fail_1, "replication must cut failures: {fail_4} vs {fail_1}");
        let reaction = crate::table::field_f64(summary, "reaction_s").unwrap();
        assert!(reaction.is_finite() && reaction > 0.0, "reaction {reaction}");
    }

    #[test]
    fn e27_is_deterministic_byte_for_byte() {
        let a = super::run();
        let b = super::run();
        assert_eq!(a.to_json(), b.to_json(), "two runs must be byte-identical");
    }
}
