//! E5 — Local SGD sync-period sweep (§2.1).
//!
//! Claim: training communicates less as the averaging period grows, with
//! only a modest accuracy cost.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_distributed::{local_sgd_traced, Cluster, Device, Link, LocalSgdConfig};
use dl_obs::{NullRecorder, Recorder, ToFields};

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    run_with(&NullRecorder::new())
}

/// Runs the experiment, tracing every sweep point onto `rec` (each sync
/// period becomes one `local_sgd` span on the shared timeline).
pub fn run_with(rec: &dyn Recorder) -> ExperimentResult {
    let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 6);
    let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 7);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let mut table = Table::new(&[
        "sync period", "accuracy", "bytes", "sim seconds", "sync rounds",
    ]);
    let mut records = Vec::new();
    let mut results = Vec::new();
    for period in [1usize, 4, 16, 64] {
        let (_, report) = local_sgd_traced(
            &cluster,
            &data,
            &eval,
            &[8, 24, 3],
            &LocalSgdConfig {
                sync_period: period,
                steps: 256,
                batch_size: 16,
                lr: 0.05,
                seed: 20,
            },
            rec,
        );
        table.row(&[
            format!("{period}"),
            f3(report.accuracy),
            bytes(report.bytes_communicated),
            format!("{:.4}", report.simulated_seconds),
            format!("{}", report.sync_rounds),
        ]);
        // the span-annotation schema doubles as the JSON record
        records.push(report.to_fields());
        results.push(report);
    }
    let comm_drops = results.windows(2).all(|w| w[1].bytes_communicated < w[0].bytes_communicated);
    let acc_holds = results[2].accuracy > results[0].accuracy - 0.12;
    ExperimentResult {
        id: "e5".into(),
        title: "Local SGD: averaging period vs communication and accuracy".into(),
        table,
        verdict: if comm_drops && acc_holds {
            "matches the claim: bytes fall ~1/period; accuracy within a few points through period 16"
                .into()
        } else {
            format!("PARTIAL: comm_drops={comm_drops} acc_holds={acc_holds}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 4);
    }
}
