//! E28 — online monitoring: SLO burn-rate alerts, health, and drift.
//!
//! Claim: the `dl-monitor` tap turns the serving tier's event stream
//! into actionable, deterministic alerts. Three pillars: (1) during a
//! ramp overload, a fast/slow-window error-budget **burn-rate** alert
//! fires measurably *before* the p99 latency SLO itself is violated —
//! the early-warning lead the burn-rate construction exists to buy;
//! (2) PSI **input-drift** and KL **prediction-drift** alerts fire when
//! the served distribution is shifted mid-run, with detection latency
//! that does not grow as the injected drift magnitude grows, and stay
//! silent at zero magnitude; (3) on a steady fault-free run with the
//! full rule set attached the monitor raises **zero false alerts** and
//! the run is bit-identical — report, timeline, and latency histogram —
//! to the unmonitored run. Everything runs on one `VirtualClock`, so
//! every cell is byte-reproducible and gated by `BENCH_E28.json`.

use crate::table::{ExperimentResult, Table};
use dl_core::{Category, Metrics, Registry, Technique};
use dl_monitor::{AlertKind, DriftConfig, Monitor, MonitorConfig, ReferenceProfile, SloRule};
use dl_nn::Dataset;
use dl_obs::{fields, Fields, NullRecorder, Recorder, TimelineRecorder, ToFields};
use dl_serve::{
    build_family, bursty, open_loop, serve, AdmissionPolicy, BatchPolicy, BurstConfig, DeviceModel,
    FamilyConfig, LoadConfig, ServeConfig,
};
use dl_tensor::Tensor;

/// Reference-profile interior bins for input-drift tracking.
const DRIFT_BINS: usize = 8;
/// Drift magnitudes injected mid-run (in input-feature units; the blobs
/// generator's within-cluster noise is sigma = 0.5, so 1.5 is a 3-sigma
/// shift).
const DRIFT_MAGNITUDES: [f32; 4] = [0.0, 0.75, 1.5, 3.0];
/// Sentinel for "no alert fired" in the latency records (keeps the
/// baseline gate on plain f64s).
const NO_ALERT: f64 = -1.0;
/// PSI that fires an input-drift alert. Calibrated to ~2x the largest
/// in-distribution PSI observed on this setup (~0.40 — train and eval
/// are independent finite draws, so their windowed PSI never reaches 0)
/// and ~2.7x *below* the signal at the smallest injected shift (~2.2).
const PSI_THRESHOLD: f64 = 0.8;
/// KL (nats) that fires a prediction-drift alert; the in-distribution
/// predicted-class KL tops out near 0.04 here.
const KL_THRESHOLD: f64 = 0.2;

fn engine_cfg() -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy::dynamic(16, 5e-6),
        admission: AdmissionPolicy::AcceptAll,
        primary: "fp32-base".into(),
        device: DeviceModel::nominal(),
    }
}

/// Scalar input-feature projection: column 0 of the dataset, row order.
fn feature_column(x: &Tensor) -> Vec<f64> {
    let d = x.dims()[1];
    x.data().chunks(d).map(|row| f64::from(row[0])).collect()
}

/// The served dataset for one drift cell: the clean rows followed by a
/// copy with every feature shifted by `m` — requests index the clean
/// half before the drift point and the shifted half after it.
fn with_shifted_copy(eval: &Dataset, m: f32) -> Dataset {
    let n = eval.x.dims()[0];
    let d = eval.x.dims()[1];
    let mut data = eval.x.data().to_vec();
    data.extend(eval.x.data().iter().map(|&v| v + m));
    let mut y = eval.y.clone();
    y.extend_from_slice(&eval.y);
    Dataset {
        x: Tensor::from_vec(data, vec![2 * n, d]).expect("shape matches data"),
        y,
        classes: eval.classes,
    }
}

fn fmt_alert_us(t: Option<f64>) -> String {
    match t {
        Some(s) => format!("{:.1}", s * 1e6),
        None => "-".into(),
    }
}

/// Runs the experiment without tracing.
pub fn run() -> ExperimentResult {
    run_with(&NullRecorder::new())
}

/// Runs the experiment. The headline ramp-overload cell is monitored on
/// a private timeline (so its clock always starts at zero) and that
/// timeline — per-variant tracks, admit/complete instants, and the
/// `monitor.alert` instants — is mirrored into `rec` afterwards.
pub fn run_with(rec: &dyn Recorder) -> ExperimentResult {
    let data = dl_data::blobs(160, 3, 8, 6.0, 0.5, 111);
    let eval = dl_data::blobs(96, 3, 8, 6.0, 0.5, 112);
    let rows = eval.x.dims()[0];
    let mut family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![8, 24, 3],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 150,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 9,
            seed: 113,
        },
    );
    let device = DeviceModel::nominal();
    let cap_dyn = {
        let v = &family.variants[0];
        v.max_batch() as f64 / device.service_time(v.cost_at(v.max_batch()))
    };
    let scfg = engine_cfg();

    let mut table = Table::new(&[
        "scenario", "config", "p99 us", "served", "alerts", "first alert us", "note",
    ]);
    let mut records: Vec<Fields> = Vec::new();

    // --- calibration: a healthy steady run fixes the SLO ------------------
    // The latency objective is derived from measurement, not guessed: the
    // compliance SLO is 6x the healthy p99 and the burn rule's (stricter)
    // budget objective is 1.5x — the standard "alert on the objective you
    // can still do something about" split.
    let healthy_reqs = open_loop(
        &LoadConfig {
            rate_rps: 0.6 * cap_dyn,
            requests: 900,
            seed: 201,
        },
        rows,
    );
    let healthy = serve(&mut family, &eval, &healthy_reqs, &scfg, &NullRecorder::new());
    let p99h = healthy.p99_s;
    let slo_s = 6.0 * p99h;
    let tight_s = 1.5 * p99h;
    table.row(&[
        "calibrate".into(),
        "steady 0.6x cap".into(),
        format!("{:.1}", healthy.p99_s * 1e6),
        format!("{}", healthy.served),
        "-".into(),
        "-".into(),
        format!("slo={:.1}us", slo_s * 1e6),
    ]);
    let mut rec_healthy = fields! {
        "scenario" => "calibrate",
        "p99_healthy_s" => p99h,
        "latency_slo_s" => slo_s,
        "burn_objective_s" => tight_s,
    };
    rec_healthy.extend(healthy.to_fields());
    records.push(rec_healthy);

    let rules = vec![
        SloRule::BurnRate {
            name: "p99-burn".into(),
            latency_slo_s: tight_s,
            budget: 0.02,
            fast_windows: 2,
            slow_windows: 8,
            threshold: 3.0,
        },
        SloRule::LatencyQuantile {
            name: "p99-slo".into(),
            q: 0.99,
            target_s: slo_s,
            windows: 8,
        },
        SloRule::HealthBelow {
            name: "replica-health".into(),
            threshold: 0.25,
        },
    ];

    // --- pillar 1: burn-rate alert leads the SLO violation ----------------
    // One off-first burst period: 0.6x capacity for t_off seconds, then a
    // 3x step to 1.8x capacity. AcceptAll means the queue grows without
    // bound after the step, so latency ramps through the tight burn
    // objective long before it crosses the 6x compliance SLO.
    let base_rate = 0.6 * cap_dyn;
    let t_off = 360.0 / base_rate;
    let ramp_reqs = bursty(
        &LoadConfig {
            rate_rps: base_rate,
            requests: 1440,
            seed: 202,
        },
        &BurstConfig {
            period_s: 2.0 * t_off,
            duty: 0.5,
            multiplier: 3.0,
        },
        rows,
    );
    let window_s = t_off / 48.0;
    let ramp_tl = TimelineRecorder::new();
    let ramp_monitor = Monitor::new(
        &ramp_tl,
        MonitorConfig {
            window_s,
            history: 64,
            latency_slo_s: slo_s,
            rules: rules.clone(),
            ..MonitorConfig::default()
        },
    );
    let ramp = serve(&mut family, &eval, &ramp_reqs, &scfg, &ramp_monitor);
    let ramp_rep = ramp_monitor.report();
    // Mirror the monitored timeline (events carry their own timestamps)
    // into the harness trace.
    for e in ramp_tl.events() {
        rec.record(e);
    }
    let t_burn = ramp_rep.first_alert_s(AlertKind::BurnRate);
    let t_slo = ramp_rep.first_alert_s(AlertKind::Latency);
    let lead_s = match (t_burn, t_slo) {
        (Some(a), Some(v)) => v - a,
        _ => f64::NAN,
    };
    // The burn alert must come after the load step (no false fire in the
    // healthy phase) and before the compliance violation.
    let burn_leads = matches!((t_burn, t_slo), (Some(a), Some(v)) if a < v)
        && t_burn.is_some_and(|a| a > 0.9 * t_off);
    table.row(&[
        "ramp".into(),
        "3x step, burn+slo".into(),
        format!("{:.1}", ramp.p99_s * 1e6),
        format!("{}", ramp.served),
        format!("{}", ramp_rep.alerts.len()),
        fmt_alert_us(t_burn),
        format!("lead={:.1}us", lead_s * 1e6),
    ]);
    let mut rec_ramp = fields! {
        "scenario" => "ramp",
        "step_at_s" => t_off,
        "window_s" => window_s,
        "t_burn_alert_s" => t_burn.unwrap_or(NO_ALERT),
        "t_slo_alert_s" => t_slo.unwrap_or(NO_ALERT),
        "lead_s" => if lead_s.is_nan() { NO_ALERT } else { lead_s },
        "burn_alerts" => ramp_rep.alert_count(AlertKind::BurnRate),
        "latency_alerts" => ramp_rep.alert_count(AlertKind::Latency),
        "health_alerts" => ramp_rep.alert_count(AlertKind::Health),
        "windows_closed" => ramp_rep.windows_closed,
        "monitored_completions" => ramp_rep.fleet.completions,
    };
    rec_ramp.extend(ramp.to_fields());
    records.push(rec_ramp);

    // --- pillar 2: drift alerts vs injected magnitude ---------------------
    // Reference profiles come from the *training* data — the deployment
    // story the paper's responsibility agenda tells: profile at train
    // time, monitor at serve time.
    let input_ref = ReferenceProfile::from_values(&feature_column(&data.x), DRIFT_BINS);
    let pred_ref = {
        let preds = family.variants[0].model.predict(&data.x);
        let total = preds.len() as f64;
        let mut counts = vec![0u64; data.classes];
        for p in preds {
            counts[p] += 1;
        }
        counts.iter().map(|&c| c as f64 / total).collect::<Vec<f64>>()
    };
    let mut drift_cells: Vec<(f64, usize, usize, Option<f64>, f64, f64)> = Vec::new();
    for &m in &DRIFT_MAGNITUDES {
        let served_data = with_shifted_copy(&eval, m);
        let mut reqs = open_loop(
            &LoadConfig {
                rate_rps: 0.5 * cap_dyn,
                requests: 1200,
                seed: 203,
            },
            rows,
        );
        // Re-point the second half of the schedule at the shifted copy:
        // the arrival process is untouched, only the data drifts.
        let half = reqs.len() / 2;
        let t_mid = reqs[half].arrival_s;
        for r in &mut reqs[half..] {
            r.sample += rows;
        }
        let span = reqs.last().expect("non-empty").arrival_s;
        let null = NullRecorder::new();
        let monitor = Monitor::new(
            &null,
            MonitorConfig {
                window_s: span / 40.0,
                history: 64,
                drift: Some(DriftConfig {
                    input_ref: Some(input_ref.clone()),
                    pred_ref: Some(pred_ref.clone()),
                    windows: 4,
                    min_samples: 50,
                    psi_threshold: PSI_THRESHOLD,
                    kl_threshold: KL_THRESHOLD,
                }),
                feature_of_sample: feature_column(&served_data.x),
                ..MonitorConfig::default()
            },
        );
        let drift_serve = serve(&mut family, &served_data, &reqs, &scfg, &monitor);
        let rep = monitor.report();
        let input_alerts = rep.alert_count(AlertKind::InputDrift);
        let pred_alerts = rep.alert_count(AlertKind::PredictionDrift);
        let latency = rep.first_alert_s(AlertKind::InputDrift).map(|t| t - t_mid);
        table.row(&[
            "drift".into(),
            format!("shift {m}"),
            format!("{:.1}", drift_serve.p99_s * 1e6),
            format!("{}", drift_serve.served),
            format!("{}/{}", input_alerts, pred_alerts),
            fmt_alert_us(rep.first_alert_s(AlertKind::InputDrift)),
            format!("psi={:.3}", rep.max_input_psi),
        ]);
        records.push(fields! {
            "scenario" => "drift",
            "magnitude" => f64::from(m),
            "drift_at_s" => t_mid,
            "input_alerts" => input_alerts,
            "pred_alerts" => pred_alerts,
            "detect_latency_s" => latency.unwrap_or(NO_ALERT),
            "max_input_psi" => rep.max_input_psi,
            "max_pred_kl" => rep.max_pred_kl,
        });
        drift_cells.push((
            f64::from(m),
            input_alerts,
            pred_alerts,
            latency,
            rep.max_input_psi,
            rep.max_pred_kl,
        ));
    }
    let drift_silent_at_zero = drift_cells[0].1 == 0 && drift_cells[0].2 == 0;
    let drift_fires = drift_cells[2].1 > 0 && drift_cells[3].1 > 0;
    let drift_latency_sane = match (drift_cells[2].3, drift_cells[3].3) {
        // Detection latency must not grow with magnitude, and detection
        // must happen after the injection point.
        (Some(l15), Some(l30)) => l30 <= l15 && l30 > 0.0,
        _ => false,
    };
    // PSI is monotone in the injected shift across the sweep.
    let psi_monotone = drift_cells.windows(2).all(|w| w[0].4 <= w[1].4);

    // --- pillar 3: steady run — zero false alerts, bit-identical ----------
    let steady_reqs = open_loop(
        &LoadConfig {
            rate_rps: 0.5 * cap_dyn,
            requests: 1000,
            seed: 204,
        },
        rows,
    );
    let steady_span = steady_reqs.last().expect("non-empty").arrival_s;
    let steady_cfg = MonitorConfig {
        window_s: steady_span / 40.0,
        history: 64,
        latency_slo_s: slo_s,
        rules: rules.clone(),
        drift: Some(DriftConfig {
            input_ref: Some(input_ref.clone()),
            pred_ref: Some(pred_ref.clone()),
            windows: 4,
            min_samples: 50,
            psi_threshold: PSI_THRESHOLD,
            kl_threshold: KL_THRESHOLD,
        }),
        feature_of_sample: feature_column(&eval.x),
        ..MonitorConfig::default()
    };
    // Unmonitored timeline run vs the same run with the monitor tapping
    // the timeline, plus both NullRecorder paths.
    let plain_tl = TimelineRecorder::new();
    let plain = serve(&mut family, &eval, &steady_reqs, &scfg, &plain_tl);
    let mon_tl = TimelineRecorder::new();
    let steady_monitor = Monitor::new(&mon_tl, steady_cfg.clone());
    let monitored = serve(&mut family, &eval, &steady_reqs, &scfg, &steady_monitor);
    let steady_rep = steady_monitor.report();
    let unmonitored_null = serve(&mut family, &eval, &steady_reqs, &scfg, &NullRecorder::new());
    let null_inner = NullRecorder::new();
    let null_monitor = Monitor::new(&null_inner, steady_cfg);
    let monitored_null = serve(&mut family, &eval, &steady_reqs, &scfg, &null_monitor);
    let false_alerts = steady_rep.alerts.len();
    let bit_identical = plain == monitored
        && plain == unmonitored_null
        && plain == monitored_null
        && plain_tl.events() == mon_tl.events()
        && plain_tl.histogram("serve.latency_s") == mon_tl.histogram("serve.latency_s");
    table.row(&[
        "steady".into(),
        "full rules + drift".into(),
        format!("{:.1}", monitored.p99_s * 1e6),
        format!("{}", monitored.served),
        format!("{}", false_alerts),
        "-".into(),
        format!("bit-identical={bit_identical}"),
    ]);
    let mut rec_steady = fields! {
        "scenario" => "steady",
        "false_alerts" => false_alerts,
        "bit_identical" => bit_identical,
        "fleet_health" => steady_rep.fleet.health,
        "fleet_queue_depth" => steady_rep.fleet.queue_depth,
        "steady_max_input_psi" => steady_rep.max_input_psi,
        "steady_max_pred_kl" => steady_rep.max_pred_kl,
    };
    rec_steady.extend(monitored.to_fields());
    records.push(rec_steady);

    // --- cost accounting: the monitor as an observability technique -------
    // The tap's state is bounded by construction: per series, a ring of
    // (history + 1) fixed 64-bucket sketches and four window counters
    // plus two EWMA cells; drift adds the reference bins and the sliding
    // count windows.
    let series_state_bytes = |cfg: &MonitorConfig| -> u64 {
        let sketch = 64 * 8 + 4 * 8;
        let counters = 4 * 8;
        (cfg.history as u64 + 1) * (sketch + counters) + 2 * 16
    };
    let ramp_cfg_bytes = series_state_bytes(ramp_monitor.config())
        * (1 + ramp_rep.replicas.len() as u64);
    let drift_state_bytes = ((DRIFT_BINS as u64 + 2) + data.classes as u64) * 8 * 5;
    let mut registry = Registry::new();
    registry
        .add(Technique {
            name: "unmonitored-serving".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: plain.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: 0,
                energy_kwh: 0.0,
            },
            baseline: None,
        })
        .expect("unique");
    registry
        .add(Technique {
            name: "monitor-slo-tap".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: monitored.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: ramp_cfg_bytes,
                energy_kwh: 0.0,
            },
            baseline: Some("unmonitored-serving".into()),
        })
        .expect("unique");
    registry
        .add(Technique {
            name: "monitor-drift-tap".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: monitored.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: ramp_cfg_bytes + drift_state_bytes,
                energy_kwh: 0.0,
            },
            baseline: Some("monitor-slo-tap".into()),
        })
        .expect("unique");

    records.push(fields! {
        "scenario" => "summary",
        "cap_dyn_rps" => cap_dyn,
        "burn_leads" => burn_leads,
        "drift_silent_at_zero" => drift_silent_at_zero,
        "drift_fires" => drift_fires,
        "drift_latency_sane" => drift_latency_sane,
        "psi_monotone" => psi_monotone,
        "observability_techniques" => registry.by_category(Category::Observability).len(),
    });

    let ok = burn_leads
        && drift_silent_at_zero
        && drift_fires
        && drift_latency_sane
        && psi_monotone
        && false_alerts == 0
        && bit_identical;
    ExperimentResult {
        id: "e28".into(),
        title: "online monitoring: SLO burn-rate alerts, health, and drift detection".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: the burn-rate alert fires {:.1}us before the p99 \
                 SLO violation during the ramp, input drift is detected at every nonzero \
                 magnitude (silent at zero) with non-increasing latency, and the steady \
                 run raises 0 false alerts while staying bit-identical to the unmonitored run",
                lead_s * 1e6
            )
        } else {
            format!(
                "PARTIAL: burn_leads={burn_leads} drift_silent_at_zero={drift_silent_at_zero} \
                 drift_fires={drift_fires} drift_latency_sane={drift_latency_sane} \
                 psi_monotone={psi_monotone} false_alerts={false_alerts} \
                 bit_identical={bit_identical}"
            )
        },
        records,
    }
}

/// Shared report for in-module tests (the experiment is expensive enough
/// to run once).
#[cfg(test)]
fn shared() -> &'static ExperimentResult {
    use std::sync::OnceLock;
    static RESULT: OnceLock<ExperimentResult> = OnceLock::new();
    RESULT.get_or_init(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::field_f64;
    use dl_obs::FieldValue;

    fn record<'a>(r: &'a ExperimentResult, scenario: &str) -> &'a Fields {
        r.records
            .iter()
            .find(|f| {
                f.iter().any(|(k, v)| {
                    k == "scenario" && matches!(v, FieldValue::Str(s) if s == scenario)
                })
            })
            .expect("scenario record")
    }

    #[test]
    fn e28_monitoring_matches_claim() {
        let r = shared();
        assert!(
            r.verdict.starts_with("matches the claim"),
            "verdict: {}",
            r.verdict
        );
        let ramp = record(r, "ramp");
        let lead = field_f64(ramp, "lead_s").expect("lead_s");
        assert!(lead > 0.0, "burn alert must lead the SLO violation: {lead}");
        let steady = record(r, "steady");
        assert_eq!(field_f64(steady, "false_alerts"), Some(0.0));
        assert_eq!(field_f64(steady, "bit_identical"), Some(1.0));
    }

    #[test]
    fn e28_is_deterministic_byte_for_byte() {
        let a = shared();
        let b = run();
        assert_eq!(a.to_json(), b.to_json());
    }
}
