//! A1 (ablation) — error feedback in gradient compression.
//!
//! Design choice under test: the residual accumulator in `dl-distributed`'s
//! compressors. Deep Gradient Compression's claim is that aggressive
//! sparsification only works because unsent gradient mass is banked and
//! eventually transmitted; dropping the bank should hurt at high
//! compression.

use crate::table::{f3, ExperimentResult, Table};
use dl_distributed::{compressed_sgd_opts, Cluster, Device, GradCompressor, Link};
use dl_obs::fields;

/// Runs the ablation.
pub fn run() -> ExperimentResult {
    // a harder task (8 close classes, high noise) so the compressed
    // signal is actually needed to make progress
    let data = dl_data::blobs(600, 8, 10, 3.0, 0.9, 200);
    let eval = dl_data::blobs(240, 8, 10, 3.0, 0.9, 201);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let mut table = Table::new(&["compressor", "with feedback", "without feedback", "delta"]);
    let mut records = Vec::new();
    let mut worst_delta = 0.0f64;
    for c in [
        GradCompressor::TopK { frac: 0.05 },
        GradCompressor::TopK { frac: 0.005 },
        GradCompressor::Quantize { bits: 2 },
    ] {
        let run = |fb: bool| {
            compressed_sgd_opts(&cluster, &data, &eval, &[10, 32, 8], &c, 250, 16, 0.05, 30, fb).1
        };
        let with = run(true);
        let without = run(false);
        let delta = with.accuracy - without.accuracy;
        table.row(&[
            with.compressor.clone(),
            f3(with.accuracy),
            f3(without.accuracy),
            format!("{delta:+.3}"),
        ]);
        records.push(fields! {
            "compressor" => with.compressor,
            "with_feedback" => with.accuracy,
            "without_feedback" => without.accuracy,
        });
        worst_delta = worst_delta.max(delta);
    }
    ExperimentResult {
        id: "a1".into(),
        title: "ablation: error feedback in compressed gradient exchange".into(),
        table,
        verdict: if worst_delta > 0.05 {
            format!(
                "the design choice matters: dropping error feedback costs up to {} accuracy \
                 at high compression",
                f3(worst_delta)
            )
        } else {
            "inconclusive at this scale: feedback made little difference".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn a1_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 3);
    }
}
