//! E22 — fault tolerance: the checkpoint-interval tradeoff (§2.1,
//! robustness).
//!
//! Claim: under a nonzero failure rate, the time to complete a fixed
//! workload has an *interior* minimum in the checkpoint interval (the
//! classic Young/Daly tradeoff) — checkpointing every sync round drowns
//! in write overhead, checkpointing rarely drowns in replayed work after
//! each crash — and Local SGD's larger sync periods make recovery
//! cheaper by shrinking the per-step replay cost.

use crate::table::{f3, ExperimentResult, Table};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_distributed::{
    resilient_local_sgd_traced, Cluster, Device, FaultEvent, FaultPlan, FaultProfile, Link,
    LocalSgdConfig, ResilientConfig, StorageProfile,
};
use dl_obs::{NullRecorder, Recorder, ToFields};

const STEPS: usize = 256;
const WORKERS: usize = 4;

/// Crash/repair schedule with worker 0 pinned (never crashed) so every
/// configuration runs to completion and the sweeps stay comparable.
/// Scans seeds deterministically so the sweep always has several crashes
/// to recover from, whatever the RNG deals to individual seeds.
pub(crate) fn faulty_plan() -> FaultPlan {
    (97u64..117)
        .map(|seed| {
            let profile = FaultProfile::crashes(seed, 48.0, 16.0);
            let full = FaultPlan::from_profile(&profile, WORKERS, STEPS);
            FaultPlan::new(
                full.events()
                    .iter()
                    .filter(|e| {
                        !matches!(
                            e,
                            FaultEvent::WorkerCrash { worker: 0, .. }
                                | FaultEvent::WorkerRejoin { worker: 0, .. }
                        )
                    })
                    .copied()
                    .collect(),
            )
        })
        .find(|p| p.crash_count() >= 8)
        .expect("some seed in the scan must crash workers 1..4 repeatedly")
}

/// The sweep configuration whose trace tells the headline story: Local
/// SGD (sync 8) with the interior-optimal checkpoint interval under the
/// faulty plan. `run_with` threads the recorder into exactly this run.
pub const TRACED_CONFIG: (&str, usize, usize) = ("mtbf48", 8, 32);

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    run_with(&NullRecorder::new())
}

/// Runs the experiment, tracing the [`TRACED_CONFIG`] sweep point onto
/// `rec` (crashes, rollbacks, rejoins and checkpoint writes become
/// events; see `dl_distributed::resilient_local_sgd_traced`).
pub fn run_with(rec: &dyn Recorder) -> ExperimentResult {
    let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 6);
    let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 7);
    let cluster = Cluster::homogeneous(WORKERS, Device::accelerator(), Link::ethernet());
    let dims = [8, 32, 3];
    let faulty = faulty_plan();
    let clean = FaultPlan::none();

    let mut table = Table::new(&[
        "crashes", "sync", "ckpt every", "total s", "goodput smp/s", "lost smp", "recovery s",
        "ckpt s", "accuracy",
    ]);
    let mut records = Vec::new();
    let mut registry = Registry::new();
    // completion time [(faults, sync_period, interval)]
    let mut seconds = std::collections::BTreeMap::new();
    for (label, plan) in [("none", &clean), ("mtbf48", &faulty)] {
        for sync_period in [1usize, 8] {
            for interval in [0usize, 8, 32, 128] {
                let config = ResilientConfig {
                    base: LocalSgdConfig {
                        sync_period,
                        steps: STEPS,
                        batch_size: 16,
                        lr: 0.05,
                        seed: 20,
                    },
                    checkpoint_interval: interval,
                    storage: StorageProfile::blob_store(),
                    detection_timeout: 5e-3,
                    ..ResilientConfig::default()
                };
                let null = NullRecorder::new();
                let point_rec: &dyn Recorder = if (label, sync_period, interval) == TRACED_CONFIG {
                    rec
                } else {
                    &null
                };
                let (net, report) = resilient_local_sgd_traced(
                    &cluster, &data, &eval, &dims, &config, plan, point_rec,
                );
                table.row(&[
                    label.into(),
                    format!("{sync_period}"),
                    if interval == 0 {
                        "never".into()
                    } else {
                        format!("{interval}")
                    },
                    format!("{:.4}", report.simulated_seconds),
                    format!("{:.0}", report.goodput),
                    format!("{}", report.lost_samples),
                    format!("{:.4}", report.recovery_seconds),
                    format!("{:.4}", report.checkpoint_seconds),
                    f3(report.accuracy),
                ]);
                // One serialization path: the same fields annotate the
                // run span and become the machine-readable record.
                let mut fields = report.to_fields();
                fields.insert(0, ("faults".to_string(), label.into()));
                records.push(fields.clone());
                seconds.insert((label, sync_period, interval), report.simulated_seconds);
                if label == "mtbf48" {
                    let step_flops = net.cost_profile(16).train_step_flops();
                    registry
                        .add(Technique {
                            name: format!("elastic-s{sync_period}-i{interval}"),
                            category: Category::Robustness,
                            metrics: Metrics {
                                accuracy: report.accuracy,
                                train_flops: (report.total_samples / 16) * step_flops,
                                inference_flops: net.cost_profile(1).forward_flops,
                                memory_bytes: report.checkpoint_bytes,
                                energy_kwh: 0.0,
                            },
                            baseline: Some("elastic-s1-i0".into()),
                        })
                        .expect("unique");
                }
            }
        }
    }

    // navigator query over the robustness techniques: best accuracy under
    // a checkpoint-storage budget
    let nav = TradeoffNavigator::new(&registry);
    let budget = 64 * 1024u64;
    let pick = nav.recommend(&[Constraint::MaxMemoryBytes(budget)]);
    table.row(&[
        format!("query: ckpt storage <= {budget} B"),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        pick.map(|t| t.name.clone()).unwrap_or_else(|| "none".into()),
        pick.map(|t| f3(t.metrics.accuracy)).unwrap_or_default(),
    ]);

    let t = |sync: usize, interval: usize| seconds[&("mtbf48", sync, interval)];
    // the headline: at sync 8 under faults, a middling interval finishes
    // the workload faster than both extremes and "never"
    let interior_optimum =
        t(8, 32) < t(8, 8) && t(8, 32) < t(8, 128) && t(8, 32) < t(8, 0);
    // Local SGD amortizes recovery: its best faulted completion time
    // beats synchronous training's best
    let best = |sync: usize| {
        [0usize, 8, 32, 128]
            .iter()
            .map(|&i| t(sync, i))
            .fold(f64::INFINITY, f64::min)
    };
    let local_sgd_wins = best(8) < best(1);
    // without faults, checkpointing is pure overhead
    let clean_overhead =
        seconds[&("none", 8, 0)] <= seconds[&("none", 8, 8)];
    ExperimentResult {
        id: "e22".into(),
        title: "fault tolerance: checkpoint interval vs completion time under crashes".into(),
        table,
        verdict: if interior_optimum && local_sgd_wins && clean_overhead {
            "matches the claim: completion time bottoms out at an interior checkpoint \
             interval (frequent checkpoints pay write overhead, rare ones replay lost \
             work), larger sync periods amortize recovery, and fault-free runs see \
             checkpointing as pure cost"
                .into()
        } else {
            format!(
                "PARTIAL: interior_optimum={interior_optimum} (i8={:.4}s i32={:.4}s \
                 i128={:.4}s never={:.4}s) local_sgd_wins={local_sgd_wins} \
                 clean_overhead={clean_overhead}",
                t(8, 8),
                t(8, 32),
                t(8, 128),
                t(8, 0)
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e22_runs() {
        let r = super::run();
        assert!(r.table.rows.len() >= 16);
    }

    #[test]
    fn e22_plan_spares_worker_zero() {
        let plan = super::faulty_plan();
        assert!(plan.crash_count() > 0, "the sweep needs real crashes");
        assert!(plan.events().iter().all(|e| !matches!(
            e,
            dl_distributed::FaultEvent::WorkerCrash { worker: 0, .. }
        )));
    }
}
