//! E7 — optimize-then-parallelize placement search (§2.2, FlexFlow).
//!
//! Claim: spending setup time simulating and searching parallelization
//! strategies finds placements that beat the standard defaults
//! (single-device, data-parallel, round-robin model-parallel).

use crate::table::{f3, ExperimentResult, Table};
use dl_distributed::{
    data_parallel_cost, optimize_placement, Cluster, Device, Link, Placement,
    PlacementSearchConfig,
};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // a compute-heavy, unevenly-sized model at batch 256: enough work per
    // layer that splitting across devices beats paying zero communication
    let net = dl_nn::Network::mlp(
        &[1024, 2048, 2048, 2048, 2048, 1024, 1024, 512, 512, 256, 10],
        &mut init::rng(40),
    );
    let costs = net.layer_costs(256);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::nvlink());
    let mut table = Table::new(&["strategy", "step seconds", "transfer bytes", "sim evals"]);
    let mut records = Vec::new();
    let single = Placement::single_device(costs.len()).simulate(&cluster, &costs);
    let rr = Placement::round_robin(costs.len(), cluster.len()).simulate(&cluster, &costs);
    let dp = data_parallel_cost(&cluster, &costs);
    let mut add = |name: &str, secs: f64, bytes: u64, evals: usize| {
        table.row(&[
            name.into(),
            format!("{secs:.6}"),
            format!("{bytes}"),
            format!("{evals}"),
        ]);
        records.push(fields! {"strategy" => name, "step_seconds" => secs, "transfer_bytes" => bytes});
    };
    add("single-device", single.step_seconds, single.transfer_bytes, 1);
    add("round-robin", rr.step_seconds, rr.transfer_bytes, 1);
    add("data-parallel", dp.step_seconds, dp.transfer_bytes, 1);
    // sweep optimization budgets: more search -> better strategies
    let mut best_found = f64::INFINITY;
    for iters in [50usize, 500, 3000] {
        let (_, cost, evals) = optimize_placement(
            &cluster,
            &costs,
            &PlacementSearchConfig {
                iterations: iters,
                seed: 41,
                ..PlacementSearchConfig::default()
            },
        );
        add(
            &format!("mcmc-{iters}"),
            cost.step_seconds,
            cost.transfer_bytes,
            evals,
        );
        best_found = best_found.min(cost.step_seconds);
    }
    let beats_defaults = best_found
        < single
            .step_seconds
            .min(rr.step_seconds)
            .min(dp.step_seconds) + 1e-15;
    let speedup = single.step_seconds.min(rr.step_seconds).min(dp.step_seconds) / best_found;
    ExperimentResult {
        id: "e7".into(),
        title: "FlexFlow-style placement search vs standard parallelization defaults".into(),
        table,
        verdict: if beats_defaults {
            format!(
                "matches the claim: searched placement is {}x faster than the best default",
                f3(speedup)
            )
        } else {
            "PARTIAL: search only matched the best default on this model".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 6);
    }
}
