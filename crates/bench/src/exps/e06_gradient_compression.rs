//! E6 — gradient compression sweep (§2.1).
//!
//! Claim: top-k sparsification and low-bit quantization with error
//! feedback cut communicated bytes by 1-2 orders of magnitude at a small
//! accuracy cost; priority scheduling further hides what remains.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_obs::fields;
use dl_distributed::{
    compressed_sgd, schedule_backward_comm, Cluster, Device, GradCompressor, Link, SchedulePolicy,
};

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 8);
    let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 9);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let mut table = Table::new(&["compressor", "accuracy", "wire bytes", "ratio", "sim seconds"]);
    let mut records = Vec::new();
    let compressors = [
        GradCompressor::None,
        GradCompressor::Quantize { bits: 8 },
        GradCompressor::Quantize { bits: 4 },
        GradCompressor::TopK { frac: 0.1 },
        GradCompressor::TopK { frac: 0.01 },
    ];
    let mut reports = Vec::new();
    for c in &compressors {
        let (_, r) = compressed_sgd(&cluster, &data, &eval, &[8, 24, 3], c, 200, 16, 0.05, 30);
        table.row(&[
            r.compressor.clone(),
            f3(r.accuracy),
            bytes(r.bytes_communicated),
            format!("{:.1}x", r.ratio()),
            format!("{:.4}", r.simulated_seconds),
        ]);
        records.push(fields! {
            "compressor" => r.compressor.as_str(), "accuracy" => r.accuracy,
            "bytes" => r.bytes_communicated, "ratio" => r.ratio(),
        });
        reports.push(r);
    }
    // priority-propagation coda: one iteration scheduled both ways, on a
    // CNN-shaped cost profile — uniform per-layer compute, gradients
    // growing with depth (convolutions are param-light, the final dense
    // layers param-heavy). Our MLP substrate cannot produce that shape
    // (its parameters track its compute), so the profile is specified
    // directly, as DESIGN.md's substitution policy allows.
    let profile: Vec<dl_distributed::LayerComm> = [2u64, 6, 10, 20, 40]
        .iter()
        .map(|&mb| dl_distributed::LayerComm {
            backward_time: 0.010,
            forward_time: 0.010,
            grad_bytes: mb * 1_000_000,
        })
        .collect();
    let fifo = schedule_backward_comm(&profile, &Link::ethernet(), SchedulePolicy::Fifo);
    let prio = schedule_backward_comm(&profile, &Link::ethernet(), SchedulePolicy::Priority);
    table.row(&[
        "— P3 schedule".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.1}% faster iter",
            (1.0 - prio.iteration_seconds / fifo.iteration_seconds) * 100.0
        ),
        format!("{:.5} vs {:.5}", prio.iteration_seconds, fifo.iteration_seconds),
    ]);
    records.push(fields! {
        "p3_fifo_seconds" => fifo.iteration_seconds,
        "p3_priority_seconds" => prio.iteration_seconds,
    });
    let dense_acc = reports[0].accuracy;
    let big_ratio = reports.last().map(|r| r.ratio()).unwrap_or(1.0);
    let acc_holds = reports.iter().all(|r| r.accuracy > dense_acc - 0.15);
    ExperimentResult {
        id: "e6".into(),
        title: "gradient compression: wire bytes vs accuracy (+ P3 scheduling)".into(),
        table,
        verdict: if big_ratio > 20.0 && acc_holds {
            "matches the claim: 1-2 orders of magnitude fewer bytes at small accuracy cost; \
             priority scheduling shortens the iteration further"
                .into()
        } else {
            format!("PARTIAL: max ratio {big_ratio:.0}x, accuracy holds: {acc_holds}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 6);
    }
}
