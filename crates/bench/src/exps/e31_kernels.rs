//! E31 — reduced-precision data-parallel kernels: unrolled f32 FMA and
//! native int8 GEMM.
//!
//! Claim: the `DL_KERNEL` dispatch layer shifts the roofline without
//! giving up determinism. Three pillars: (1) the width-8 `mul_add`
//! unrolled f32 GEMM is bitwise-pinned — identical output at every
//! thread count and tile width, charging the exact same measured
//! `OpCost` as the scalar oracle — while drifting from scalar only by
//! the fused-rounding epsilon; (2) the lane tree-reduce map/sum/dot/
//! sum_axis kernels hold the same cross-thread pin; (3) the serve int8
//! variant computes *natively* on packed codes: its measured per-batch
//! cost streams ~1 byte per weight instead of the dequantized shadow's
//! 4, so under the E25 device and SLO the native engine sustains the
//! same load with a lower p99 than a dequantize-then-f32 twin of
//! itself.
//!
//! Determinism note: as in E26, wall-clock microseconds and speedups
//! ride along as *string* fields, which `dl_prof::Baseline::from_records`
//! excludes from the numeric gate. Every numeric field — bitwise pins,
//! cost-parity booleans, max relative kernel drift, measured per-batch
//! costs, modeled service times, VirtualClock p99s — is reproducible on
//! any machine.

use std::time::Instant;

use crate::table::{f3, ExperimentResult, Table};
use dl_obs::{fields, Fields, NullRecorder};
use dl_serve::{
    build_family, open_loop, serve, AdmissionPolicy, BatchPolicy, DeviceModel, FamilyConfig,
    LoadConfig, ServeConfig, ServeReport, VariantModel,
};
use dl_tensor::acct::{self, OpCost};
use dl_tensor::{par, Tensor};

/// The p99 latency objective the serve comparison is judged against
/// (same bar as E25).
const SLO_S: f64 = 5e-5;
/// Requests per serve cell.
const CELL_REQUESTS: usize = 1200;
/// Thread counts the f32 sweep exercises.
const THREADS: [usize; 3] = [1, 2, 4];
/// Batch sizes the int8 service-cost comparison reports.
const BATCHES: [usize; 3] = [1, 8, 32];
/// Timing repetitions per wall-clock cell; the minimum is reported.
const REPS: usize = 3;

/// Deterministic, RNG-free matrix fill (same recipe as E26): ~25% exact
/// zeros and values in [-1, 1].
fn filled(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            if (i + salt).is_multiple_of(4) {
                0.0
            } else {
                let h = (i.wrapping_mul(2_654_435_761).wrapping_add(salt * 97)) % 1000;
                h as f32 / 499.5 - 1.0
            }
        })
        .collect();
    Tensor::from_vec(data, [rows, cols]).expect("length matches by construction")
}

/// Minimum wall-clock microseconds over `REPS` runs of `f`.
fn best_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Largest relative elementwise difference between two equally-shaped
/// tensors (0 when both are empty).
fn max_rel_diff(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1e-6);
            f64::from((x - y).abs() / scale)
        })
        .fold(0.0, f64::max)
}

/// Measured eval-mode forward cost of `model` at batch `b` (same recipe
/// as the registry's build-time calibration).
fn cost_at_batch(model: &mut VariantModel, calib: &Tensor, b: usize) -> OpCost {
    let rows = calib.dims()[0];
    let idx: Vec<usize> = (0..b).map(|i| i % rows).collect();
    let xb = calib.select_rows(&idx);
    let (_, cost) = acct::measure(|| model.predict(&xb));
    cost
}

fn serve_cell(
    registry: &mut dl_serve::VariantRegistry,
    eval: &dl_nn::Dataset,
    rate_rps: f64,
    primary: &str,
    device: &DeviceModel,
) -> ServeReport {
    let load = open_loop(
        &LoadConfig {
            rate_rps,
            requests: CELL_REQUESTS,
            seed: 300,
        },
        eval.x.dims()[0],
    );
    let cfg = ServeConfig {
        batch: BatchPolicy::dynamic(32, 8e-6),
        admission: AdmissionPolicy::AcceptAll,
        primary: primary.into(),
        device: device.clone(),
    };
    serve(registry, eval, &load, &cfg, &NullRecorder::new())
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&[
        "cell", "detail", "threads", "scalar", "unrolled", "pinned", "parity", "note",
    ]);
    let mut records: Vec<Fields> = Vec::new();

    // --- pillar 1: the f32 GEMM sweep -------------------------------------
    let shapes: [(&str, usize, usize, usize); 3] = [
        ("small 32x64·64x32", 32, 64, 32),
        ("odd 45x97·97x23", 45, 97, 23),
        ("large 192x192·192x192", 192, 192, 192),
    ];
    let mut cells = 0usize;
    let mut pinned_cells = 0usize;
    let mut parity_cells = 0usize;
    let mut worst_drift = 0.0f64;
    let mut wall_speedup_large = String::new();

    for &(label, m, k, n) in &shapes {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        let (scalar_ref, seq_cost) = par::with_kernel(par::Kernel::Scalar, || {
            par::with_threads(1, || acct::measure(|| par::matmul(&a, &b)))
        });
        let unrolled_ref = par::with_kernel(par::Kernel::Unrolled, || {
            par::with_threads(1, || par::matmul(&a, &b))
        });
        let drift = max_rel_diff(&scalar_ref, &unrolled_ref);
        worst_drift = worst_drift.max(drift);
        for &t in &THREADS {
            let mut pinned = true;
            let mut parity = true;
            for (kern, reference) in [
                (par::Kernel::Scalar, &scalar_ref),
                (par::Kernel::Unrolled, &unrolled_ref),
            ] {
                let (got, cost) = par::with_kernel(kern, || {
                    par::with_threads(t, || acct::measure(|| par::matmul(&a, &b)))
                });
                pinned &= got.data() == reference.data();
                parity &= cost == seq_cost;
                // The blocked kernel must agree with the flat one bit for
                // bit under the same knob settings.
                let blocked = par::with_kernel(kern, || {
                    par::with_threads(t, || par::matmul_blocked(&a, &b, 64))
                });
                pinned &= blocked.data() == reference.data();
            }
            cells += 1;
            pinned_cells += usize::from(pinned);
            parity_cells += usize::from(parity);
            table.row(&[
                "f32 gemm".into(),
                label.into(),
                format!("{t}"),
                "ref".into(),
                format!("drift {drift:.1e}"),
                format!("{pinned}"),
                format!("{parity}"),
                "-".into(),
            ]);
            records.push(fields! {
                "cell" => "f32",
                "shape" => label,
                "m" => m,
                "k" => k,
                "n" => n,
                "threads" => t,
                "pinned" => pinned,
                "cost_parity" => parity,
                "max_rel_drift" => drift,
            });
        }
        if label.starts_with("large") {
            let scalar_us = best_us(|| {
                par::with_kernel(par::Kernel::Scalar, || {
                    par::with_threads(4, || {
                        std::hint::black_box(par::matmul(&a, &b));
                    });
                });
            });
            let unrolled_us = best_us(|| {
                par::with_kernel(par::Kernel::Unrolled, || {
                    par::with_threads(4, || {
                        std::hint::black_box(par::matmul(&a, &b));
                    });
                });
            });
            wall_speedup_large = format!("{:.3}", scalar_us / unrolled_us);
            table.row(&[
                "f32 wall".into(),
                label.into(),
                "4".into(),
                format!("{scalar_us:.0}us"),
                format!("{unrolled_us:.0}us"),
                "-".into(),
                "-".into(),
                format!("speedup {}", wall_speedup_large),
            ]);
        }
    }

    // --- pillar 2: the lane tree-reduce kernels ---------------------------
    let x = filled(37, 29, 7);
    let v = filled(1, 203, 9).reshape([203]).expect("203 elements");
    let w = filled(1, 203, 11).reshape([203]).expect("203 elements");
    let mut reduce_pinned = true;
    let ref_sum_axis = par::with_kernel(par::Kernel::Unrolled, || {
        par::with_threads(1, || par::sum_axis(&x, 0))
    });
    let ref_sum =
        par::with_kernel(par::Kernel::Unrolled, || par::with_threads(1, || par::sum(&v)));
    let ref_dot = par::with_kernel(par::Kernel::Unrolled, || {
        par::with_threads(1, || par::dot(&v, &w))
    });
    let ref_map = par::with_kernel(par::Kernel::Unrolled, || {
        par::with_threads(1, || par::map(&x, |t| t.mul_add(0.5, 0.125)))
    });
    for &t in &THREADS {
        par::with_kernel(par::Kernel::Unrolled, || {
            par::with_threads(t, || {
                reduce_pinned &= par::sum_axis(&x, 0).data() == ref_sum_axis.data();
                reduce_pinned &= par::sum(&v).to_bits() == ref_sum.to_bits();
                reduce_pinned &= par::dot(&v, &w).to_bits() == ref_dot.to_bits();
                reduce_pinned &= par::map(&x, |t| t.mul_add(0.5, 0.125)).data() == ref_map.data();
            });
        });
    }
    // Scalar reductions stay bit-identical to the sequential Tensor ops.
    let scalar_matches_tensor = par::with_kernel(par::Kernel::Scalar, || {
        par::with_threads(4, || {
            par::sum(&v).to_bits() == v.sum().to_bits()
                && par::dot(&v, &w).to_bits() == v.dot(&w).to_bits()
        })
    });
    table.row(&[
        "reduce".into(),
        "sum/dot/sum_axis/map".into(),
        "1,2,4".into(),
        format!("{scalar_matches_tensor}"),
        "lane tree".into(),
        format!("{reduce_pinned}"),
        "-".into(),
        "-".into(),
    ]);

    // --- pillar 3: native int8 serving vs its dequantized shadow ----------
    let data = dl_data::blobs(400, 5, 16, 2.4, 1.1, 90);
    let eval = dl_data::blobs(200, 5, 16, 2.4, 1.1, 91);
    let mut family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![16, 64, 64, 5],
            student_hidden: vec![16],
            prune_sparsity: 0.8,
            morph_budget: 1200,
            ensemble_members: 3,
            max_batch: 32,
            epochs: 24,
            seed: 92,
        },
    );
    let device = DeviceModel::nominal();
    let int8_idx = family
        .variants
        .iter()
        .position(|v| v.name == "int8")
        .expect("family builds an int8 variant");

    // The shadow: the same packed weights dequantized back to f32 and
    // served through the ordinary dense path — exactly what the serving
    // tier did before the native kernel existed.
    let shadow_net = match &family.variants[int8_idx].model {
        VariantModel::Quantized(q) => q.to_network(),
        other => panic!("int8 variant must be native-quantized, got {other:?}"),
    };
    let mut shadow_model = VariantModel::Single(shadow_net);
    let native_agree = {
        let mut native = family.variants[int8_idx].model.clone();
        let a = native.predict(&eval.x);
        let b = shadow_model.predict(&eval.x);
        a.iter().zip(&b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
    };

    let mut svc_reductions: Vec<f64> = Vec::new();
    let mut bytes_shrink = true;
    for &b in &BATCHES {
        let native_cost = *family.variants[int8_idx].cost_at(b);
        let shadow_cost = cost_at_batch(&mut shadow_model, &eval.x, b);
        let native_s = device.service_time(&native_cost);
        let shadow_s = device.service_time(&shadow_cost);
        let reduction = shadow_s / native_s;
        svc_reductions.push(reduction);
        bytes_shrink &= native_cost.bytes_read < shadow_cost.bytes_read;
        table.row(&[
            "int8 svc".into(),
            format!("batch {b}"),
            "-".into(),
            format!("{:.2}us", shadow_s * 1e6),
            format!("{:.2}us", native_s * 1e6),
            "-".into(),
            "-".into(),
            format!("x{reduction:.2}"),
        ]);
        records.push(fields! {
            "cell" => "int8-service",
            "batch" => b,
            "native_flops" => native_cost.flops,
            "native_bytes_read" => native_cost.bytes_read,
            "shadow_flops" => shadow_cost.flops,
            "shadow_bytes_read" => shadow_cost.bytes_read,
            "native_svc_s" => native_s,
            "shadow_svc_s" => shadow_s,
            "svc_reduction" => reduction,
        });
    }

    // Head-to-head under load: swap the int8 slot between native and
    // shadow and serve the identical open-loop trace. The rate is pinned
    // just past the shadow's full-batch capacity, so only a cheaper
    // per-batch cost can hold the tail inside the SLO.
    let shadow_costs: Vec<OpCost> =
        (1..=32).map(|b| cost_at_batch(&mut shadow_model, &eval.x, b)).collect();
    let shadow_cap = 32.0 / device.service_time(&shadow_costs[31]);
    let rate = 1.2 * shadow_cap;
    let native_report = serve_cell(&mut family, &eval, rate, "int8", &device);
    let mut shadow_family = family.clone();
    shadow_family.variants[int8_idx].model = shadow_model;
    shadow_family.variants[int8_idx].batch_costs = shadow_costs;
    shadow_family.variants[int8_idx].quantized = None;
    let shadow_report = serve_cell(&mut shadow_family, &eval, rate, "int8", &device);
    for (mode, r) in [("native", &native_report), ("shadow", &shadow_report)] {
        table.row(&[
            "int8 serve".into(),
            format!("{mode} @ {rate:.0} rps"),
            "-".into(),
            format!("p99 {:.1}us", r.p99_s * 1e6),
            format!("thr {:.0}", r.throughput_rps),
            "-".into(),
            "-".into(),
            f3(r.accuracy),
        ]);
        records.push(fields! {
            "cell" => "int8-serve",
            "mode" => mode,
            "rate_rps" => rate,
            "p99_s" => r.p99_s,
            "throughput_rps" => r.throughput_rps,
            "accuracy" => r.accuracy,
            "mean_batch" => r.mean_batch,
        });
    }

    let f32_pinned = pinned_cells == cells && parity_cells == cells && reduce_pinned;
    let drift_small = worst_drift < 1e-2;
    let int8_wins = bytes_shrink
        && svc_reductions.iter().all(|&r| r > 1.0)
        && native_report.p99_s < shadow_report.p99_s
        && native_report.throughput_rps > shadow_report.throughput_rps
        && native_agree >= 0.9;

    records.push(fields! {
        "f32_cells" => cells,
        "f32_pinned_cells" => pinned_cells,
        "f32_parity_cells" => parity_cells,
        "reduce_pinned" => reduce_pinned,
        "scalar_matches_tensor" => scalar_matches_tensor,
        "worst_f32_drift" => worst_drift,
        "int8_bytes_shrink" => bytes_shrink,
        "svc_reduction_b1" => svc_reductions[0],
        "svc_reduction_b8" => svc_reductions[1],
        "svc_reduction_b32" => svc_reductions[2],
        "native_agreement" => native_agree,
        "slo_s" => SLO_S,
        "native_p99_s" => native_report.p99_s,
        "shadow_p99_s" => shadow_report.p99_s,
        "native_throughput_rps" => native_report.throughput_rps,
        "shadow_throughput_rps" => shadow_report.throughput_rps,
        // Hardware-dependent wall clock rides along as a string, invisible
        // to the numeric baseline gate.
        "wall_speedup_unrolled_large_4t" => wall_speedup_large.clone(),
    });

    let ok = f32_pinned && drift_small && int8_wins;
    ExperimentResult {
        id: "e31".into(),
        title: "reduced-precision kernels: unrolled f32 FMA + native int8 GEMM".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: {cells}/{cells} f32 sweep cells are bitwise-pinned across \
                 threads and tiles with exact cost parity (worst fused-rounding drift \
                 {worst_drift:.1e}), the lane tree-reduce kernels pin too, and the native int8 \
                 engine serves {:.2}x cheaper per request at batch 1 ({:.2}x per full batch) \
                 than its dequantize-then-f32 shadow — past the shadow's capacity it answers \
                 with p99 {:.1}us against the shadow's {:.1}us at higher throughput",
                svc_reductions[0],
                svc_reductions[2],
                native_report.p99_s * 1e6,
                shadow_report.p99_s * 1e6,
            )
        } else {
            format!(
                "PARTIAL: pinned {pinned_cells}/{cells} parity {parity_cells}/{cells} \
                 reduce={reduce_pinned} drift={worst_drift:.1e} bytes_shrink={bytes_shrink} \
                 svc_reductions={svc_reductions:?} native_p99={:.2e} shadow_p99={:.2e} \
                 agree={native_agree:.3}",
                native_report.p99_s, shadow_report.p99_s,
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use dl_prof::{Baseline, Tolerance};

    #[test]
    fn e31_matches_claim_and_gates_deterministically() {
        let a = super::run();
        assert!(a.verdict.contains("matches the claim"), "verdict: {}", a.verdict);
        let b = super::run();
        assert_eq!(a.verdict, b.verdict, "verdict must not depend on wall clock");
        let ba = Baseline::from_records("e31", &a.title, &a.verdict, &a.records);
        let bb = Baseline::from_records("e31", &b.title, &b.verdict, &b.records);
        assert!(
            ba.diff(&bb, Tolerance::default()).is_empty(),
            "numeric records drifted between identical runs"
        );
    }

    #[test]
    fn e31_int8_native_is_cheaper_at_every_batch_size() {
        let r = super::run();
        let summary = r.records.last().unwrap();
        for key in ["svc_reduction_b1", "svc_reduction_b8", "svc_reduction_b32"] {
            let red = crate::table::field_f64(summary, key).unwrap();
            assert!(red > 1.0, "{key} = {red}: native int8 must beat the f32 shadow");
        }
        let native = crate::table::field_f64(summary, "native_p99_s").unwrap();
        let shadow = crate::table::field_f64(summary, "shadow_p99_s").unwrap();
        assert!(
            native < shadow,
            "native int8 p99 {native} must beat the shadow's {shadow} past its capacity"
        );
    }
}
