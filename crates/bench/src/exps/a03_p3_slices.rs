//! A3 (ablation) — slice granularity in priority-based propagation.
//!
//! Design choice under test: `dl-distributed::priority` preempts transfers
//! at slice boundaries. One slice per gradient degenerates to
//! non-preemptive priority (barely better than FIFO); very fine slices
//! approach ideal preemption. This sweep measures where the returns
//! flatten.
//!
//! The module's slice count is a compile-time constant (8); the ablation
//! reimplements the same schedule locally with a variable count so the
//! shipped code stays simple.

use crate::table::{ExperimentResult, Table};
use dl_distributed::{Link, LayerComm};
use dl_obs::fields;

/// A local re-implementation of the priority schedule with configurable
/// slice count (mirrors `dl_distributed::priority`, kept in sync by the
/// cross-check against the shipped 8-slice version in the unit test).
fn priority_with_slices(layers: &[LayerComm], link: &Link, slices: usize) -> f64 {
    let n = layers.len();
    let mut avail = vec![0.0f64; n];
    let mut t = 0.0;
    for i in (0..n).rev() {
        t += layers[i].backward_time;
        avail[i] = t;
    }
    struct Job {
        layer: usize,
        ready: f64,
        duration: f64,
    }
    let mut jobs: Vec<Job> = Vec::new();
    for (i, l) in layers.iter().enumerate() {
        let per_slice =
            l.grad_bytes as f64 / slices as f64 / link.bandwidth + link.latency / slices as f64;
        for _ in 0..slices {
            jobs.push(Job {
                layer: i,
                ready: avail[i],
                duration: per_slice,
            });
        }
    }
    let mut done = vec![0.0f64; n];
    let mut slices_left = vec![slices; n];
    let mut remaining: Vec<usize> = (0..jobs.len()).collect();
    let mut channel_free = 0.0f64;
    while !remaining.is_empty() {
        let now = channel_free;
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, &j)| jobs[j].ready <= now)
            .map(|(pos, _)| pos)
            .collect();
        let pick = if ready.is_empty() {
            remaining
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    jobs[a]
                        .ready
                        .total_cmp(&jobs[b].ready)
                        .then(jobs[a].layer.cmp(&jobs[b].layer))
                })
                .map(|(pos, _)| pos)
                .expect("non-empty")
        } else {
            ready
                .into_iter()
                .min_by_key(|&pos| jobs[remaining[pos]].layer)
                .expect("non-empty")
        };
        let job_idx = remaining.swap_remove(pick);
        let job = &jobs[job_idx];
        let start = channel_free.max(job.ready);
        channel_free = start + job.duration;
        slices_left[job.layer] -= 1;
        if slices_left[job.layer] == 0 {
            done[job.layer] = channel_free;
        }
    }
    let mut fwd_t = avail[0];
    for i in 0..n {
        fwd_t = fwd_t.max(done[i]) + layers[i].forward_time;
    }
    fwd_t
}

fn cnn_profile() -> Vec<LayerComm> {
    [2u64, 6, 10, 20, 40]
        .iter()
        .map(|&mb| LayerComm {
            backward_time: 0.010,
            forward_time: 0.010,
            grad_bytes: mb * 1_000_000,
        })
        .collect()
}

/// Runs the ablation.
pub fn run() -> ExperimentResult {
    use dl_distributed::{schedule_backward_comm, SchedulePolicy};
    let link = Link::ethernet();
    let layers = cnn_profile();
    let mut table = Table::new(&["schedule", "iteration seconds", "vs FIFO"]);
    let mut records = Vec::new();
    let fifo = schedule_backward_comm(&layers, &link, SchedulePolicy::Fifo).iteration_seconds;
    table.row(&["fifo".into(), format!("{fifo:.5}"), "+0.0%".into()]);
    records.push(fields! {"schedule" => "fifo", "seconds" => fifo});
    let base = priority_with_slices(&layers, &link, 1);
    let mut s8 = base;
    let mut s64 = base;
    for slices in [1usize, 2, 4, 8, 16, 64] {
        let secs = priority_with_slices(&layers, &link, slices);
        table.row(&[
            format!("priority/{slices}"),
            format!("{secs:.5}"),
            format!("{:+.1}%", (secs / fifo - 1.0) * 100.0),
        ]);
        records.push(fields! {"schedule" => format!("priority-{slices}"), "seconds" => secs});
        if slices == 8 {
            s8 = secs;
        }
        if slices == 64 {
            s64 = secs;
        }
    }
    // two separable effects: message-level reordering (priority/1 vs FIFO)
    // and slice-level preemption (priority/8 vs priority/1)
    let reordering_pays = base < fifo * 0.95;
    let preemption_pays = s8 < base * 0.97;
    let returns_flatten = (s8 - s64) / s8 < 0.05;
    ExperimentResult {
        id: "a3".into(),
        title: "ablation: P3 slice granularity (vs FIFO and non-preemptive priority)".into(),
        table,
        verdict: if reordering_pays && preemption_pays && returns_flatten {
            "both halves of the design pay: priority reordering beats FIFO, slice \
             preemption adds several percent more, and returns flatten near the shipped \
             8-slice constant"
                .into()
        } else {
            format!(
                "inconclusive: reorder={reordering_pays} preempt={preemption_pays} flatten={returns_flatten}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_distributed::{schedule_backward_comm, SchedulePolicy};

    #[test]
    fn a3_runs() {
        let r = run();
        assert_eq!(r.table.rows.len(), 7); // fifo + six slice counts
    }

    /// The local reimplementation at 8 slices matches the shipped module.
    #[test]
    fn local_schedule_matches_shipped_at_8_slices() {
        let layers = cnn_profile();
        let link = Link::ethernet();
        let local = priority_with_slices(&layers, &link, 8);
        let shipped =
            schedule_backward_comm(&layers, &link, SchedulePolicy::Priority).iteration_seconds;
        assert!(
            (local - shipped).abs() < 1e-9,
            "local {local} vs shipped {shipped}"
        );
    }
}
