//! E15 — biased data yields biased models (§4.1).
//!
//! Claim: the model inherits (and the fairness metrics recover) the bias
//! injected into the training data — even though the protected attribute
//! is *not* a model input (the proxy column leaks it, the tutorial's
//! retina example).

use crate::table::{f3, ExperimentResult, Table};
use dl_data::{CensusConfig, CensusData};
use dl_fairness::FairnessReport;
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&[
        "injected bias", "data base-rate gap", "model parity gap", "eq-odds gap", "accuracy",
    ]);
    let mut records = Vec::new();
    let mut gaps = Vec::new();
    for bias in [0.0f64, 0.2, 0.4, 0.6, 0.8] {
        let census = CensusData::generate(CensusConfig {
            n: 3000,
            bias,
            seed: 110,
            ..CensusConfig::default()
        });
        let data = census.to_dataset();
        let mut net = Network::mlp(&[6, 16, 2], &mut init::rng(111));
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let preds = net.predict(&data.x);
        let report = FairnessReport::new(&preds, &census.labels, &census.groups);
        let data_gap = census.base_rate(0) - census.base_rate(1);
        table.row(&[
            f3(bias),
            f3(data_gap),
            f3(report.demographic_parity_diff()),
            f3(report.equalized_odds_gap()),
            f3(report.accuracy()),
        ]);
        records.push(fields! {
            "bias" => bias, "data_gap" => data_gap,
            "parity_gap" => report.demographic_parity_diff(),
            "eq_odds_gap" => report.equalized_odds_gap(),
            "accuracy" => report.accuracy(),
        });
        gaps.push(report.demographic_parity_diff());
    }
    let tracks = gaps.windows(2).filter(|w| w[1] > w[0] - 0.03).count() >= 3
        && gaps.last().copied().unwrap_or(0.0) > gaps[0] + 0.15;
    ExperimentResult {
        id: "e15".into(),
        title: "bias knob sweep: injected data bias vs measured model bias".into(),
        table,
        verdict: if tracks {
            "matches the claim: the model's demographic-parity gap tracks the injected bias \
             even though group membership is never a feature"
                .into()
        } else {
            "PARTIAL: the measured gap did not track the injected bias cleanly".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e15_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 5);
    }
}
