//! E16 — the fairness-accuracy frontier of mitigation techniques (§4.1).
//!
//! Claim: interventions at the data, algorithm and post-hoc levels all
//! reduce the parity gap, trading some accuracy (measured against the
//! biased labels).

use crate::table::{f3, ExperimentResult, Table};
use dl_data::{CensusConfig, CensusData};
use dl_fairness::{
    adversarial_debias, mitigate::train_reweighed, threshold_adjust, AdversarialConfig,
    FairnessReport,
};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let census = CensusData::generate(CensusConfig {
        n: 3000,
        bias: 0.6,
        seed: 120,
        ..CensusConfig::default()
    });
    let data = census.to_dataset();
    // biased baseline
    let mut base_net = Network::mlp(&[6, 16, 2], &mut init::rng(121));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut base_net, &data);
    let base_preds = base_net.predict(&data.x);
    let base = FairnessReport::new(&base_preds, &census.labels, &census.groups);
    let mut table = Table::new(&["intervention", "parity gap", "eq-odds gap", "accuracy"]);
    let mut records = Vec::new();
    let mut add = |name: &str, r: &FairnessReport| {
        table.row(&[
            name.into(),
            f3(r.demographic_parity_diff()),
            f3(r.equalized_odds_gap()),
            f3(r.accuracy()),
        ]);
        records.push(fields! {
            "intervention" => name,
            "parity_gap" => r.demographic_parity_diff(),
            "eq_odds_gap" => r.equalized_odds_gap(),
            "accuracy" => r.accuracy(),
        });
    };
    add("none (baseline)", &base);
    let rew = train_reweighed(&data, &census.groups, 15, 122);
    add("reweighing (pre)", &rew.report);
    let adv = adversarial_debias(
        &data,
        &census.groups,
        &AdversarialConfig {
            lambda: 2.0,
            epochs: 20,
            seed: 123,
            ..AdversarialConfig::default()
        },
    );
    add("adversarial (in)", &adv.report);
    let scores = base_net.predict_proba(&census.features);
    let thr = threshold_adjust(&scores, &census.labels, &census.groups);
    add("thresholds (post)", &thr.report);
    let base_gap = base.demographic_parity_diff();
    let all_reduce = [&rew.report, &adv.report, &thr.report]
        .iter()
        .all(|r| r.demographic_parity_diff() < base_gap);
    let acc_held = [&rew.report, &adv.report, &thr.report]
        .iter()
        .all(|r| r.accuracy() > base.accuracy() - 0.2);
    ExperimentResult {
        id: "e16".into(),
        title: "bias mitigation at three intervention points (bias=0.6 census)".into(),
        table,
        verdict: if all_reduce && acc_held {
            "matches the claim: every intervention level shrinks the parity gap at a \
             bounded accuracy cost; post-processing closes it most directly"
                .into()
        } else {
            format!("PARTIAL: all_reduce={all_reduce} accuracy_held={acc_held}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 4);
    }
}
