//! E30 — weight store: multi-model serving under a memory budget.
//!
//! Claim: when a serving device hosts more model families than fit in
//! memory, residency — not compute — sets the tail. Three pillars, all
//! measured on the deterministic fleet tier: (1) a warm-started fleet
//! whose budget fits every family never touches the cold path, and its
//! latency population is the steady-state baseline; (2) shrinking the
//! budget below the working set flips residency from stable (one
//! first-touch load per family, zero evictions) to thrashing (LRU
//! evicts the next family the cycle needs), and on paired traffic at a
//! one-family budget the cold requests — identified by joining the
//! timeline's `serve.complete` instants against the fleet's
//! cold-request ids — pay a measured p99 cliff over the warm cohort of
//! the *same run*; (3) the cliff is priced by the
//! artifact bytes flowing through the same `DeviceModel` memory system
//! that prices batch service, so eviction accounting (loads, evicted
//! bytes) reconciles exactly with the store's counters.

use std::collections::HashSet;
use std::sync::OnceLock;

use crate::table::{field_f64, ExperimentResult, Table};
use dl_obs::{fields, EventKind, Fields, TimelineRecorder};
use dl_serve::{
    build_family, open_loop, percentile, save_family, serve_fleet, AdmissionPolicy, BatchPolicy,
    DeviceModel, EvictionPolicy, FamilyConfig, FleetConfig, FleetReport, LoadConfig, ModelRequest,
    RouterPolicy, ServeConfig, VariantRegistry,
};

/// Families the fleet hosts (the working set).
const N_FAMILIES: usize = 3;
/// Requests per cell.
const CELL_REQUESTS: usize = 600;
/// Offered rate, requests per simulated second — gapped well below
/// saturation so residency, not queueing, dominates the tail.
const RATE_RPS: f64 = 40_000.0;

/// Families are expensive to train and used strictly immutably by the
/// fleet (it serves from decoded artifact copies), so one process-wide
/// build serves every `run()` — keeping the byte-determinism test from
/// paying the training bill twice.
fn build_families() -> &'static (Vec<VariantRegistry>, dl_nn::Dataset) {
    static FAMILIES: OnceLock<(Vec<VariantRegistry>, dl_nn::Dataset)> = OnceLock::new();
    FAMILIES.get_or_init(|| {
        let eval = dl_data::blobs(200, 5, 16, 2.4, 1.1, 301);
        let families = (0..N_FAMILIES)
            .map(|m| {
                let seed = 310 + 10 * m as u64;
                let data = dl_data::blobs(300, 5, 16, 2.4, 1.1, seed);
                build_family(
                    &data,
                    &eval,
                    &FamilyConfig {
                        teacher_dims: vec![16, 64, 64, 5],
                        student_hidden: vec![16],
                        prune_sparsity: 0.8,
                        morph_budget: 1200,
                        ensemble_members: 2,
                        max_batch: 32,
                        epochs: 10,
                        seed,
                    },
                )
            })
            .collect();
        (families, eval)
    })
}

/// Model-tagged traffic cycling through `n_models` families — the
/// sequential access pattern that defeats LRU the moment the working set
/// outgrows the budget.
fn cycling_load(n_models: usize, seed: u64, n_samples: usize) -> Vec<ModelRequest> {
    open_loop(
        &LoadConfig {
            rate_rps: RATE_RPS,
            requests: CELL_REQUESTS,
            seed,
        },
        n_samples,
    )
    .into_iter()
    .map(|req| ModelRequest {
        req,
        model: (req.id % n_models as u64) as usize,
    })
    .collect()
}

/// Paired traffic over two families (`0,0,1,1,0,0,...`): at a one-family
/// budget the first request of each pair faults and the second lands
/// warm, so a single run carries both cohorts in equal measure — the
/// population the cold-start cliff is measured on.
fn paired_load(seed: u64, n_samples: usize) -> Vec<ModelRequest> {
    open_loop(
        &LoadConfig {
            rate_rps: RATE_RPS,
            requests: CELL_REQUESTS,
            seed,
        },
        n_samples,
    )
    .into_iter()
    .map(|req| ModelRequest {
        req,
        model: ((req.id / 2) % 2) as usize,
    })
    .collect()
}

struct Cell {
    report: FleetReport,
    warm_p99_s: f64,
    cold_p99_s: f64,
    warm_n: usize,
    cold_n: usize,
    /// `store.load` instants observed on the timeline.
    load_events: usize,
    /// Sum of those instants' `bytes` fields.
    load_event_bytes: u64,
}

/// Runs one fleet cell and splits its completion latencies into warm and
/// cold cohorts by joining the timeline against the cold-request ids.
fn run_cell(
    families: &[VariantRegistry],
    eval: &dl_nn::Dataset,
    requests: &[ModelRequest],
    budget: u64,
    eviction: EvictionPolicy,
    warm_start: bool,
) -> Cell {
    let rec = TimelineRecorder::new();
    let report = serve_fleet(
        families,
        eval,
        requests,
        &FleetConfig {
            serve: ServeConfig {
                // batch=1 keeps every artifact load on the critical path
                // instead of hiding under a flush-delay window.
                batch: BatchPolicy::no_batching(),
                admission: AdmissionPolicy::AcceptAll,
                primary: "fp32-base".into(),
                device: DeviceModel::nominal(),
            },
            replicas: 1,
            store_budget_bytes: budget,
            eviction,
            router: RouterPolicy::RoundRobin,
            warm_start,
        },
        &rec,
    );
    let cold: HashSet<u64> = report.cold_request_ids.iter().copied().collect();
    let mut warm_lat = Vec::new();
    let mut cold_lat = Vec::new();
    let mut load_events = 0usize;
    let mut load_event_bytes = 0u64;
    for e in rec.events() {
        if e.kind != EventKind::Instant {
            continue;
        }
        if e.name == "store.load" {
            load_events += 1;
            load_event_bytes +=
                field_f64(&e.fields, "bytes").expect("loads carry the artifact size") as u64;
            continue;
        }
        if e.name != "serve.complete" {
            continue;
        }
        let id = field_f64(&e.fields, "request").expect("completions carry the request id") as u64;
        let lat = field_f64(&e.fields, "latency_s").expect("completions carry latency");
        if cold.contains(&id) {
            cold_lat.push(lat);
        } else {
            warm_lat.push(lat);
        }
    }
    Cell {
        warm_p99_s: percentile(&warm_lat, 0.99),
        cold_p99_s: percentile(&cold_lat, 0.99),
        warm_n: warm_lat.len(),
        cold_n: cold_lat.len(),
        load_events,
        load_event_bytes,
        report,
    }
}

fn cell_record(label: &str, families: usize, budget: u64, c: &Cell) -> Fields {
    fields! {
        "cell" => label,
        "families" => families,
        "budget_bytes" => budget,
        "served" => c.report.report.served,
        "p99_s" => c.report.report.p99_s,
        "warm_p99_s" => c.warm_p99_s,
        "cold_p99_s" => c.cold_p99_s,
        "warm_n" => c.warm_n,
        "cold_n" => c.cold_n,
        "cold_loads" => c.report.cold_loads,
        "warm_hits" => c.report.warm_hits,
        "evictions" => c.report.evictions,
        "bytes_loaded" => c.report.bytes_loaded,
        "accuracy" => c.report.report.accuracy,
    }
}

fn cell_row(table: &mut Table, label: &str, families: usize, budget: u64, c: &Cell) {
    table.row(&[
        label.into(),
        families.to_string(),
        crate::table::bytes(budget),
        c.report.cold_loads.to_string(),
        c.report.evictions.to_string(),
        format!("{:.1}", c.report.report.p99_s * 1e6),
        format!("{:.1}", c.warm_p99_s * 1e6),
        if c.cold_n == 0 {
            "-".into()
        } else {
            format!("{:.1}", c.cold_p99_s * 1e6)
        },
    ]);
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let (families, eval) = build_families();
    let sizes: Vec<u64> = families
        .iter()
        .map(|f| save_family(f).len() as u64)
        .collect();
    let total: u64 = sizes.iter().sum();
    let min = *sizes.iter().min().expect("non-empty");
    let max = *sizes.iter().max().expect("non-empty");
    // Three budget rungs: everything resident, any two resident (the
    // cycling working set no longer fits), exactly one resident.
    let fits_all = total + min / 2;
    let fits_two = total - min / 2;
    let fits_one = max + min / 2;

    let mut table = Table::new(&[
        "cell", "families", "budget", "cold loads", "evictions", "p99 us", "warm p99 us",
        "cold p99 us",
    ]);
    let mut records: Vec<Fields> = Vec::new();
    for (m, s) in sizes.iter().enumerate() {
        records.push(fields! { "family" => m, "artifact_bytes" => *s });
    }

    // --- pillar 1: warm-started steady state ------------------------------
    let n_samples = eval.x.dims()[0];
    let full_load = cycling_load(N_FAMILIES, 330, n_samples);
    let warm = run_cell(families, eval, &full_load, fits_all, EvictionPolicy::Lru, true);
    cell_row(&mut table, "warm-start", N_FAMILIES, fits_all, &warm);
    records.push(cell_record("warm-start", N_FAMILIES, fits_all, &warm));
    let warm_clean = warm.report.cold_loads == 0
        && warm.report.evictions == 0
        && warm.cold_n == 0
        && warm.warm_n == CELL_REQUESTS;

    // --- pillar 2: budget x family-count sweep ----------------------------
    let mut cells: Vec<(String, usize, u64, Cell)> = Vec::new();
    for n_models in 1..=N_FAMILIES {
        let load = cycling_load(n_models, 330, n_samples);
        let fams = &families[..n_models];
        for (bname, budget) in [
            ("fits-one", fits_one),
            ("fits-two", fits_two),
            ("fits-all", fits_all),
        ] {
            let c = run_cell(fams, eval, &load, budget, EvictionPolicy::Lru, false);
            let label = format!("{n_models}fam/{bname}");
            cell_row(&mut table, &label, n_models, budget, &c);
            records.push(cell_record(&label, n_models, budget, &c));
            cells.push((bname.into(), n_models, budget, c));
        }
    }
    let get = |bname: &str, n: usize| -> &Cell {
        &cells
            .iter()
            .find(|(b, m, _, _)| b == bname && *m == n)
            .expect("cell ran")
            .3
    };

    // Residency flips at the budget knee: with every family fitting, each
    // is loaded exactly once and nothing is ever evicted; one rung down
    // the cycling pattern evicts on (nearly) every switch.
    let stable = get("fits-all", N_FAMILIES);
    let thrash = get("fits-two", N_FAMILIES);
    let residency_flips = stable.report.cold_loads == N_FAMILIES
        && stable.report.evictions == 0
        && thrash.report.evictions > CELL_REQUESTS / 2
        && thrash.report.cold_loads > CELL_REQUESTS / 2;
    // The same budget that thrashes three families holds two comfortably.
    let working_set_matters =
        get("fits-two", 2).report.evictions == 0 && get("fits-two", 2).report.cold_loads == 2;

    // Cold requests pay the measured artifact-read cliff inside one run.
    // The pure cycle is a 100% miss pattern (no warm cohort), so the
    // cliff is measured on paired traffic at a one-family budget: every
    // pair's first request faults, its second lands warm, and the two
    // cohorts split the same run roughly in half.
    let pair = run_cell(
        &families[..2],
        eval,
        &paired_load(330, n_samples),
        fits_one,
        EvictionPolicy::Lru,
        false,
    );
    cell_row(&mut table, "2fam/paired/fits-one", 2, fits_one, &pair);
    records.push(cell_record("paired", 2, fits_one, &pair));
    let cliff = if pair.warm_p99_s > 0.0 {
        pair.cold_p99_s / pair.warm_p99_s
    } else {
        0.0
    };
    let cold_cliff = pair.cold_n > 50 && pair.warm_n > 50 && cliff >= 1.5;

    // --- pillar 3: accounting reconciles ----------------------------------
    // The store's counters must reconcile exactly with the timeline:
    // one `store.load` instant per cold load, their `bytes` fields
    // summing to the byte counter; cells that load each family exactly
    // once read exactly the families' total artifact bytes.
    let mut accounted = true;
    for c in cells.iter().map(|(_, _, _, c)| c).chain([&pair]) {
        if c.report.cold_loads == N_FAMILIES && c.report.evictions == 0 {
            accounted &= c.report.bytes_loaded == total;
        }
        accounted &= c.report.report.served == CELL_REQUESTS;
        accounted &= c.load_events == c.report.cold_loads;
        accounted &= c.load_event_bytes == c.report.bytes_loaded;
    }

    // Cost-aware eviction on the same thrashing cell (informational; with
    // a uniform cycle no policy can beat LRU's miss rate, the point is
    // that the scorer runs and stays deterministic).
    let aware = run_cell(
        families,
        eval,
        &full_load,
        fits_two,
        EvictionPolicy::CostAware,
        false,
    );
    cell_row(&mut table, "3fam/fits-two/cost-aware", N_FAMILIES, fits_two, &aware);
    records.push(cell_record("cost-aware", N_FAMILIES, fits_two, &aware));

    records.push(fields! {
        "total_artifact_bytes" => total,
        "fits_all_bytes" => fits_all,
        "fits_two_bytes" => fits_two,
        "fits_one_bytes" => fits_one,
        "warm_p99_s" => warm.report.report.p99_s,
        "stable_cold_loads" => stable.report.cold_loads,
        "stable_evictions" => stable.report.evictions,
        "thrash_cold_loads" => thrash.report.cold_loads,
        "thrash_evictions" => thrash.report.evictions,
        "pair_warm_p99_s" => pair.warm_p99_s,
        "pair_cold_p99_s" => pair.cold_p99_s,
        "pair_warm_n" => pair.warm_n,
        "pair_cold_n" => pair.cold_n,
        "cold_over_warm_p99" => cliff,
        "aware_evictions" => aware.report.evictions,
        "warm_clean" => warm_clean,
        "residency_flips" => residency_flips,
        "working_set_matters" => working_set_matters,
        "cold_cliff" => cold_cliff,
        "accounted" => accounted,
    });

    let ok = warm_clean && residency_flips && working_set_matters && cold_cliff && accounted;
    ExperimentResult {
        id: "e30".into(),
        title: "weight store: multi-model serving under a memory budget".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: shrinking the budget from fits-all to fits-two flips \
                 residency ({} first-touch loads / 0 evictions -> {} loads / {} evictions \
                 over {} requests), cold requests pay a {:.1}x p99 cliff ({:.1}us vs {:.1}us \
                 warm in the same paired run), and a warm-started fleet never touches the \
                 cold path",
                stable.report.cold_loads,
                thrash.report.cold_loads,
                thrash.report.evictions,
                CELL_REQUESTS,
                cliff,
                pair.cold_p99_s * 1e6,
                pair.warm_p99_s * 1e6,
            )
        } else {
            format!(
                "PARTIAL: warm_clean={warm_clean} residency_flips={residency_flips} \
                 working_set_matters={working_set_matters} cold_cliff={cold_cliff} \
                 (ratio {cliff:.2}) accounted={accounted}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e30_measures_the_cold_start_cliff() {
        let r = super::run();
        assert!(r.verdict.contains("matches the claim"), "verdict: {}", r.verdict);
        let summary = r.records.last().unwrap();
        let cliff = crate::table::field_f64(summary, "cold_over_warm_p99").unwrap();
        assert!(cliff >= 1.5, "cold/warm p99 ratio only {cliff}");
        let thrash_ev = crate::table::field_f64(summary, "thrash_evictions").unwrap();
        let stable_ev = crate::table::field_f64(summary, "stable_evictions").unwrap();
        assert!(stable_ev == 0.0 && thrash_ev > 0.0, "budget must flip residency");
    }

    #[test]
    fn e30_is_deterministic_byte_for_byte() {
        let a = super::run();
        let b = super::run();
        assert_eq!(a.to_json(), b.to_json(), "two runs must be byte-identical");
    }
}
