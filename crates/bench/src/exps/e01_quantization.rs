//! E1 — quantization precision sweep (§2.1).
//!
//! Claim: quantization trades precision for memory; accuracy degrades as
//! bit width shrinks, with the Huffman-coded codebook squeezing further
//! losslessly.

use crate::table::{bytes, f3, flops, ExperimentResult, Table};
use dl_compress::{quantize_network, QuantScheme};
use dl_nn::Trainer;
use dl_obs::fields;
use dl_tensor::acct;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let (_, test, net, _) = super::digits_setup(600, &[64, 32], 20, 1);
    let base_acc = Trainer::evaluate(&mut net.clone(), &test);
    // measured inference cost: what the kernels actually execute for one
    // pass over the test set (zeroed weights after aggressive quantization
    // genuinely skip multiplies).
    let measure_fwd = |n: &dl_nn::Network| {
        let mut m = n.clone();
        acct::measure(|| m.predict(&test.x)).1.flops
    };
    let base_fwd = measure_fwd(&net);
    let mut table = Table::new(&[
        "scheme", "accuracy", "acc drop", "bytes", "ratio", "huffman bytes", "measured fwd",
    ]);
    let mut records = Vec::new();
    let schemes = [
        QuantScheme::Affine { bits: 8 },
        QuantScheme::Affine { bits: 6 },
        QuantScheme::Affine { bits: 4 },
        QuantScheme::Affine { bits: 2 },
        QuantScheme::KMeans { k: 16 },
        QuantScheme::KMeans { k: 4 },
        QuantScheme::Binary,
    ];
    let fp32_bytes = net.param_count() * 4;
    table.row(&[
        "fp32".into(),
        f3(base_acc),
        f3(0.0),
        bytes(fp32_bytes as u64),
        "1.00".into(),
        "-".into(),
        flops(base_fwd),
    ]);
    records.push(fields! {
        "scheme" => "fp32", "accuracy" => base_acc,
        "bytes" => fp32_bytes, "inference_flops" => net.cost_profile(1).forward_flops,
        "measured_fwd_flops" => base_fwd,
    });
    let mut monotone_check: Vec<(u8, f64)> = Vec::new();
    for scheme in schemes {
        let (mut q, report) = quantize_network(&net, scheme);
        let acc = Trainer::evaluate(&mut q, &test);
        let q_fwd = measure_fwd(&q);
        table.row(&[
            report.scheme.clone(),
            f3(acc),
            f3(base_acc - acc),
            bytes(report.compressed_bytes as u64),
            format!("{:.2}", report.ratio()),
            bytes(report.huffman_bytes as u64),
            flops(q_fwd),
        ]);
        if let QuantScheme::Affine { bits } = scheme {
            monotone_check.push((bits, acc));
        }
        records.push(fields! {
            "scheme" => report.scheme, "accuracy" => acc,
            "bytes" => report.compressed_bytes,
            "huffman_bytes" => report.huffman_bytes,
            "inference_flops" => net.cost_profile(1).forward_flops,
            "measured_fwd_flops" => q_fwd,
        });
    }
    let shape_holds = monotone_check.windows(2).all(|w| w[0].1 >= w[1].1 - 0.05);
    ExperimentResult {
        id: "e1".into(),
        title: "quantization: accuracy vs memory across bit widths".into(),
        table,
        verdict: if shape_holds {
            "matches the claim: accuracy decays as bits shrink while memory drops ~bits/32".into()
        } else {
            "PARTIAL: accuracy was not monotone in bit width on this run".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_runs_and_has_expected_shape() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 8);
        // fp32 row ratio is 1.0, binary row exists
        assert!(r.table.rows.iter().any(|row| row[0] == "binary"));
        assert!(!r.records.is_empty());
    }
}
