//! E17 — t-SNE preserves local structure (§4.2).
//!
//! Claim: t-SNE embeds high-dimensional data into 2-D while keeping local
//! neighborhoods (clusters stay clusters), beating linear PCA on the
//! neighborhood-preservation score.

use crate::table::{f3, ExperimentResult, Table};
use dl_interpret::{neighborhood_preservation, pca, tsne, TsneConfig};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&["dim", "method", "neighborhood preservation (k=10)"]);
    let mut records = Vec::new();
    let mut tsne_wins = 0usize;
    let mut cases = 0usize;
    for dim in [16usize, 64, 144] {
        let (x, _) = dl_data::high_dim_clusters(150, 5, dim, 130);
        let emb = tsne(
            &x,
            &TsneConfig {
                perplexity: 12.0,
                iterations: 250,
                ..TsneConfig::default()
            },
        );
        let p = pca(&x, 2);
        let mut rng = init::rng(131);
        let rand = init::normal([150, 2], 0.0, 1.0, &mut rng);
        let np_t = neighborhood_preservation(&x, &emb, 10);
        let np_p = neighborhood_preservation(&x, &p, 10);
        let np_r = neighborhood_preservation(&x, &rand, 10);
        table.row(&[format!("{dim}"), "t-sne".into(), f3(np_t)]);
        table.row(&[format!("{dim}"), "pca".into(), f3(np_p)]);
        table.row(&[format!("{dim}"), "random".into(), f3(np_r)]);
        records.push(fields! {
            "dim" => dim, "tsne" => np_t, "pca" => np_p, "random" => np_r,
        });
        cases += 1;
        if np_t > np_p && np_t > np_r * 2.0 {
            tsne_wins += 1;
        }
    }
    ExperimentResult {
        id: "e17".into(),
        title: "t-SNE vs PCA vs random: neighborhood preservation in 2-D".into(),
        table,
        verdict: if tsne_wins == cases {
            "matches the claim: t-SNE keeps local neighborhoods best at every input dimension"
                .into()
        } else {
            format!("PARTIAL: t-SNE won {tsne_wins}/{cases} dimensions")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e17_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 9);
    }
}
