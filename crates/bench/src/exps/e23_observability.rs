//! E23 — observability: tracing overhead and the fault-recovery timeline.
//!
//! Claim: the `dl-obs` layer makes every run inspectable — the E22
//! fault-tolerance scenario renders as a crash/rollback/rejoin timeline —
//! at a modeled cost below 5% of the simulated run, and without
//! perturbing the trajectory by a single bit.
//!
//! Overhead is *modeled*, not wall-clocked: each recorded event is
//! charged a generous simulated cost ([`PER_EVENT_SECONDS`], roughly an
//! in-memory ring-buffer push plus timestamping on the coordinator) and
//! compared against the run's simulated seconds. That keeps the
//! experiment deterministic on any machine, in the same spirit as the
//! cluster cost model itself.

use super::e22_fault_tolerance;
use crate::table::{ExperimentResult, Table};
use dl_core::{Category, Metrics, Registry, Technique};
use dl_distributed::{
    resilient_local_sgd, resilient_local_sgd_traced, Cluster, Device, Link, LocalSgdConfig,
    ResilientConfig, StorageProfile,
};
use dl_obs::{fields, EventKind, FieldValue, FlightRecorder, Recorder, TimelineRecorder, ToFields};

/// Modeled simulated cost per recorded event: 0.5 µs, an upper bound for
/// pushing a preallocated record and reading an atomic clock.
pub const PER_EVENT_SECONDS: f64 = 5e-7;

/// Flight-recorder capacity used in the wraparound demonstration.
const FLIGHT_CAPACITY: usize = 64;

/// The E22 headline configuration (Local SGD sync 8, interior-optimal
/// checkpoint interval 32, blob storage) whose trace E23 renders.
fn headline_config() -> ResilientConfig {
    let (_, sync_period, interval) = e22_fault_tolerance::TRACED_CONFIG;
    ResilientConfig {
        base: LocalSgdConfig {
            sync_period,
            steps: 256,
            batch_size: 16,
            lr: 0.05,
            seed: 20,
        },
        checkpoint_interval: interval,
        storage: StorageProfile::blob_store(),
        detection_timeout: 5e-3,
        ..ResilientConfig::default()
    }
}

fn field<'a>(fields: &'a dl_obs::Fields, key: &str) -> Option<&'a FieldValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Renders one fault-recovery event as a `detail` cell.
fn detail(event: &dl_obs::Event) -> String {
    let get = |k: &str| {
        field(&event.fields, k)
            .map(|v| match v {
                FieldValue::Str(s) => s.clone(),
                FieldValue::U64(n) => n.to_string(),
                FieldValue::I64(n) => n.to_string(),
                FieldValue::F64(x) => format!("{x:.4}"),
                FieldValue::Bool(b) => b.to_string(),
            })
            .unwrap_or_default()
    };
    match event.name.as_str() {
        "crash" => format!("worker {} at step {}", get("worker"), get("step")),
        "rollback" => format!(
            "step {} -> {} ({} samples lost)",
            get("from_step"),
            get("to_step"),
            get("lost_samples")
        ),
        "rejoin" => format!("worker {} from {}", get("worker"), get("source")),
        "checkpoint_write" => format!("at step {}", get("step")),
        "allreduce_retry" => format!("attempt {}", get("attempt")),
        _ => String::new(),
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 6);
    let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 7);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let dims = [8, 32, 3];
    let plan = e22_fault_tolerance::faulty_plan();
    let config = headline_config();

    // The same scenario three ways: untraced (the reference trajectory),
    // fully traced, and through a bounded flight recorder.
    let (plain_net, plain) = resilient_local_sgd(&cluster, &data, &eval, &dims, &config, &plan);
    let timeline = TimelineRecorder::new();
    let (traced_net, traced) =
        resilient_local_sgd_traced(&cluster, &data, &eval, &dims, &config, &plan, &timeline);
    let flight = FlightRecorder::new(FLIGHT_CAPACITY);
    let (_, _) = resilient_local_sgd_traced(&cluster, &data, &eval, &dims, &config, &plan, &flight);

    // Acceptance checks.
    let parity = plain_net.flat_params() == traced_net.flat_params()
        && plain.simulated_seconds == traced.simulated_seconds
        && plain == traced;
    let events = timeline.events();
    let overhead_seconds = events.len() as f64 * PER_EVENT_SECONDS;
    let overhead_pct = 100.0 * overhead_seconds / traced.simulated_seconds;
    let clock_mirrors = (timeline.clock().now() - traced.simulated_seconds).abs() < 1e-9;

    // The fault-recovery timeline: every membership/recovery event plus
    // checkpoint writes, in simulated-time order.
    let mut table = Table::new(&["t (s)", "track", "event", "detail"]);
    let mut timeline_rows = 0usize;
    for e in &events {
        let interesting = matches!(
            e.name.as_str(),
            "crash" | "rollback" | "rejoin" | "abort" | "allreduce_retry"
        ) && e.kind == EventKind::Instant
            || (e.name == "checkpoint_write" && e.kind == EventKind::SpanStart);
        if !interesting {
            continue;
        }
        timeline_rows += 1;
        let track = if e.track == 0 {
            "coord".to_string()
        } else {
            format!("w{}", e.track - 1)
        };
        table.row(&[
            format!("{:.4}", e.ts_micros as f64 / 1e6),
            track,
            e.name.clone(),
            detail(e),
        ]);
    }
    // Summary rows after the timeline.
    let dumped = flight.dump().len();
    for (name, value) in [
        ("trace events", events.len().to_string()),
        (
            "modeled overhead",
            format!("{overhead_pct:.4}% of {:.4} sim s", traced.simulated_seconds),
        ),
        (
            "trajectory parity",
            if parity { "bit-identical" } else { "DIVERGED" }.to_string(),
        ),
        (
            "flight recorder",
            format!(
                "kept {dumped}/{} events, dropped {}",
                events.len(),
                flight.dropped()
            ),
        ),
    ] {
        table.row(&["-".into(), "-".into(), name.into(), value]);
    }

    // The observability layer is itself a technique in the tradeoff
    // space: it spends (simulated) time to make every other tradeoff
    // measurable.
    let mut registry = Registry::new();
    registry
        .add(Technique {
            name: "full-timeline-trace".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: traced.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: (events.len() * std::mem::size_of::<dl_obs::Event>()) as u64,
                energy_kwh: 0.0,
            },
            baseline: Some("untraced".into()),
        })
        .expect("unique");

    let mut records = vec![traced.to_fields()];
    records.push(fields! {
        "events" => events.len(),
        "per_event_seconds" => PER_EVENT_SECONDS,
        "overhead_pct" => overhead_pct,
        "parity" => parity,
        "clock_mirrors" => clock_mirrors,
        "flight_capacity" => FLIGHT_CAPACITY,
        "flight_dropped" => flight.dropped(),
        "crashes" => traced.crashes,
        "rollbacks" => traced.rollbacks,
        "rejoins" => traced.rejoins,
        "timeline_rows" => timeline_rows,
        "observability_techniques" => registry.by_category(Category::Observability).len(),
    });

    let ok = parity && overhead_pct < 5.0 && clock_mirrors && traced.crashes > 0;
    ExperimentResult {
        id: "e23".into(),
        title: "observability: fault-recovery timeline and tracing overhead".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: the E22 scenario's {} crashes, {} rollbacks and {} \
                 rejoins render as a timeline, tracing costs a modeled {overhead_pct:.4}% \
                 (<5%) of the run, and the traced trajectory is bit-identical",
                traced.crashes, traced.rollbacks, traced.rejoins
            )
        } else {
            format!(
                "PARTIAL: parity={parity} overhead_pct={overhead_pct:.4} \
                 clock_mirrors={clock_mirrors} crashes={}",
                traced.crashes
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_reports_low_overhead_and_parity() {
        let r = run();
        assert!(
            r.verdict.starts_with("matches the claim"),
            "verdict: {}",
            r.verdict
        );
        // timeline rows + 4 summary rows
        assert!(r.table.rows.len() > 4);
        assert_eq!(r.records.len(), 2);
    }

    #[test]
    fn flight_capacity_forces_wraparound_on_the_headline_run() {
        let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 6);
        let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 7);
        let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
        let flight = FlightRecorder::new(FLIGHT_CAPACITY);
        let (_, _) = resilient_local_sgd_traced(
            &cluster,
            &data,
            &eval,
            &[8, 32, 3],
            &headline_config(),
            &e22_fault_tolerance::faulty_plan(),
            &flight,
        );
        assert!(flight.dropped() > 0, "the run must outgrow the ring");
        assert_eq!(flight.dump().len(), FLIGHT_CAPACITY);
    }
}
