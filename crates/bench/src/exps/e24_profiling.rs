//! E24 — profiling: critical path, lost-time attribution, measured costs.
//!
//! Claim: the dl-prof stack explains where simulated wall time goes.
//! Three checks ground it: (1) in the sync-dominated regime (averaging
//! every step) the critical path through sync rounds explains >= 95% of
//! E5's wall time, and the decomposition closes (no unattributed time);
//! (2) under E22's fault plan, lost time attributes to the workers whose
//! crashes caused it, down to "worker w contributed X% across its k
//! crashes"; (3) the kernel cost accounting agrees with E9's static
//! model exactly on dense layers, so the measured sqrt(n) remat schedule
//! reaches the same peak.

use crate::table::{f3, flops, ExperimentResult, Table};
use dl_core::{Category, Metrics, Registry, Technique};
use dl_distributed::{
    local_sgd_traced, resilient_local_sgd_traced, Cluster, Device, Link, LocalSgdConfig,
    ResilientConfig, StorageProfile,
};
use dl_memsched::sqrt_schedule;
use dl_nn::layers::{Dense, Sigmoid};
use dl_nn::{Layer, Network};
use dl_obs::{fields, TimelineRecorder, ToFields};
use dl_prof::{analyze, runs, NetworkProfile, TraceProfile};
use dl_tensor::init;

/// Sigmoid activations keep every activation strictly positive, so the
/// matmul zero-skip never fires and dense FLOPs match the model exactly.
fn sigmoid_mlp(dims: &[usize], seed: u64) -> Network {
    let mut rng = init::rng(seed);
    let mut net = Network::new(dims[0]);
    for w in dims.windows(2) {
        net = net
            .push(Layer::Dense(Dense::new(w[0], w[1], &mut rng)))
            .push(Layer::Sigmoid(Sigmoid::new()));
    }
    net
}

fn profile_row(table: &mut Table, label: &str, p: &TraceProfile) {
    table.row(&[
        label.into(),
        format!("{:.4}", p.total_seconds),
        format!("{:.4}", p.compute_seconds),
        format!("{:.4}", p.sync_seconds),
        format!("{:.4}", p.checkpoint_seconds),
        format!("{:.4}", p.lost_seconds()),
        format!("{:.4}", p.critical_path_seconds()),
        format!("{:.1}%", p.explained_fraction() * 100.0),
    ]);
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let data = dl_data::blobs(400, 3, 8, 6.0, 0.5, 6);
    let eval = dl_data::blobs(150, 3, 8, 6.0, 0.5, 7);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());

    let mut table = Table::new(&[
        "run / worker", "total s", "compute s", "sync s", "ckpt s", "lost s", "crit path s",
        "explained",
    ]);
    let mut records = Vec::new();

    // --- pillar 1: E5's sweep under the trace analyzer --------------------
    // One shared timeline; `runs` splits it back into per-period windows.
    let rec = TimelineRecorder::new();
    for period in [1usize, 16] {
        // the measurements we want are the trace events, not the report
        let _ = local_sgd_traced(
            &cluster,
            &data,
            &eval,
            &[8, 24, 3],
            &LocalSgdConfig {
                sync_period: period,
                steps: 256,
                batch_size: 16,
                lr: 0.05,
                seed: 20,
            },
            &rec,
        );
    }
    let events = rec.events();
    let windows = runs(&events, "local_sgd");
    let mut local_profiles = Vec::new();
    for (window, period) in windows.iter().zip([1usize, 16]) {
        let p = analyze(window);
        let label = format!("local sgd, sync={period}");
        profile_row(&mut table, &label, &p);
        let mut f = p.to_fields();
        f.insert(0, ("run".to_string(), label.into()));
        records.push(f);
        local_profiles.push(p);
    }
    // Averaging every step means every step sits on the coordinator's
    // serialized path: the critical path must explain almost everything.
    let sync_dominated = local_profiles
        .first()
        .map(|p| p.explained_fraction() >= 0.95)
        .unwrap_or(false);
    // At sync=16 compute gaps widen 16x between rounds, so the fraction
    // must genuinely fall — the analyzer distinguishes the regimes.
    let regimes_differ = local_profiles.len() == 2
        && local_profiles[1].explained_fraction() < local_profiles[0].explained_fraction();
    let closes = local_profiles
        .iter()
        .all(|p| p.unattributed_seconds() < 1e-9 + 0.01 * p.total_seconds);

    // --- pillar 2: E22's traced point, lost time per crashing worker -----
    let (_, sync_period, interval) = super::e22_fault_tolerance::TRACED_CONFIG;
    let frec = TimelineRecorder::new();
    let (_, report) = resilient_local_sgd_traced(
        &cluster,
        &data,
        &eval,
        &[8, 32, 3],
        &ResilientConfig {
            base: LocalSgdConfig {
                sync_period,
                steps: 256,
                batch_size: 16,
                lr: 0.05,
                seed: 20,
            },
            checkpoint_interval: interval,
            storage: StorageProfile::blob_store(),
            detection_timeout: 5e-3,
            ..ResilientConfig::default()
        },
        &super::e22_fault_tolerance::faulty_plan(),
        &frec,
    );
    let fevents = frec.events();
    let fwindows = runs(&fevents, "resilient_local_sgd");
    let fault = fwindows.first().map(|w| analyze(w)).unwrap_or_default();
    let flabel = format!("resilient, sync={sync_period} ckpt={interval}");
    profile_row(&mut table, &flabel, &fault);
    let mut f = fault.to_fields();
    f.insert(0, ("run".to_string(), flabel.into()));
    records.push(f);
    for w in &fault.workers {
        table.row(&[
            format!("  worker {}: {} crashes", w.worker, w.crashes),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.4}", w.lost_seconds()),
            "-".into(),
            format!("{:.1}% of lost", w.share * 100.0),
        ]);
        records.push(w.to_fields());
    }
    // The analyzed window and the run report describe the same simulated
    // interval; micro-tick rounding is the only slack allowed.
    let time_parity = fault.total_seconds / report.simulated_seconds.max(1e-12);
    let attribution = fault.crash_count > 0
        && fault.lost_seconds() > 0.0
        && (fault.workers.iter().map(|w| w.share).sum::<f64>() - 1.0).abs() < 1e-6
        && (0.999..1.001).contains(&time_parity);

    // --- pillar 3: measured kernel costs vs E9's static model ------------
    let mut dims = vec![64usize];
    for i in 0..12 {
        dims.push([96, 48, 64][i % 3]);
    }
    dims.push(10);
    let mut net = sigmoid_mlp(&dims, 24);
    let x = init::uniform([32, 64], 0.05, 1.0, &mut init::rng(25));
    let prof = NetworkProfile::profile(&mut net, &x);
    let dense_exact = prof
        .layers
        .iter()
        .filter(|l| l.name == "dense")
        .all(|l| l.forward.flops == l.modeled.forward_flops);
    let sq_measured = sqrt_schedule(&prof.measured_layer_costs());
    let sq_modeled = sqrt_schedule(&net.layer_costs(32));
    let peak_match = sq_measured.peak_bytes == sq_modeled.peak_bytes;
    table.row(&[
        "dense parity (sigmoid mlp)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        flops(prof.forward.flops),
        if dense_exact { "exact".into() } else { "DRIFT".into() },
    ]);
    table.row(&[
        "sqrt(n) peak, measured vs modeled".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} vs {}", sq_measured.peak_bytes, sq_modeled.peak_bytes),
        if peak_match { "equal".into() } else { "DRIFT".into() },
    ]);
    records.push(fields! {
        "forward_parity" => prof.forward_parity(),
        "backward_parity" => prof.backward_parity(),
        "measured_fwd_flops" => prof.forward.flops,
        "peak_live_bytes" => prof.peak_live_bytes,
        "sqrt_peak_measured" => sq_measured.peak_bytes,
        "sqrt_peak_modeled" => sq_modeled.peak_bytes,
    });

    // The profiler is itself an observability technique: it spends trace
    // memory to make every other tradeoff's cost measurable.
    let mut registry = Registry::new();
    registry
        .add(Technique {
            name: "trace-profiler".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: report.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: ((events.len() + fevents.len())
                    * std::mem::size_of::<dl_obs::Event>()) as u64,
                energy_kwh: 0.0,
            },
            baseline: Some("untraced".into()),
        })
        .expect("unique");

    let top = fault.workers.first();
    records.push(fields! {
        "sync_dominated_explained" => local_profiles
            .first()
            .map(|p| p.explained_fraction())
            .unwrap_or(0.0),
        "relaxed_explained" => local_profiles
            .get(1)
            .map(|p| p.explained_fraction())
            .unwrap_or(0.0),
        "time_parity" => time_parity,
        "top_lost_worker" => top.map(|w| w.worker).unwrap_or(0),
        "top_lost_share" => top.map(|w| w.share).unwrap_or(0.0),
        "crashes" => fault.crash_count,
        "observability_techniques" => registry.by_category(Category::Observability).len(),
    });

    let ok = sync_dominated && regimes_differ && closes && attribution && dense_exact && peak_match;
    ExperimentResult {
        id: "e24".into(),
        title: "profiling: critical path, lost-time attribution, measured costs".into(),
        table,
        verdict: if ok {
            let w = top.expect("attribution implies a worker");
            format!(
                "matches the claim: the critical path explains {} of sync-dominated wall time, \
                 worker {} contributed {:.0}% of lost time across its {} crashes, and measured \
                 dense costs equal the static model",
                f3(local_profiles[0].explained_fraction()),
                w.worker,
                w.share * 100.0,
                w.crashes
            )
        } else {
            format!(
                "PARTIAL: sync_dominated={sync_dominated} regimes_differ={regimes_differ} \
                 closes={closes} attribution={attribution} dense_exact={dense_exact} \
                 peak_match={peak_match}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e24_profiles_and_attributes() {
        let r = super::run();
        assert!(r.verdict.contains("matches the claim"), "verdict: {}", r.verdict);
        let summary = r.records.last().unwrap();
        let explained = crate::table::field_f64(summary, "sync_dominated_explained").unwrap();
        assert!(explained >= 0.95, "critical path explains only {explained}");
        let relaxed = crate::table::field_f64(summary, "relaxed_explained").unwrap();
        assert!(relaxed < explained);
    }
}
