//! E19 — Mistique-lite intermediate store footprint (§4.2).
//!
//! Claim: quantization plus cross-snapshot deduplication stores model
//! intermediates at a fraction of their raw size, while point queries
//! stay cheap (touch one chunk).

use crate::table::{bytes, ExperimentResult, Table};
use dl_interpret::store::IntermediateKey;
use dl_interpret::{ActivationQuery, IntermediateStore};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    // train a digit model, storing hidden activations every epoch
    let all = dl_data::digits_dataset(300, 0.08, 150);
    let mut net = Network::mlp(&[144, 32, 10], &mut init::rng(151));
    let mut store = IntermediateStore::new();
    let epochs = 12;
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    for epoch in 0..epochs {
        trainer.fit(&mut net, &all);
        let trace = net.forward_trace(&all.x, false);
        // store post-ReLU hidden layer (trace[2]) and logits (trace[3])
        store.put(
            IntermediateKey {
                snapshot: epoch,
                layer: 2,
            },
            &trace[2],
        );
        store.put(
            IntermediateKey {
                snapshot: epoch,
                layer: 3,
            },
            &trace[3],
        );
    }
    let stats = store.stats();
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["matrices stored".into(), format!("{}", stats.matrices)]);
    table.row(&["logical (raw f32)".into(), bytes(stats.logical_bytes)]);
    table.row(&["physical (quant+dedup)".into(), bytes(stats.physical_bytes)]);
    table.row(&["compression ratio".into(), format!("{:.2}x", stats.ratio())]);
    table.row(&["dedup hits".into(), format!("{}", stats.dedup_hits)]);
    // query path: full fetch vs point fetch cost
    let full = store
        .get(IntermediateKey {
            snapshot: epochs - 1,
            layer: 2,
        })
        .expect("stored");
    let point = store
        .get_row(
            IntermediateKey {
                snapshot: epochs - 1,
                layer: 2,
            },
            5,
        )
        .expect("stored");
    table.row(&["full fetch chunks".into(), format!("{}", full.1)]);
    table.row(&["point fetch chunks".into(), format!("{}", point.1)]);
    // a DeepBase-style query over the *stored* (lossy) activations still
    // finds class-selective units
    let q = ActivationQuery::CorrelatesWithClass { class: 3 }.run(&full.0, &all.y);
    table.row(&[
        "best class-3 unit |corr| (from store)".into(),
        format!("{:.3}", q.units[0].score.abs()),
    ]);
    let records = vec![fields! {
        "logical_bytes" => stats.logical_bytes,
        "physical_bytes" => stats.physical_bytes,
        "ratio" => stats.ratio(),
        "dedup_hits" => stats.dedup_hits,
        "full_fetch_chunks" => full.1,
        "point_fetch_chunks" => point.1,
        "best_corr" => q.units[0].score.abs(),
    }];
    ExperimentResult {
        id: "e19".into(),
        title: "Mistique-lite: storing 12 epochs of intermediates".into(),
        table,
        verdict: if stats.ratio() > 2.5 && point.1 == 1 && q.units[0].score.abs() > 0.3 {
            "matches the claim: ~3x footprint reduction (8-bit codes minus chunk-ref \
             overhead), single-chunk point queries, and the lossy store still \
             answers inspection queries"
                .into()
        } else {
            format!("PARTIAL: ratio={:.1} point_chunks={}", stats.ratio(), point.1)
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e19_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 8);
    }
}
