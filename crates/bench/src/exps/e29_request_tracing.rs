//! E29 — per-request tracing: waterfalls, tail attribution, conservation.
//!
//! Claim: the `dl-trace` tap explains *where* cluster tail latency comes
//! from, request by request, without perturbing a single byte. Four
//! pillars: (1) against a degraded replica, the round-robin vs
//! least-loaded p99 gap decomposes into phases — oblivious routing pays
//! in **queue wait** behind the straggler's backlog, which load-aware
//! routing avoids; (2) under chaos, hedging's tail cut is *visible in
//! the waterfalls*: requests served via the hedge branch escaped the
//! straggler, at a measurable wasted-duplicate cost; (3) on a steady
//! run, tracing is bit-invisible — report, timeline, and histogram are
//! byte-identical across plain/traced × timeline/null recorder paths —
//! while every reconstructed waterfall's phases sum *exactly* (integer
//! microseconds, not ±ε) to its end-to-end latency, and histogram tail
//! buckets link to concrete requests via exemplars; (4) a crash storm
//! conserves: reconstructed served/shed/lost/unavailable tallies equal
//! the engine report's own accounting. Everything runs on one
//! `VirtualClock` and is gated by `BENCH_E29.json`.

use crate::table::{ExperimentResult, Table};
use dl_core::{Category, Metrics, Registry, Technique};
use dl_distributed::{FaultEvent, FaultPlan, FaultProfile};
use dl_obs::{fields, Fields, NullRecorder, Recorder, TimelineRecorder};
use dl_serve::{
    build_family, open_loop, serve_cluster, AdmissionPolicy, BatchPolicy, ClusterConfig,
    DeviceModel, FamilyConfig, LoadConfig, Request, RetryPolicy, RouterPolicy, ServeConfig,
};
use dl_trace::{
    by_replica, phase_breakdown, tail_mean_phase_us, DispatchKind, Outcome, Phase, TraceSet,
    Tracer, PHASE_COUNT,
};

/// The p99 objective the SLO-aware cells are governed against (E27's).
const SLO_S: f64 = 2e-5;
/// Fault-plan step grid every chaos schedule is laid out on.
const STEPS: usize = 64;
/// Slowest fraction of served requests called "the tail" here.
const TAIL_FRAC: f64 = 0.01;

fn base_engine(admission: AdmissionPolicy) -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy::dynamic(16, 5e-6),
        admission,
        primary: "fp32-base".into(),
        device: DeviceModel::nominal(),
    }
}

fn load(rate_rps: f64, requests: usize, seed: u64, rows: usize) -> Vec<Request> {
    open_loop(
        &LoadConfig {
            rate_rps,
            requests,
            seed,
        },
        rows,
    )
}

/// Tail (slowest `TAIL_FRAC` of served) mean phase vector and its sum.
/// Phase sums are exact per request, so the vector sums to the tail's
/// mean end-to-end latency exactly.
fn tail_of(set: &TraceSet) -> ([f64; PHASE_COUNT], f64) {
    let (mean, _) = tail_mean_phase_us(set, TAIL_FRAC);
    let e2e: f64 = mean.iter().sum();
    (mean, e2e)
}

/// One traced cell's record: outcome tallies, exact phase quantiles, and
/// the tail decomposition.
fn trace_record(scenario: &str, config: &str, set: &TraceSet) -> Fields {
    let pb = phase_breakdown(set);
    let (tail, tail_e2e) = tail_of(set);
    let mut f = fields! {
        "scenario" => scenario,
        "config" => config,
        "traced" => set.requests.len(),
        "served" => set.counts.served,
        "shed" => set.counts.shed,
        "lost" => set.counts.lost,
        "unavailable" => set.counts.unavailable,
        "e2e_p50_us" => pb.e2e_p50_us,
        "e2e_p99_us" => pb.e2e_p99_us,
        "tail_e2e_us" => tail_e2e,
    };
    for (i, phase) in Phase::ALL.iter().enumerate() {
        f.push((format!("p99_{}_us", phase.label()), pb.p99_us[i].into()));
        f.push((format!("tail_{}_us", phase.label()), tail[i].into()));
    }
    f
}

fn trace_row(table: &mut Table, scenario: &str, config: &str, set: &TraceSet) {
    let pb = phase_breakdown(set);
    let (tail, tail_e2e) = tail_of(set);
    table.row(&[
        scenario.into(),
        config.into(),
        format!("{}", set.counts.served),
        format!("{}", pb.e2e_p50_us),
        format!("{}", pb.e2e_p99_us),
        format!("{:.1}", tail[Phase::Queue as usize]),
        format!("{:.1}", tail[Phase::Service as usize]),
        format!("{:.1}", tail_e2e),
    ]);
}

/// Runs the experiment without tracing.
pub fn run() -> ExperimentResult {
    run_with(&NullRecorder::new())
}

/// Runs the experiment, threading `rec` into the headline crash-storm
/// cell (through the dl-trace tap, so its timeline carries the full
/// request-trace schema when `rec` records).
pub fn run_with(rec: &dyn Recorder) -> ExperimentResult {
    let data = dl_data::blobs(160, 3, 8, 6.0, 0.5, 93);
    let eval = dl_data::blobs(96, 3, 8, 6.0, 0.5, 94);
    let rows = eval.x.dims()[0];
    let mut family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![8, 24, 3],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 150,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 9,
            seed: 95,
        },
    );
    let device = DeviceModel::nominal();
    let cap_dyn = {
        let v = &family.variants[0];
        v.max_batch() as f64 / device.service_time(v.cost_at(v.max_batch()))
    };

    let mut table = Table::new(&[
        "scenario", "config", "served", "p50 us", "p99 us", "tailQ us", "tailS us", "tailE2E us",
    ]);
    let mut records: Vec<Fields> = Vec::new();

    // --- pillar 1: attribute the RR-vs-LL p99 gap to queue wait ------------
    // E27's degraded scenario: replica 0 straggles at 4x all run, a mid-run
    // link degradation quadruples dispatch latency. E27 showed least-loaded
    // beats round-robin on p99; the waterfalls show *why*.
    let router_rate = 1.8 * cap_dyn;
    let router_reqs = load(router_rate, 900, 102, rows);
    let router_span = router_reqs.last().expect("non-empty").arrival_s;
    let router_sps = router_span / (STEPS as f64 * 0.75);
    let degraded = FaultPlan::new(vec![
        FaultEvent::Straggler {
            worker: 0,
            slowdown: 4.0,
            from_step: 0,
            to_step: STEPS,
        },
        FaultEvent::LinkDegrade {
            factor: 0.25,
            from_step: STEPS / 4,
            to_step: STEPS / 2,
        },
    ]);
    let mut routed: Vec<(&str, TraceSet)> = Vec::new();
    for (name, policy) in [
        ("round-robin", RouterPolicy::RoundRobin),
        ("least-loaded", RouterPolicy::LeastLoaded),
    ] {
        let cfg = ClusterConfig {
            router: policy,
            faults: degraded.clone(),
            seconds_per_step: router_sps,
            dispatch_s: 1e-6,
            ..ClusterConfig::new(3, base_engine(AdmissionPolicy::AcceptAll))
        };
        let inner = NullRecorder::new();
        let tracer = Tracer::new(&inner);
        let r = serve_cluster(&mut family, &eval, &router_reqs, &cfg, &tracer);
        let set = tracer.traces();
        set.matches_report(r.serve.served, r.serve.shed, r.lost, r.unavailable)
            .expect("degraded cell conserves");
        set.verify_conservation().expect("exact phases");
        trace_row(&mut table, "degraded", name, &set);
        records.push(trace_record("degraded", name, &set));
        routed.push((name, set));
    }
    let (rr_tail, rr_tail_e2e) = tail_of(&routed[0].1);
    let (ll_tail, ll_tail_e2e) = tail_of(&routed[1].1);
    let rr_p99 = phase_breakdown(&routed[0].1).e2e_p99_us;
    let ll_p99 = phase_breakdown(&routed[1].1).e2e_p99_us;
    let queue_delta = rr_tail[Phase::Queue as usize] - ll_tail[Phase::Queue as usize];
    let gap = rr_tail_e2e - ll_tail_e2e;
    let queue_share_of_gap = if gap > 0.0 { queue_delta / gap } else { 0.0 };
    // The straggler's backlog shows up as queue wait on replica 0 under
    // oblivious routing; load-aware routing steers around it.
    let rr_by_rep = by_replica(&routed[0].1);
    let ll_by_rep = by_replica(&routed[1].1);
    let rr_r0_queue_p99 = rr_by_rep.first().map_or(0, |r| r.queue_p99_us);
    let ll_r0_served = ll_by_rep.first().map_or(0, |r| r.served);
    let rr_r0_served = rr_by_rep.first().map_or(0, |r| r.served);
    let queue_attributed = ll_p99 < rr_p99
        && queue_delta > 0.0
        && queue_share_of_gap > 0.5
        && ll_r0_served < rr_r0_served;

    // --- pillar 2: hedging's tail cut, branch by branch --------------------
    // E27's chaos tail scenario: crashes plus an 8x straggler on replica 1.
    // Hedged duplicates race the straggler; the traces show the winners.
    let tail_rate = 1.5 * cap_dyn;
    let tail_reqs = load(tail_rate, 900, 103, rows);
    let tail_span = tail_reqs.last().expect("non-empty").arrival_s;
    let tail_sps = tail_span / (STEPS as f64 * 0.75);
    let mut chaos_events = FaultPlan::from_profile(&FaultProfile::crashes(11, 24.0, 6.0), 3, STEPS)
        .events()
        .to_vec();
    chaos_events.push(FaultEvent::Straggler {
        worker: 1,
        slowdown: 8.0,
        from_step: 0,
        to_step: STEPS,
    });
    let chaos = FaultPlan::new(chaos_events);
    let hedge_delay_s = 2.0 * 16.0 / cap_dyn;
    let mut chaos_cells: Vec<(&str, TraceSet)> = Vec::new();
    for (name, retry) in [
        ("retry2", RetryPolicy::retries(2)),
        ("retry2+hedge", RetryPolicy::hedged(2, hedge_delay_s)),
    ] {
        let cfg = ClusterConfig {
            retry,
            faults: chaos.clone(),
            seconds_per_step: tail_sps,
            warmup_s: tail_sps,
            warmup_factor: 2.0,
            ..ClusterConfig::new(3, base_engine(AdmissionPolicy::AcceptAll))
        };
        let inner = NullRecorder::new();
        let tracer = Tracer::new(&inner);
        let r = serve_cluster(&mut family, &eval, &tail_reqs, &cfg, &tracer);
        let set = tracer.traces();
        set.matches_report(r.serve.served, r.serve.shed, r.lost, r.unavailable)
            .expect("chaos cell conserves");
        set.verify_conservation().expect("exact phases");
        trace_row(&mut table, "chaos", name, &set);
        records.push(trace_record("chaos", name, &set));
        chaos_cells.push((name, set));
    }
    let retry_p99 = phase_breakdown(&chaos_cells[0].1).e2e_p99_us;
    let hedged_set = &chaos_cells[1].1;
    let hedge_p99 = phase_breakdown(hedged_set).e2e_p99_us;
    let hedge_winners: Vec<&dl_trace::RequestTrace> = hedged_set
        .requests
        .iter()
        .filter(|t| {
            matches!(
                t.outcome,
                Outcome::Served {
                    via: DispatchKind::Hedge,
                    ..
                }
            )
        })
        .collect();
    // Winners that escaped the straggler: their winning replica is not
    // the slowed one.
    let off_straggler = hedge_winners
        .iter()
        .filter(|t| !matches!(t.outcome, Outcome::Served { replica: 1, .. }))
        .count();
    let wasted_total_us: u64 = hedged_set.requests.iter().map(|t| t.wasted_us).sum();
    let hedge_attributed = !hedge_winners.is_empty()
        && hedge_p99 < retry_p99
        && off_straggler * 2 > hedge_winners.len()
        && wasted_total_us > 0;

    // --- pillar 3: steady run — invisibility, exactness, exemplars ---------
    let steady_reqs = load(1.2 * cap_dyn, 800, 105, rows);
    let steady_cfg = ClusterConfig::new(
        3,
        base_engine(AdmissionPolicy::SloAware {
            p99_slo_s: SLO_S,
            headroom: 0.7,
            min_accuracy: 0.0,
        }),
    );
    let null = NullRecorder::new();
    let plain_null = serve_cluster(&mut family, &eval, &steady_reqs, &steady_cfg, &null);
    let timeline = TimelineRecorder::new();
    let plain_timeline = serve_cluster(&mut family, &eval, &steady_reqs, &steady_cfg, &timeline);
    let null_inner = NullRecorder::new();
    let traced_null = Tracer::new(&null_inner);
    let over_null = serve_cluster(&mut family, &eval, &steady_reqs, &steady_cfg, &traced_null);
    let timeline_inner = TimelineRecorder::new();
    let traced_timeline = Tracer::new(&timeline_inner);
    let over_timeline =
        serve_cluster(&mut family, &eval, &steady_reqs, &steady_cfg, &traced_timeline);
    let invisible = plain_null == plain_timeline
        && plain_null == over_null
        && plain_null == over_timeline
        && timeline.events() == timeline_inner.events()
        && timeline.histogram("serve.latency_s") == timeline_inner.histogram("serve.latency_s")
        && traced_null.events() == traced_timeline.events();
    let steady_set = traced_timeline.traces();
    let exact = steady_set.verify_conservation().is_ok()
        && steady_set
            .matches_report(
                plain_null.serve.served,
                plain_null.serve.shed,
                plain_null.lost,
                plain_null.unavailable,
            )
            .is_ok();
    // Exemplar linking: the latency histogram's p99 bucket names a
    // concrete request whose waterfall we hold.
    let exemplar_linked = timeline_inner
        .histogram("serve.latency_s")
        .and_then(|h| h.quantile_bucket(0.99).and_then(|b| h.exemplar(b)))
        .and_then(|id| steady_set.requests.iter().find(|t| t.id == id))
        .is_some_and(|t| matches!(t.outcome, Outcome::Served { .. }));
    trace_row(&mut table, "steady", "traced", &steady_set);
    records.push(trace_record("steady", "traced", &steady_set));

    // --- pillar 4: crash-storm conservation (headline trace) ---------------
    // E27's storm at 3 replicas, threaded through `rec` via the tap.
    let storm_rate = 1.5 * cap_dyn;
    let storm_reqs = load(storm_rate, 1200, 101, rows);
    let storm_span = storm_reqs.last().expect("non-empty").arrival_s;
    let storm_sps = storm_span / (STEPS as f64 * 0.75);
    let storm_cfg = ClusterConfig {
        retry: RetryPolicy::retries(2),
        faults: FaultPlan::from_profile(&FaultProfile::crashes(7, 20.0, 6.0), 3, STEPS),
        seconds_per_step: storm_sps,
        warmup_s: storm_sps,
        warmup_factor: 2.0,
        ..ClusterConfig::new(
            3,
            base_engine(AdmissionPolicy::SloAware {
                p99_slo_s: SLO_S,
                headroom: 0.7,
                min_accuracy: 0.0,
            }),
        )
    };
    let storm_tap = Tracer::new(rec);
    let storm = serve_cluster(&mut family, &eval, &storm_reqs, &storm_cfg, &storm_tap);
    let storm_set = storm_tap.traces();
    let storm_conserved = storm.crashes > 0
        && storm_set
            .matches_report(
                storm.serve.served,
                storm.serve.shed,
                storm.lost,
                storm.unavailable,
            )
            .is_ok()
        && storm_set.verify_conservation().is_ok();
    let retry_branches = storm_set
        .requests
        .iter()
        .filter(|t| {
            matches!(
                t.outcome,
                Outcome::Served {
                    via: DispatchKind::Retry,
                    ..
                }
            ) || matches!(t.outcome, Outcome::Lost)
        })
        .count();
    trace_row(&mut table, "crash-storm", "slo+retry2", &storm_set);
    records.push(trace_record("crash-storm", "slo+retry2", &storm_set));

    // --- the trace tap in the tradeoff navigator ---------------------------
    // Tracing costs retained-event memory, zero simulated time. Price the
    // tap from the storm cell's actual retention.
    let trace_state_bytes: u64 = storm_tap
        .events()
        .iter()
        .map(|e| {
            (std::mem::size_of_val(e)
                + e.name.len()
                + e.fields
                    .iter()
                    .map(|(k, v)| k.len() + std::mem::size_of_val(v))
                    .sum::<usize>()) as u64
        })
        .sum();
    let mut registry = Registry::new();
    registry
        .add(Technique {
            name: "untraced-serving".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: plain_null.serve.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: 0,
                energy_kwh: 0.0,
            },
            baseline: None,
        })
        .expect("unique");
    registry
        .add(Technique {
            name: "request-trace-tap".into(),
            category: Category::Observability,
            metrics: Metrics {
                accuracy: plain_null.serve.accuracy,
                train_flops: 0,
                inference_flops: 0,
                memory_bytes: trace_state_bytes,
                energy_kwh: 0.0,
            },
            baseline: Some("untraced-serving".into()),
        })
        .expect("unique");

    records.push(fields! {
        "scenario" => "summary",
        "cap_dyn_rps" => cap_dyn,
        "slo_s" => SLO_S,
        "rr_p99_us" => rr_p99,
        "ll_p99_us" => ll_p99,
        "tail_gap_us" => gap,
        "queue_delta_us" => queue_delta,
        "queue_share_of_gap" => queue_share_of_gap,
        "rr_r0_queue_p99_us" => rr_r0_queue_p99,
        "rr_r0_served" => rr_r0_served,
        "ll_r0_served" => ll_r0_served,
        "retry_p99_us" => retry_p99,
        "hedge_p99_us" => hedge_p99,
        "hedge_winners" => hedge_winners.len(),
        "hedge_winners_off_straggler" => off_straggler,
        "wasted_total_us" => wasted_total_us,
        "storm_retry_branches" => retry_branches,
        "trace_state_bytes" => trace_state_bytes,
        "observability_techniques" => registry.by_category(Category::Observability).len(),
    });

    let ok = queue_attributed && hedge_attributed && invisible && exact && exemplar_linked
        && storm_conserved;
    ExperimentResult {
        id: "e29".into(),
        title: "request tracing: waterfalls, tail attribution, conservation".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: the RR-vs-LL tail gap of {gap:.1}us is {:.0}% queue wait \
                 (replica 0 queue p99 {rr_r0_queue_p99}us under RR), {} hedge winners ({} off \
                 the straggler) cut p99 {retry_p99}us -> {hedge_p99}us for {wasted_total_us}us \
                 of duplicate work, tracing is byte-invisible on the steady run with every \
                 waterfall exact and the p99 exemplar resolved, and the crash storm conserves \
                 all {} traced requests",
                queue_share_of_gap * 100.0,
                hedge_winners.len(),
                off_straggler,
                storm_set.requests.len(),
            )
        } else {
            format!(
                "PARTIAL: queue_attributed={queue_attributed} hedge_attributed={hedge_attributed} \
                 invisible={invisible} exact={exact} exemplar_linked={exemplar_linked} \
                 storm_conserved={storm_conserved}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e29_request_tracing_matches_claim() {
        let r = super::run();
        assert!(r.verdict.contains("matches the claim"), "verdict: {}", r.verdict);
        let summary = r.records.last().unwrap();
        let share = crate::table::field_f64(summary, "queue_share_of_gap").unwrap();
        assert!(share > 0.5, "queue wait must dominate the routing gap: {share}");
        let winners = crate::table::field_f64(summary, "hedge_winners").unwrap();
        assert!(winners > 0.0, "hedge branches must win visibly");
    }

    #[test]
    fn e29_is_deterministic_byte_for_byte() {
        let a = super::run();
        let b = super::run();
        assert_eq!(a.to_json(), b.to_json(), "two runs must be byte-identical");
    }
}
