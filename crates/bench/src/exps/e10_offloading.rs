//! E10 — offloading intermediates to host memory (§2.3, vDNN).
//!
//! Claim: offloading reduces device memory at the cost of reread time
//! over the host link; the cost is hidden while transfers fit under
//! compute.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_memsched::offload_plan;
use dl_tensor::init;
use serde_json::json;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let net = dl_nn::Network::mlp(
        &[512, 2048, 2048, 1024, 512, 10],
        &mut init::rng(70),
    );
    let profile = net.cost_profile(128);
    let flops_per_sec = 10e12;
    let mut table = Table::new(&[
        "offload %", "device bytes", "host bytes", "slowdown (fast link)", "slowdown (slow link)",
    ]);
    let mut records = Vec::new();
    let mut hidden_on_fast = true;
    let mut visible_on_slow = false;
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let fast = offload_plan(&profile, frac, flops_per_sec, 50e9); // PCIe5-class
        let slow = offload_plan(&profile, frac, flops_per_sec, 2e9); // constrained link
        table.row(&[
            format!("{:.0}%", frac * 100.0),
            bytes(fast.device_bytes),
            bytes(fast.host_bytes),
            f3(fast.slowdown()),
            f3(slow.slowdown()),
        ]);
        records.push(json!({
            "fraction": frac,
            "device_bytes": fast.device_bytes,
            "slowdown_fast": fast.slowdown(),
            "slowdown_slow": slow.slowdown(),
        }));
        if frac > 0.0 {
            if fast.slowdown() > 1.001 {
                hidden_on_fast = false;
            }
            if slow.slowdown() > 1.2 {
                visible_on_slow = true;
            }
        }
    }
    ExperimentResult {
        id: "e10".into(),
        title: "offloading: device memory vs training-time overhead".into(),
        table,
        verdict: if hidden_on_fast && visible_on_slow {
            "matches the claim: transfers hide behind compute on a fast link and surface \
             as training-time overhead on a slow one"
                .into()
        } else {
            format!("PARTIAL: hidden_on_fast={hidden_on_fast} visible_on_slow={visible_on_slow}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 5);
    }
}
