//! E10 — offloading intermediates to host memory (§2.3, vDNN).
//!
//! Claim: offloading reduces device memory at the cost of reread time
//! over the host link; the cost is hidden while transfers fit under
//! compute.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_memsched::offload_plan;
use dl_obs::fields;
use dl_prof::NetworkProfile;
use dl_tensor::init;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let net = dl_nn::Network::mlp(
        &[512, 2048, 2048, 1024, 512, 10],
        &mut init::rng(70),
    );
    let profile = net.cost_profile(128);
    // ground the model in a measurement: profile the same architecture at a
    // small batch and check the modeled activation bytes against what a
    // real forward/backward pass holds live (geometry scales linearly in
    // batch, so the parity at batch 8 validates the batch-128 model).
    let probe_batch = 8;
    let x = init::uniform([probe_batch, 512], -1.0, 1.0, &mut init::rng(71));
    let measured = NetworkProfile::profile(&mut net.clone(), &x);
    let modeled_small = net.cost_profile(probe_batch);
    let act_parity = measured.peak_live_bytes as f64
        / (measured.param_bytes + measured.input_bytes + modeled_small.activation_bytes()) as f64;
    let flops_per_sec = 10e12;
    let mut table = Table::new(&[
        "offload %", "device bytes", "host bytes", "slowdown (fast link)", "slowdown (slow link)",
    ]);
    let mut records = Vec::new();
    let mut hidden_on_fast = true;
    let mut visible_on_slow = false;
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let fast = offload_plan(&profile, frac, flops_per_sec, 50e9); // PCIe5-class
        let slow = offload_plan(&profile, frac, flops_per_sec, 2e9); // constrained link
        table.row(&[
            format!("{:.0}%", frac * 100.0),
            bytes(fast.device_bytes),
            bytes(fast.host_bytes),
            f3(fast.slowdown()),
            f3(slow.slowdown()),
        ]);
        records.push(fields! {
            "fraction" => frac,
            "device_bytes" => fast.device_bytes,
            "slowdown_fast" => fast.slowdown(),
            "slowdown_slow" => slow.slowdown(),
        });
        if frac > 0.0 {
            if fast.slowdown() > 1.001 {
                hidden_on_fast = false;
            }
            if slow.slowdown() > 1.2 {
                visible_on_slow = true;
            }
        }
    }
    records.push(fields! {
        "probe_batch" => probe_batch,
        "measured_peak_live_bytes" => measured.peak_live_bytes,
        "measured_fwd_flops" => measured.forward.flops,
        "activation_parity" => act_parity,
    });
    ExperimentResult {
        id: "e10".into(),
        title: "offloading: device memory vs training-time overhead".into(),
        table,
        verdict: if hidden_on_fast && visible_on_slow {
            "matches the claim: transfers hide behind compute on a fast link and surface \
             as training-time overhead on a slow one"
                .into()
        } else {
            format!("PARTIAL: hidden_on_fast={hidden_on_fast} visible_on_slow={visible_on_slow}")
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 5);
    }
}
