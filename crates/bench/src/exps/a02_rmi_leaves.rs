//! A2 (ablation) — the RMI's leaf-model budget.
//!
//! Design choice under test: the number of second-stage models. More
//! leaves mean more index bytes but smaller search windows; the sweet spot
//! depends on the key distribution's smoothness. This sweep produces the
//! size/window curve a deployment would tune on.

use crate::table::{bytes, f3, ExperimentResult, Table};
use dl_data::KeyDistribution;
use dl_learneddb::RecursiveModelIndex;
use dl_obs::fields;

/// Runs the ablation.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&["distribution", "leaves", "index size", "mean window"]);
    let mut records = Vec::new();
    let mut monotone = true;
    for dist in [KeyDistribution::Uniform, KeyDistribution::Lognormal] {
        let keys = dist.generate(100_000, 210);
        let mut last_window = f64::INFINITY;
        for leaves in [16usize, 64, 256, 1024, 4096] {
            let rmi = RecursiveModelIndex::build(keys.clone(), leaves);
            let (mean_w, _) = rmi.error_profile();
            table.row(&[
                dist.name().into(),
                format!("{leaves}"),
                bytes(rmi.size_bytes() as u64),
                f3(mean_w),
            ]);
            records.push(fields! {
                "distribution" => dist.name(), "leaves" => leaves,
                "bytes" => rmi.size_bytes(), "mean_window" => mean_w,
            });
            if mean_w > last_window * 1.5 {
                monotone = false; // windows should shrink (or plateau)
            }
            last_window = mean_w;
        }
    }
    ExperimentResult {
        id: "a2".into(),
        title: "ablation: RMI leaf count vs size and search window".into(),
        table,
        verdict: if monotone {
            "the knob behaves as designed: windows shrink monotonically with leaf budget \
             while index bytes grow linearly — a tunable size/latency dial"
                .into()
        } else {
            "unexpected: windows did not shrink monotonically with more leaves".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn a2_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 10);
    }
}
