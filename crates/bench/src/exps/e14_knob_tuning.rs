//! E14 — RL knob tuning over a simulated database (Part 2).
//!
//! Claim: reinforcement learning can tune database knobs toward high
//! throughput, competitively with search baselines under the same
//! evaluation budget, while learning a reusable policy.

use crate::table::{f3, ExperimentResult, Table};
use dl_learneddb::tuner::{grid_search, random_search, tuner_rng};
use dl_learneddb::{DbSimulator, QLearningTuner};
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let mut table = Table::new(&[
        "workload", "optimum", "q-learning", "random", "grid", "q-learn % of opt",
    ]);
    let mut records = Vec::new();
    let mut all_near_optimal = true;
    for (name, scan, write) in [
        ("scan-heavy", 0.8, 0.1),
        ("point-heavy", 0.1, 0.1),
        ("write-heavy", 0.3, 0.7),
    ] {
        let db = DbSimulator::new(8, scan, write);
        let (_, opt) = db.optimum();
        // average tuner/baseline performance over seeds
        let mut q_sum = 0.0;
        let mut r_sum = 0.0;
        let mut g_sum = 0.0;
        let seeds = 5;
        for seed in 0..seeds {
            let mut tuner = QLearningTuner::new(8);
            let mut rng = tuner_rng(seed);
            let (_, q_best, evals) = tuner.tune(&db, 25, 20, &mut rng);
            let mut rng = tuner_rng(seed + 1000);
            let (_, r_best) = random_search(&db, evals, &mut rng);
            let (_, g_best, _) = grid_search(&db, evals);
            q_sum += q_best;
            r_sum += r_best;
            g_sum += g_best;
        }
        let (q, r, g) = (q_sum / seeds as f64, r_sum / seeds as f64, g_sum / seeds as f64);
        table.row(&[
            name.into(),
            format!("{opt:.0}"),
            format!("{q:.0}"),
            format!("{r:.0}"),
            format!("{g:.0}"),
            f3(q / opt),
        ]);
        records.push(fields! {
            "workload" => name, "optimum" => opt,
            "qlearning" => q, "random" => r, "grid" => g,
        });
        if q / opt < 0.95 {
            all_near_optimal = false;
        }
    }
    ExperimentResult {
        id: "e14".into(),
        title: "knob tuning: Q-learning vs random and grid search".into(),
        table,
        verdict: if all_near_optimal {
            "matches the claim: RL tuning reaches >95% of the exhaustive optimum on every \
             workload within the same evaluation budget as the baselines"
                .into()
        } else {
            "PARTIAL: RL fell below 95% of optimum on some workload".into()
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 3);
    }
}
