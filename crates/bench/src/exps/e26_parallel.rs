//! E26 — the parallel + cache-blocked compute backend under the gate.
//!
//! Claim: `dl_tensor::par` buys measured wall-clock speedup on the GEMM
//! that every other experiment funnels through, while remaining
//! *bit-identical* to the naive sequential kernel and charging the
//! *exact* same measured `OpCost` — so turning threads on changes
//! nothing but time. The sweep covers threads × tile size × matrix
//! shape; every cell asserts bitwise equality and cost parity, and the
//! conv/map/reduce parallel kernels are checked the same way.
//!
//! Determinism note: wall-clock microseconds and speedups are genuinely
//! hardware-dependent, so they are reported as *string* fields, which
//! `dl_prof::Baseline::from_records` deliberately excludes from the
//! numeric baseline gate. Everything numeric in the records — shapes,
//! thread counts, measured FLOPs, equality booleans — is reproducible on
//! any machine, and the verdict depends only on those checks. The input
//! matrices are filled by a closed-form formula (no RNG) so measured
//! `nnz`-dependent FLOPs are environment-independent too.

use std::time::Instant;

use crate::table::{ExperimentResult, Table};
use dl_core::{Category, Metrics, Registry, Technique};
use dl_obs::{fields, Fields};
use dl_tensor::{acct, par, Tensor};

/// Thread counts the sweep exercises (the pool handles counts beyond the
/// physical cores; the speedup columns just won't scale there).
const THREADS: [usize; 3] = [1, 2, 4];
/// Output-column tile widths for the blocked kernel.
const TILES: [usize; 3] = [32, 128, 512];
/// Timing repetitions per cell; the minimum is reported.
const REPS: usize = 3;

/// Deterministic, RNG-free matrix fill: ~25% exact zeros (exercising the
/// kernel's sparse skip and its nnz accounting) and values in [-1, 1].
fn filled(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            if (i + salt).is_multiple_of(4) {
                0.0
            } else {
                let h = (i.wrapping_mul(2_654_435_761).wrapping_add(salt * 97)) % 1000;
                h as f32 / 499.5 - 1.0
            }
        })
        .collect();
    Tensor::from_vec(data, [rows, cols]).expect("length matches by construction")
}

/// Minimum wall-clock microseconds over `REPS` runs of `f`.
fn best_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Runs the experiment. The claim here is about the *scalar* backend
/// (bit-identity with the sequential `Tensor` kernels), so the kernel
/// knob is pinned to [`par::Kernel::Scalar`] regardless of `DL_KERNEL`;
/// E31 owns the unrolled/int8 kernel claims.
pub fn run() -> ExperimentResult {
    par::with_kernel(par::Kernel::Scalar, run_inner)
}

fn run_inner() -> ExperimentResult {
    let shapes: [(&str, usize, usize, usize); 2] = [
        ("small 32x64·64x32", 32, 64, 32),
        ("large 256x256·256x256", 256, 256, 256),
    ];

    let mut table = Table::new(&[
        "shape", "threads", "tile", "naive us", "par us", "speedup", "efficiency", "bitwise",
        "cost ==",
    ]);
    let mut records: Vec<Fields> = Vec::new();
    let mut cells = 0usize;
    let mut bitwise_ok = 0usize;
    let mut parity_ok = 0usize;
    let mut large_flops = 0u64;
    let mut speedup_large_4t = 0.0f64;

    for &(label, m, k, n) in &shapes {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        // Sequential reference: result, wall time, measured cost.
        let (want, seq_cost) = acct::measure(|| a.matmul(&b));
        let naive_us = best_us(|| {
            std::hint::black_box(a.matmul(&b));
        });
        if label.starts_with("large") {
            large_flops = seq_cost.flops;
        }
        for &t in &THREADS {
            for &tile in &TILES {
                let (got, par_cost) =
                    par::with_threads(t, || acct::measure(|| par::matmul_blocked(&a, &b, tile)));
                let par_us = best_us(|| {
                    par::with_threads(t, || {
                        std::hint::black_box(par::matmul_blocked(&a, &b, tile));
                    });
                });
                let bitwise = got.data() == want.data();
                let parity = par_cost == seq_cost;
                let speedup = naive_us / par_us;
                let efficiency = speedup / t as f64;
                cells += 1;
                bitwise_ok += usize::from(bitwise);
                parity_ok += usize::from(parity);
                if label.starts_with("large") && t == 4 && speedup > speedup_large_4t {
                    speedup_large_4t = speedup;
                }
                table.row(&[
                    label.into(),
                    format!("{t}"),
                    format!("{tile}"),
                    format!("{naive_us:.0}"),
                    format!("{par_us:.0}"),
                    format!("{speedup:.2}"),
                    format!("{efficiency:.2}"),
                    format!("{bitwise}"),
                    format!("{parity}"),
                ]);
                records.push(fields! {
                    "shape" => label,
                    "m" => m,
                    "k" => k,
                    "n" => n,
                    "threads" => t,
                    "tile" => tile,
                    "flops" => par_cost.flops,
                    "bytes_read" => par_cost.bytes_read,
                    "bytes_written" => par_cost.bytes_written,
                    "bitwise_equal" => bitwise,
                    "cost_parity" => parity,
                    // Hardware-dependent measurements ride along as
                    // strings: visible in saved records, invisible to
                    // the numeric baseline gate.
                    "wall_naive_us" => format!("{naive_us:.1}"),
                    "wall_par_us" => format!("{par_us:.1}"),
                    "speedup" => format!("{speedup:.3}"),
                });
            }
        }
    }

    // --- the other parallel kernels, same contract ------------------------
    let a = filled(48, 33, 3);
    let b = filled(33, 27, 4);
    let acc_init = filled(48, 27, 5);
    let mut acc_out = acc_init.clone();
    par::with_threads(4, || par::matmul_acc(&a, &b, &mut acc_out));
    let mut acc_want = acc_init.clone();
    {
        // Sequential accumulating reference: existing value + products in
        // ascending-k order, the documented matmul_acc semantics.
        let (m, kk, n) = (48, 33, 27);
        for i in 0..m {
            for x in 0..kk {
                let av = a.data()[i * kk + x];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    acc_want.data_mut()[i * n + j] += av * b.data()[x * n + j];
                }
            }
        }
    }
    let img = filled(3 * 14, 11, 8).reshape([3, 14, 11]).expect("3*14*11 elements");
    let (cols_seq, cols_cost) = acct::measure(|| img.im2col(3, 3, 2, 1));
    let (cols_par, cols_par_cost) =
        par::with_threads(4, || acct::measure(|| par::im2col(&img, 3, 3, 2, 1)));
    let grad = filled(cols_seq.dims()[0], cols_seq.dims()[1], 6);
    let (back_seq, back_cost) = acct::measure(|| grad.col2im(3, 14, 11, 3, 3, 2, 1));
    let (back_par, back_par_cost) =
        par::with_threads(4, || acct::measure(|| par::col2im(&grad, 3, 14, 11, 3, 3, 2, 1)));
    let x = filled(37, 19, 7);
    let map_ok = par::with_threads(4, || par::map(&x, |v| v * 0.5 + 0.125)).data()
        == x.map(|v| v * 0.5 + 0.125).data();
    let reduce_ok = par::with_threads(4, || par::sum_axis(&x, 0)).data() == x.sum_axis(0).data();
    let acc_ok = acc_out.data() == acc_want.data();
    let conv_ok = cols_par.data() == cols_seq.data()
        && back_par.data() == back_seq.data()
        && cols_par_cost == cols_cost
        && back_par_cost == back_cost;
    table.row(&[
        "aux kernels".into(),
        "4".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{}", acc_ok && conv_ok && map_ok && reduce_ok),
        format!("{conv_ok}"),
    ]);

    // --- register the backend under Category::Systems ---------------------
    let mut registry = Registry::new();
    for &t in &THREADS {
        registry
            .add(Technique {
                name: format!("par-gemm-{t}t"),
                category: Category::Systems,
                metrics: Metrics {
                    accuracy: 1.0, // bit-identical by construction
                    train_flops: 0,
                    inference_flops: large_flops,
                    memory_bytes: 4 * 256 * TILES[1] as u64, // packed panel scratch
                    energy_kwh: 0.0,
                },
                baseline: Some("par-gemm-1t".into()),
            })
            .expect("unique technique names");
    }
    let systems = registry.by_category(Category::Systems).len();

    let all_ok = bitwise_ok == cells
        && parity_ok == cells
        && acc_ok
        && conv_ok
        && map_ok
        && reduce_ok
        && systems == THREADS.len();

    records.push(fields! {
        "cells" => cells,
        "bitwise_equal_cells" => bitwise_ok,
        "cost_parity_cells" => parity_ok,
        "matmul_acc_ok" => acc_ok,
        "conv_kernels_ok" => conv_ok,
        "map_ok" => map_ok,
        "reduce_ok" => reduce_ok,
        "large_gemm_flops" => large_flops,
        "systems_techniques" => systems,
        "hardware_threads" => format!("{}", par::hardware_threads()),
        "speedup_large_4t" => format!("{speedup_large_4t:.3}"),
    });

    ExperimentResult {
        id: "e26".into(),
        title: "parallel + cache-blocked kernels: speedup with bit-identical results".into(),
        table,
        verdict: if all_ok {
            format!(
                "matches the claim: {cells}/{cells} thread×tile×shape cells are bit-identical \
                 to the naive kernel with exact measured-cost parity, and the matmul_acc / \
                 im2col / col2im / map / sum_axis parallel kernels hold the same contract; \
                 measured wall-clock speedup is reported per cell (hardware-dependent, \
                 excluded from the baseline gate)"
            )
        } else {
            format!(
                "PARTIAL: bitwise {bitwise_ok}/{cells} parity {parity_ok}/{cells} \
                 acc={acc_ok} conv={conv_ok} map={map_ok} reduce={reduce_ok}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use dl_prof::{Baseline, Tolerance};

    #[test]
    fn e26_matches_claim_and_gates_deterministically() {
        let a = super::run();
        assert!(a.verdict.contains("matches the claim"), "verdict: {}", a.verdict);
        let b = super::run();
        assert_eq!(a.verdict, b.verdict, "verdict must not depend on wall clock");
        // The baseline gate's view of two runs must be drift-free even
        // though wall-clock string fields differ.
        let ba = Baseline::from_records("e26", &a.title, &a.verdict, &a.records);
        let bb = Baseline::from_records("e26", &b.title, &b.verdict, &b.records);
        assert!(
            ba.diff(&bb, Tolerance::default()).is_empty(),
            "numeric records drifted between identical runs"
        );
    }

    #[test]
    fn e26_large_gemm_speedup_on_multicore_hardware() {
        // The wall-clock acceptance bar only means something with >= 4
        // real cores; on smaller machines the bitwise/parity gates above
        // still hold and this check is skipped.
        if super::par::hardware_threads() < 4 {
            eprintln!("skipping speedup assertion: fewer than 4 hardware threads");
            return;
        }
        let r = super::run();
        let summary = r.records.last().expect("summary record");
        let speedup: f64 = summary
            .iter()
            .find(|(k, _)| k == "speedup_large_4t")
            .and_then(|(_, v)| v.as_str())
            .and_then(|s| s.parse().ok())
            .expect("speedup field present");
        assert!(
            speedup >= 2.5,
            "large-GEMM speedup at 4 threads was only {speedup:.2}x"
        );
    }
}
