//! E25 — serving: dynamic batching, variant selection, load shedding.
//!
//! Claim: the classic serving tradeoff (throughput vs p99 latency vs
//! accuracy) is navigable from measured kernel costs. Three pillars:
//! (1) dynamic batching sustains ≥2× the offered rate of batch=1 serving
//! inside the same p99 SLO, because the batched dl-nn forward genuinely
//! amortizes weight traffic (measured, not modeled); (2) past the
//! saturation knee, accept-all queueing melts the tail while SLO-aware
//! admission keeps p99 bounded by shedding and downgrading; (3) the
//! variant family (int8 / pruned / distilled / morph / ensemble built
//! from one teacher) populates the tradeoff navigator under
//! `Category::Serving`, so a memory or latency budget picks a variant.

use crate::table::{f3, ExperimentResult, Table};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_obs::{fields, Fields, NullRecorder, TimelineRecorder, ToFields};
use dl_serve::{
    build_family, open_loop, serve, AdmissionPolicy, BatchPolicy, DeviceModel, FamilyConfig,
    LoadConfig, ServeConfig, ServeReport, VariantRegistry,
};

/// The p99 latency objective every sweep cell is judged against.
const SLO_S: f64 = 5e-5;
/// Requests per sustainable-rate cell.
const CELL_REQUESTS: usize = 1200;
/// Requests per overload cell (long enough for the backlog to melt).
const OVERLOAD_REQUESTS: usize = 2500;

fn serve_cell(
    registry: &mut VariantRegistry,
    eval: &dl_nn::Dataset,
    rate_rps: f64,
    seed: u64,
    requests: usize,
    cfg: &ServeConfig,
    rec: &dyn dl_obs::Recorder,
) -> ServeReport {
    let load = open_loop(
        &LoadConfig {
            rate_rps,
            requests,
            seed,
        },
        eval.x.dims()[0],
    );
    serve(registry, eval, &load, cfg, rec)
}

fn cell_record(label: &str, policy: &str, rate_rps: f64, r: &ServeReport) -> Fields {
    let mut f = fields! {
        "cell" => label,
        "policy" => policy,
        "rate_rps" => rate_rps,
    };
    f.extend(r.to_fields());
    f
}

fn cell_row(table: &mut Table, label: &str, policy: &str, rate_rps: f64, r: &ServeReport) {
    table.row(&[
        label.into(),
        policy.into(),
        format!("{rate_rps:.0}"),
        format!("{:.1}", r.p99_s * 1e6),
        format!("{:.0}", r.throughput_rps),
        f3(r.accuracy),
        format!("{}/{}", r.shed, r.downgraded),
        format!("{:.1}", r.mean_batch),
    ]);
}

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let data = dl_data::blobs(400, 5, 16, 2.4, 1.1, 90);
    let eval = dl_data::blobs(200, 5, 16, 2.4, 1.1, 91);
    let mut family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![16, 64, 64, 5],
            student_hidden: vec![16],
            prune_sparsity: 0.8,
            morph_budget: 1200,
            ensemble_members: 3,
            max_batch: 32,
            epochs: 24,
            seed: 92,
        },
    );
    let device = DeviceModel::nominal();
    let dynamic = BatchPolicy::dynamic(32, 8e-6);

    let mut table = Table::new(&[
        "cell", "policy", "rate rps", "p99 us", "thr rps", "acc", "shed/down", "mean batch",
    ]);
    let mut records: Vec<Fields> = Vec::new();

    // --- the served family -----------------------------------------------
    for v in &family.variants {
        let svc1 = device.service_time(v.cost_at(1));
        let b = v.max_batch();
        let svc_b_per_req = device.service_time(v.cost_at(b)) / b as f64;
        table.row(&[
            format!("variant {}", v.name),
            "family".into(),
            crate::table::bytes(v.weight_bytes),
            format!("{:.2}", svc1 * 1e6),
            format!("{:.0}", 1.0 / svc_b_per_req),
            f3(v.accuracy),
            "-".into(),
            "-".into(),
        ]);
        records.push(fields! {
            "variant" => v.name.clone(),
            "accuracy" => v.accuracy,
            "weight_bytes" => v.weight_bytes,
            "params" => v.model.param_count(),
            "flops1" => v.cost_at(1).flops,
            "svc1_s" => svc1,
            "svc_full_batch_per_req_s" => svc_b_per_req,
        });
    }

    // --- pillar 1: sustainable rate, batch=1 vs dynamic -------------------
    let base = &family.variants[0];
    let cap1 = 1.0 / device.service_time(base.cost_at(1));
    let cap_dyn = 32.0 / device.service_time(base.cost_at(32));
    let rates: Vec<f64> = [0.5, 1.0, 2.0, 4.0, 8.0].iter().map(|m| m * cap1).collect();
    let mut best_single = 0.0f64;
    let mut best_single_thr = 0.0f64;
    let mut best_dynamic = 0.0f64;
    let mut best_dynamic_thr = 0.0f64;
    for (i, &rate) in rates.iter().enumerate() {
        let seed = 100 + i as u64;
        for (policy_name, batch) in [("batch=1", BatchPolicy::no_batching()), ("dynamic", dynamic)]
        {
            let cfg = ServeConfig {
                batch,
                admission: AdmissionPolicy::AcceptAll,
                primary: "fp32-base".into(),
                device: device.clone(),
            };
            let r = serve_cell(
                &mut family,
                &eval,
                rate,
                seed,
                CELL_REQUESTS,
                &cfg,
                &NullRecorder::new(),
            );
            let label = format!("sweep x{:.1}", rate / cap1);
            cell_row(&mut table, &label, policy_name, rate, &r);
            records.push(cell_record(&label, policy_name, rate, &r));
            if r.p99_s <= SLO_S && r.shed == 0 {
                if policy_name == "batch=1" && rate > best_single {
                    best_single = rate;
                    best_single_thr = r.throughput_rps;
                }
                if policy_name == "dynamic" && rate > best_dynamic {
                    best_dynamic = rate;
                    best_dynamic_thr = r.throughput_rps;
                }
            }
        }
    }
    let speedup = if best_single_thr > 0.0 {
        best_dynamic_thr / best_single_thr
    } else {
        0.0
    };
    let batching_wins = best_single > 0.0 && best_dynamic > 0.0 && speedup >= 2.0;

    // --- pillar 2: past the knee, shed or melt ----------------------------
    let overload = 2.5 * cap_dyn;
    let melted = serve_cell(
        &mut family,
        &eval,
        overload,
        200,
        OVERLOAD_REQUESTS,
        &ServeConfig {
            batch: dynamic,
            admission: AdmissionPolicy::AcceptAll,
            primary: "fp32-base".into(),
            device: device.clone(),
        },
        &NullRecorder::new(),
    );
    cell_row(&mut table, "overload x2.5", "accept-all", overload, &melted);
    records.push(cell_record("overload", "accept-all", overload, &melted));
    // The SLO gate for the governed run reads the dl-obs histogram tails
    // (p99/p999), exactly what a production gate would scrape.
    let rec = TimelineRecorder::new();
    let governed = serve_cell(
        &mut family,
        &eval,
        overload,
        200,
        OVERLOAD_REQUESTS,
        &ServeConfig {
            batch: dynamic,
            admission: AdmissionPolicy::SloAware {
                p99_slo_s: SLO_S,
                headroom: 0.7,
                min_accuracy: 0.5,
            },
            primary: "fp32-base".into(),
            device: device.clone(),
        },
        &rec,
    );
    cell_row(&mut table, "overload x2.5", "slo-aware", overload, &governed);
    records.push(cell_record("overload", "slo-aware", overload, &governed));
    let hist = rec
        .histogram("serve.latency_s")
        .expect("engine records latencies");
    // Bucket-edge estimates are upper bounds within one power of two, so
    // the gate allows 2x on top of the SLO.
    let gate_ok = hist.p99() <= 2.0 * SLO_S && hist.p999() <= 2.0 * SLO_S;
    let shedding_holds = melted.p99_s > 2.0 * SLO_S
        && governed.shed > 0
        && governed.downgraded > 0
        && governed.p99_s <= SLO_S
        && gate_ok;

    // --- pillar 3: the family in the tradeoff navigator ------------------
    let mut registry = Registry::new();
    let fp32_bytes = family.variants[0].weight_bytes;
    for v in &family.variants {
        registry
            .add(Technique {
                name: format!("serve-{}", v.name),
                category: Category::Serving,
                metrics: Metrics {
                    accuracy: v.accuracy,
                    train_flops: 0,
                    inference_flops: v.cost_at(1).flops,
                    memory_bytes: v.weight_bytes,
                    energy_kwh: 0.0,
                },
                baseline: Some("serve-fp32-base".into()),
            })
            .expect("unique variant names");
    }
    let navigator = TradeoffNavigator::new(&registry);
    let frontier = navigator.frontier().len();
    let budget_pick = navigator
        .recommend(&[Constraint::MaxMemoryBytes(fp32_bytes / 3)])
        .map(|t| t.name.clone())
        .unwrap_or_default();
    let navigable = frontier > 0 && !budget_pick.is_empty() && budget_pick != "serve-fp32-base";
    table.row(&[
        "navigator".into(),
        "serving".into(),
        format!("budget {} B", fp32_bytes / 3),
        "-".into(),
        "-".into(),
        "-".into(),
        budget_pick.clone(),
        format!("frontier {frontier}"),
    ]);

    records.push(fields! {
        "cap1_rps" => cap1,
        "cap_dyn_rps" => cap_dyn,
        "slo_s" => SLO_S,
        "best_rate_batch1_rps" => best_single,
        "best_rate_dynamic_rps" => best_dynamic,
        "speedup_at_slo" => speedup,
        "melted_p99_s" => melted.p99_s,
        "governed_p99_s" => governed.p99_s,
        "governed_shed" => governed.shed,
        "governed_downgraded" => governed.downgraded,
        "governed_accuracy" => governed.accuracy,
        "hist_p99_s" => hist.p99(),
        "hist_p999_s" => hist.p999(),
        "frontier_size" => frontier,
        "serving_techniques" => registry.by_category(Category::Serving).len(),
        "recommended_under_budget" => budget_pick.clone(),
    });

    let ok = batching_wins && shedding_holds && navigable;
    ExperimentResult {
        id: "e25".into(),
        title: "serving: dynamic batching, variant selection, load shedding".into(),
        table,
        verdict: if ok {
            format!(
                "matches the claim: dynamic batching sustains {:.1}x the batch=1 throughput \
                 inside the {:.0}us p99 SLO, SLO-aware admission keeps overload p99 at {:.1}us \
                 (vs {:.0}us melted) by shedding {} and downgrading {}, and a memory budget \
                 picks {} from the frontier",
                speedup,
                SLO_S * 1e6,
                governed.p99_s * 1e6,
                melted.p99_s * 1e6,
                governed.shed,
                governed.downgraded,
                budget_pick
            )
        } else {
            format!(
                "PARTIAL: batching_wins={batching_wins} (speedup {speedup:.2}) \
                 shedding_holds={shedding_holds} navigable={navigable}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e25_serves_and_matches_claim() {
        let r = super::run();
        assert!(r.verdict.contains("matches the claim"), "verdict: {}", r.verdict);
        let summary = r.records.last().unwrap();
        let speedup = crate::table::field_f64(summary, "speedup_at_slo").unwrap();
        assert!(speedup >= 2.0, "dynamic batching speedup only {speedup}");
        let governed = crate::table::field_f64(summary, "governed_p99_s").unwrap();
        let slo = crate::table::field_f64(summary, "slo_s").unwrap();
        assert!(governed <= slo, "governed p99 {governed} busts slo {slo}");
    }

    #[test]
    fn e25_is_deterministic_byte_for_byte() {
        let a = super::run();
        let b = super::run();
        assert_eq!(a.to_json(), b.to_json(), "two runs must be byte-identical");
    }
}
