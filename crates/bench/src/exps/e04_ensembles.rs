//! E4 — fast ensemble training strategies (§2.1).
//!
//! Claim: snapshot / TreeNets / MotherNets approach independent-training
//! accuracy at a fraction of the training FLOPs; TreeNets and MotherNets
//! also cut memory and inference cost.

use crate::table::{f3, flops, ExperimentResult, Table};
use dl_ensemble::{independent, mothernet, snapshot, treenet, MotherNetConfig, TreeNetConfig};
use dl_nn::TrainConfig;
use dl_tensor::init;
use dl_obs::fields;

/// Runs the experiment.
pub fn run() -> ExperimentResult {
    let all = dl_data::digits_dataset(700, 0.08, 4);
    let (train, test) = all.split(0.3, 5);
    let members = 3;
    let epochs = 18;
    let mut table = Table::new(&[
        "strategy", "accuracy", "train flops", "params", "inference flops",
    ]);
    let mut records = Vec::new();
    let mut push = |r: &dl_ensemble::EnsembleReport| {
        table.row(&[
            r.strategy.into(),
            f3(r.accuracy),
            flops(r.train_flops),
            format!("{}", r.params),
            flops(r.inference_flops),
        ]);
        records.push(fields! {
            "strategy" => r.strategy, "accuracy" => r.accuracy,
            "train_flops" => r.train_flops, "params" => r.params,
            "inference_flops" => r.inference_flops,
        });
    };
    let (_, indep) = independent(
        &train,
        &test,
        &[144, 32, 10],
        members,
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        &mut init::rng(10),
    );
    push(&indep);
    // Snapshot's deal: ONE training run's budget (epochs total), split into
    // member cycles — vs. independent training which pays that budget per
    // member.
    let cycle_len = epochs / members;
    let (_, snap) = snapshot(
        &train,
        &test,
        &[144, 32, 10],
        members,
        cycle_len,
        11,
        &mut init::rng(11),
    );
    push(&snap);
    let (_, tree) = treenet(
        &train,
        &test,
        &TreeNetConfig {
            trunk_dims: vec![144, 32],
            branch_dims: vec![32, 16, 10],
            members,
            epochs,
            batch_size: 32,
            seed: 12,
        },
        &mut init::rng(12),
    );
    push(&tree);
    let (_, mother) = mothernet(
        &train,
        &test,
        &MotherNetConfig {
            member_hidden: vec![vec![24], vec![32], vec![40]],
            mother_epochs: epochs,
            finetune_epochs: 4,
            batch_size: 32,
            seed: 13,
            hatch_noise: 0.01,
        },
        &mut init::rng(13),
    );
    push(&mother);
    let cheap_enough = snap.train_flops * 2 < indep.train_flops
        && mother.train_flops < indep.train_flops;
    let close_enough = snap.accuracy > indep.accuracy - 0.1
        && mother.accuracy > indep.accuracy - 0.1;
    let sharing_saves = tree.params < indep.params && tree.inference_flops < indep.inference_flops;
    ExperimentResult {
        id: "e4".into(),
        title: "ensemble training: independent vs snapshot vs treenet vs mothernet".into(),
        table,
        verdict: if cheap_enough && close_enough && sharing_saves {
            "matches the claim: fast strategies near baseline accuracy at a fraction of \
             the FLOPs; treenet also cuts params and inference"
                .into()
        } else {
            format!(
                "PARTIAL: cheap={cheap_enough} close={close_enough} sharing={sharing_saves}"
            )
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_runs() {
        let r = super::run();
        assert_eq!(r.table.rows.len(), 4);
    }
}
