//! # dl-bench
//!
//! The experiment harness: one module per experiment in `DESIGN.md`'s
//! index (E1-E31), each regenerating one quantitative claim of the
//! tutorial. The `exp` binary dispatches on experiment id and prints the
//! result rows; every run also writes a JSON record under
//! `target/experiments/` which `EXPERIMENTS.md` references and E21's
//! tradeoff navigator re-reads. `exp <id> --trace <path>` additionally
//! exports the run as a Chrome `trace_event` file.
//!
//! Determinism: every experiment takes no inputs and uses fixed seeds, so
//! reruns reproduce identical rows (Criterion wall-clock benches in
//! `benches/` are the only timing-sensitive artifacts; E26 additionally
//! reports wall-clock speedups, but only as string fields that the
//! baseline gate ignores). Traces are timestamped by
//! `dl_obs::VirtualClock` simulated time, so they are byte-reproducible
//! too.

#![warn(missing_docs)]

pub mod exps;
pub mod table;

pub use table::{ExperimentResult, Table};

use dl_obs::{fields, NullRecorder, Recorder};

/// Runs one experiment by id (`"e1"`..`"e31"`). Returns its result.
///
/// # Errors
/// Returns an error string for unknown ids.
pub fn run_experiment(id: &str) -> Result<ExperimentResult, String> {
    run_experiment_traced(id, &NullRecorder::new())
}

/// Runs one experiment by id, emitting events onto `rec`: every
/// experiment becomes an `experiment` span, and the instrumented
/// experiments (E5's Local SGD sweep, E22's headline fault scenario, E27's
/// headline crash-storm cell, E28's monitored ramp-overload cell, E29's
/// traced crash-storm cell)
/// additionally thread the recorder into their training drivers.
///
/// # Errors
/// Returns an error string for unknown ids.
pub fn run_experiment_traced(id: &str, rec: &dyn Recorder) -> Result<ExperimentResult, String> {
    let canonical = id.to_ascii_lowercase();
    let span = rec.span_start(0, "experiment", fields! { "id" => canonical.as_str() });
    // Route per-kernel spans (kernel.matmul etc.) from the parallel
    // compute backend onto the same recorder for the span's duration.
    let result = dl_tensor::par::with_recorder(rec, || dispatch(&canonical, rec));
    match &result {
        Ok(r) => rec.span_end(span, fields! { "id" => canonical.as_str(), "verdict" => r.verdict.as_str() }),
        Err(e) => rec.span_end(span, fields! { "id" => canonical.as_str(), "error" => e.as_str() }),
    }
    result
}

fn dispatch(id: &str, rec: &dyn Recorder) -> Result<ExperimentResult, String> {
    match id {
        "e1" => Ok(exps::e01_quantization::run()),
        "e2" => Ok(exps::e02_pruning::run()),
        "e3" => Ok(exps::e03_distillation::run()),
        "e4" => Ok(exps::e04_ensembles::run()),
        "e5" => Ok(exps::e05_local_sgd::run_with(rec)),
        "e6" => Ok(exps::e06_gradient_compression::run()),
        "e7" => Ok(exps::e07_placement_search::run()),
        "e8" => Ok(exps::e08_morphnet::run()),
        "e9" => Ok(exps::e09_rematerialization::run()),
        "e10" => Ok(exps::e10_offloading::run()),
        "e11" => Ok(exps::e11_learned_index::run()),
        "e12" => Ok(exps::e12_learned_bloom::run()),
        "e13" => Ok(exps::e13_selectivity::run()),
        "e14" => Ok(exps::e14_knob_tuning::run()),
        "e15" => Ok(exps::e15_bias_measurement::run()),
        "e16" => Ok(exps::e16_bias_mitigation::run()),
        "e17" => Ok(exps::e17_tsne::run()),
        "e18" => Ok(exps::e18_lime::run()),
        "e19" => Ok(exps::e19_mistique::run()),
        "e20" => Ok(exps::e20_carbon::run()),
        "e21" => Ok(exps::e21_tradeoff_navigator::run()),
        "e22" => Ok(exps::e22_fault_tolerance::run_with(rec)),
        "e23" => Ok(exps::e23_observability::run()),
        "e24" => Ok(exps::e24_profiling::run()),
        "e25" => Ok(exps::e25_serving::run()),
        "e26" => Ok(exps::e26_parallel::run()),
        "e27" => Ok(exps::e27_cluster::run_with(rec)),
        "e28" => Ok(exps::e28_monitoring::run_with(rec)),
        "e29" => Ok(exps::e29_request_tracing::run_with(rec)),
        "e30" => Ok(exps::e30_weight_store::run()),
        "e31" => Ok(exps::e31_kernels::run()),
        "a1" => Ok(exps::a01_error_feedback::run()),
        "a2" => Ok(exps::a02_rmi_leaves::run()),
        "a3" => Ok(exps::a03_p3_slices::run()),
        "a4" => Ok(exps::a04_snapshot_cycles::run()),
        other => Err(format!(
            "unknown experiment {other:?}; expected e1..e31, a1..a4, or 'all'"
        )),
    }
}

/// All experiment ids in order: claims E1-E31, then ablations A1-A4.
pub fn all_ids() -> Vec<String> {
    let mut ids: Vec<String> = (1..=31).map(|i| format!("e{i}")).collect();
    ids.extend((1..=4).map(|i| format!("a{i}")));
    ids
}

/// One-line description per experiment id (for `exp --list`).
pub fn describe(id: &str) -> &'static str {
    match id {
        "e1" => "quantization: accuracy vs memory across bit widths",
        "e2" => "pruning: sparsity sweep with the accuracy cliff",
        "e3" => "knowledge distillation into small students",
        "e4" => "ensembles: independent vs snapshot vs treenet vs mothernet",
        "e5" => "Local SGD: sync period vs communication",
        "e6" => "gradient compression + P3 scheduling",
        "e7" => "FlexFlow-style placement search vs defaults",
        "e8" => "MorphNet-style width reallocation vs uniform scaling",
        "e9" => "rematerialization: sqrt(n) vs optimal DP",
        "e10" => "offloading: memory vs training-time overhead",
        "e11" => "learned index (RMI) vs B-tree",
        "e12" => "learned Bloom filter vs classic",
        "e13" => "selectivity estimation: histogram vs sample vs neural",
        "e14" => "DB knob tuning: Q-learning vs search baselines",
        "e15" => "bias knob sweep: injected vs measured bias",
        "e16" => "bias mitigation at three intervention points",
        "e17" => "t-SNE vs PCA: neighborhood preservation",
        "e18" => "LIME fidelity and feature recovery",
        "e19" => "Mistique-lite intermediate store footprint",
        "e20" => "carbon: size x hardware x region + scheduling",
        "e21" => "tradeoff navigator: Pareto frontier",
        "e22" => "fault tolerance: checkpoint interval vs completion time under crashes",
        "e23" => "observability: fault-recovery timeline and tracing overhead",
        "e24" => "profiling: critical path, lost-time attribution, measured costs",
        "e25" => "serving: dynamic batching, variant selection, load shedding",
        "e26" => "parallel + cache-blocked kernels: speedup, bit-identical results",
        "e27" => "cluster serving: replication, fault-aware routing, autoscaling",
        "e28" => "online monitoring: SLO burn-rate alerts, health, drift detection",
        "e29" => "request tracing: waterfalls, tail attribution, conservation",
        "e30" => "weight store: model artifacts, memory budget, cold-start tail",
        "e31" => "reduced-precision kernels: unrolled f32 FMA + native int8 GEMM",
        "a1" => "ablation: error feedback in gradient compression",
        "a2" => "ablation: RMI leaf budget",
        "a3" => "ablation: P3 slice granularity",
        "a4" => "ablation: snapshot cycle split + FGE",
        _ => "unknown",
    }
}
