//! The experiment runner.
//!
//! ```text
//! exp <id>... [--trace <path>] [--profile] [--profile-json <path>] [--baseline <dir>]
//! exp check --against <dir> [id...]
//! exp --list
//! ```
//!
//! Prints each experiment's table and verdict and writes a JSON record to
//! `target/experiments/<id>.json` (override the directory with
//! `DL_EXPERIMENT_DIR`).
//!
//! * `--trace <path>` — record every selected experiment onto one shared
//!   timeline and export it as a Chrome `trace_event` JSON file (loadable
//!   in `chrome://tracing` or Perfetto), with request-causality arrows
//!   (dispatch routing, hedge forks) drawn as flow events. If `<path>`
//!   is an existing directory, each experiment instead gets its own
//!   timeline, written to `<path>/<id>.trace.json`.
//! * `--profile` — after each experiment, analyze its trace with
//!   `dl-prof`: per-run wall-time decomposition (compute / sync /
//!   checkpoint / recovery / replay), the critical path and the fraction
//!   of wall time it explains, and per-worker lost-time attribution.
//! * `--profile-json <path>` — write the same analysis as JSON.
//! * `--monitor` — tap each experiment's recorder with a `dl-monitor`
//!   pipeline (default window grid, no rules) and print the live-series
//!   table it aggregated: per-replica and fleet p50/p99/p999 latency,
//!   admit/shed/downgrade counts, queue depth and health, plus any
//!   alerts fired.
//! * `--monitor-json <path>` — write the same live series as byte-stable
//!   JSON (one object per monitored experiment).
//! * `--requests` — tap each experiment's recorder with a `dl-trace`
//!   tracer and print its per-request view: outcome tallies, the exact
//!   phase decomposition at p50/p99 (admit / queue / batch-wait /
//!   service, plus retry and hedge waits), per-replica tail stats, and
//!   ASCII waterfalls for the slowest requests.
//! * `--requests-json <path>` — write the same per-request attribution
//!   as byte-stable JSON (one object per experiment).
//! * `--baseline <dir>` — snapshot each experiment's numeric records to
//!   `<dir>/BENCH_<ID>.json` for later `exp check` runs.
//! * `check --against <dir>` — re-run every experiment that has a
//!   `BENCH_<ID>.json` in `<dir>` (or just the listed ids) and diff the
//!   fresh records against the stored baseline under tolerance bands.
//!
//! Exit codes: `0` success, `1` an experiment failed, `2` bad usage
//! (unknown id or flag — detected before anything runs), `3` baseline
//! regression (`exp check` found drift).

use std::path::{Path, PathBuf};

use dl_bench::{all_ids, run_experiment, run_experiment_traced, Table};
use dl_monitor::{Monitor, MonitorConfig, MonitorReport};
use dl_obs::{export, NullRecorder, Recorder, TimelineRecorder, ToFields};
use dl_prof::{analyze, runs, Baseline, Tolerance, TraceProfile};
use dl_trace::Tracer;

/// Slowest-request waterfalls shown/exported per experiment.
const TOP_K_WATERFALLS: usize = 5;

/// Span names that mark one distributed training run on the timeline.
const RUN_SPANS: [&str; 2] = ["local_sgd", "resilient_local_sgd"];

struct Args {
    ids: Vec<String>,
    trace_path: Option<String>,
    profile: bool,
    profile_json: Option<String>,
    monitor: bool,
    monitor_json: Option<String>,
    requests: bool,
    requests_json: Option<String>,
    baseline_dir: Option<String>,
    against: Option<String>,
    check: bool,
    list: bool,
}

fn flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    match args.get(*i) {
        Some(p) if !p.starts_with('-') => Ok(p.clone()),
        _ => Err(format!("{flag} requires a path argument")),
    }
}

/// Parses the command line; returns an error message for bad usage.
fn parse(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        ids: Vec::new(),
        trace_path: None,
        profile: false,
        profile_json: None,
        monitor: false,
        monitor_json: None,
        requests: false,
        requests_json: None,
        baseline_dir: None,
        against: None,
        check: args.first().map(String::as_str) == Some("check"),
        list: false,
    };
    let mut i = usize::from(parsed.check);
    while i < args.len() {
        match args[i].as_str() {
            "--list" => parsed.list = true,
            "--profile" => parsed.profile = true,
            "--trace" => parsed.trace_path = Some(flag_value(args, &mut i, "--trace")?),
            "--profile-json" => {
                parsed.profile_json = Some(flag_value(args, &mut i, "--profile-json")?);
            }
            "--monitor" => parsed.monitor = true,
            "--monitor-json" => {
                parsed.monitor_json = Some(flag_value(args, &mut i, "--monitor-json")?);
            }
            "--requests" => parsed.requests = true,
            "--requests-json" => {
                parsed.requests_json = Some(flag_value(args, &mut i, "--requests-json")?);
            }
            "--baseline" => parsed.baseline_dir = Some(flag_value(args, &mut i, "--baseline")?),
            "--against" => parsed.against = Some(flag_value(args, &mut i, "--against")?),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            "all" => parsed.ids.extend(all_ids()),
            id => parsed.ids.push(id.to_string()),
        }
        i += 1;
    }
    if parsed.check {
        if parsed.against.is_none() {
            return Err("check requires --against <dir>".into());
        }
    } else if parsed.against.is_some() {
        return Err("--against only applies to the check subcommand".into());
    }
    if !parsed.check && !parsed.list && parsed.ids.is_empty() {
        return Err("no experiments selected".into());
    }
    // Validate every id up front so a typo exits before hours of runs.
    let known = all_ids();
    for id in &parsed.ids {
        let canonical = id.to_ascii_lowercase();
        if !known.contains(&canonical) {
            return Err(format!(
                "unknown experiment {id:?}; expected e1..e31, a1..a4, or 'all'"
            ));
        }
    }
    Ok(parsed)
}

/// Renders one run's wall-time decomposition and, when the run saw
/// crashes, the per-worker lost-time attribution.
fn render_profile(label: &str, p: &TraceProfile) -> String {
    let mut out = String::new();
    let mut phases = Table::new(&[
        "run", "total s", "compute s", "sync s", "ckpt s", "recovery s", "replay s",
        "crit path s", "explained",
    ]);
    phases.row(&[
        label.into(),
        format!("{:.4}", p.total_seconds),
        format!("{:.4}", p.compute_seconds),
        format!("{:.4}", p.sync_seconds),
        format!("{:.4}", p.checkpoint_seconds),
        format!("{:.4}", p.recovery_seconds),
        format!("{:.4}", p.replay_seconds),
        format!("{:.4}", p.critical_path_seconds()),
        format!("{:.1}%", p.explained_fraction() * 100.0),
    ]);
    out.push_str(&phases.render());
    if !p.workers.is_empty() {
        let mut workers = Table::new(&[
            "worker", "crashes", "rejoins", "recovery s", "replay s", "lost s", "share of lost",
        ]);
        for w in &p.workers {
            workers.row(&[
                format!("{}", w.worker),
                format!("{}", w.crashes),
                format!("{}", w.rejoins),
                format!("{:.4}", w.recovery_seconds),
                format!("{:.4}", w.replay_seconds),
                format!("{:.4}", w.lost_seconds()),
                format!("{:.1}%", w.share * 100.0),
            ]);
        }
        out.push('\n');
        out.push_str(&workers.render());
    }
    out
}

/// Extracts every distributed run window from `events` and profiles it.
fn profiles_of(events: &[dl_obs::Event]) -> Vec<(String, TraceProfile)> {
    let mut out = Vec::new();
    for name in RUN_SPANS {
        for (i, window) in runs(events, name).iter().enumerate() {
            out.push((format!("{name}#{i}"), analyze(window)));
        }
    }
    out
}

/// One experiment's profiles as a JSON object (baseline-grade formatting:
/// sorted keys inside each profile, stable ordering).
fn profiles_json(id: &str, profiles: &[(String, TraceProfile)]) -> String {
    let mut out = format!("{{\"id\": \"{id}\", \"profiles\": [");
    for (i, (label, p)) in profiles.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let mut fields = p.to_fields();
        fields.insert(0, ("run".to_string(), label.as_str().into()));
        out.push_str("{\"profile\": ");
        out.push_str(&export::fields_to_json(&fields));
        out.push_str(", \"workers\": [");
        for (j, w) in p.workers.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&export::fields_to_json(&w.to_fields()));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the monitor's live-series table: fleet first, then replicas,
/// then one line per alert fired.
fn render_monitor(id: &str, rep: &MonitorReport) -> String {
    let mut out = format!(
        "monitor: {id} ({} windows of {:.2e}s, {} lost)\n",
        rep.windows_closed, rep.window_s, rep.lost
    );
    let mut series = Table::new(&[
        "scope", "admit", "done", "shed", "downgr", "p50 us", "p99 us", "p999 us", "rate rps",
        "queue", "health",
    ]);
    for s in std::iter::once(&rep.fleet).chain(rep.replicas.iter()) {
        series.row(&[
            s.scope.clone(),
            format!("{}", s.admits),
            format!("{}", s.completions),
            format!("{}", s.sheds),
            format!("{}", s.downgrades),
            format!("{:.1}", s.p50_s * 1e6),
            format!("{:.1}", s.p99_s * 1e6),
            format!("{:.1}", s.p999_s * 1e6),
            format!("{:.1}", s.completion_rate_rps),
            format!("{:.2}", s.queue_depth),
            format!("{:.2}", s.health),
        ]);
    }
    out.push_str(&series.render());
    for a in &rep.alerts {
        out.push_str(&format!(
            "\nalert: {} [{}] {} at {:.6}s (value {:.4e}, threshold {:.4e})",
            a.rule,
            a.kind.label(),
            a.scope,
            a.at_s,
            a.value,
            a.threshold
        ));
    }
    if rep.alerts.is_empty() {
        out.push_str("\nalerts: none");
    }
    out.push('\n');
    out
}

/// One experiment's monitor report as a byte-stable JSON object.
fn monitor_json(id: &str, rep: &MonitorReport) -> String {
    let mut out = format!("{{\"id\": \"{id}\", \"monitor\": ");
    out.push_str(&export::fields_to_json(&rep.to_fields()));
    out.push_str(", \"series\": [");
    for (i, s) in std::iter::once(&rep.fleet)
        .chain(rep.replicas.iter())
        .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&export::fields_to_json(&s.to_fields()));
    }
    out.push_str("], \"alerts\": [");
    for (i, a) in rep.alerts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&export::fields_to_json(&a.to_fields()));
    }
    out.push_str("]}");
    out
}

/// Chrome trace JSON with request-causality arrows (dispatch routing,
/// hedge forks) drawn as flow events. Experiments with no request
/// traffic produce no arrows, so the output degrades to the plain trace.
fn chrome_trace_with_requests(events: &[dl_obs::Event]) -> String {
    let flows = dl_trace::flows(events);
    let mut buf = Vec::new();
    export::write_chrome_trace_with_flows(events, &flows, &mut buf)
        .expect("in-memory sink cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Maps a `BENCH_E05.json` file name back to its experiment id (`e5`).
fn id_of_baseline_file(name: &str) -> Option<String> {
    let stem = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    let mut id = String::new();
    let mut digits = String::new();
    for c in stem.chars() {
        if c.is_ascii_digit() {
            digits.push(c);
        } else {
            id.extend(c.to_lowercase());
        }
    }
    let trimmed = digits.trim_start_matches('0');
    id.push_str(if trimmed.is_empty() { "0" } else { trimmed });
    Some(id)
}

/// `exp check --against <dir>`: re-run and diff. Returns the exit code.
fn check(dir: &Path, ids: &[String]) -> i32 {
    let ids: Vec<String> = if ids.is_empty() {
        let mut found: Vec<String> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| id_of_baseline_file(&e.file_name().to_string_lossy()))
                .filter(|id| all_ids().contains(id))
                .collect(),
            Err(e) => {
                eprintln!("error: cannot read baseline dir {}: {e}", dir.display());
                return 2;
            }
        };
        found.sort();
        if found.is_empty() {
            eprintln!("error: no BENCH_*.json baselines in {}", dir.display());
            return 2;
        }
        found
    } else {
        ids.to_vec()
    };

    let mut failed = false;
    let mut drifted = false;
    for id in &ids {
        let stored = match Baseline::load(dir, id) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{id}: cannot load baseline: {e}");
                failed = true;
                continue;
            }
        };
        let result = match run_experiment(id) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{id}: experiment failed: {e}");
                failed = true;
                continue;
            }
        };
        let current = Baseline::from_records(id, &result.title, &result.verdict, &result.records);
        let drifts = stored.diff(&current, Tolerance::default());
        let verdict_changed = stored.verdict != current.verdict;
        if drifts.is_empty() && !verdict_changed {
            println!("{id}: ok ({} metrics within tolerance)", stored.metrics.len());
            continue;
        }
        drifted = true;
        println!("{id}: REGRESSION ({} drifts)", drifts.len() + usize::from(verdict_changed));
        for d in &drifts {
            println!("  {}", d.describe());
        }
        if verdict_changed {
            println!(
                "  verdict changed: {:?} -> {:?}",
                stored.verdict, current.verdict
            );
        }
    }
    if failed {
        1
    } else if drifted {
        3
    } else {
        0
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: exp <e1..e31|a1..a4|all> [more ids...] [--trace <path>] [--profile]\n\
             \x20           [--profile-json <path>] [--monitor] [--monitor-json <path>]\n\
             \x20           [--requests] [--requests-json <path>] [--baseline <dir>]\n\
             \x20      exp check --against <dir> [id...]\n\
             \x20      exp --list\n\
             exit codes: 0 ok, 1 experiment failed, 2 bad usage, 3 baseline regression"
        );
        std::process::exit(2);
    }
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.list {
        for id in all_ids() {
            println!("{id:<4} {}", dl_bench::describe(&id));
        }
        return;
    }
    if args.check {
        let dir = PathBuf::from(args.against.expect("checked in parse"));
        std::process::exit(check(&dir, &args.ids));
    }

    // A trace path naming an existing directory means one timeline (and
    // one trace file) per experiment; a file path means one shared
    // timeline across everything selected.
    let trace_dir = args
        .trace_path
        .as_ref()
        .filter(|p| Path::new(p.as_str()).is_dir())
        .cloned();
    let profiling = args.profile || args.profile_json.is_some();
    let shared = if (args.trace_path.is_some() && trace_dir.is_none()) || profiling {
        Some(TimelineRecorder::new())
    } else {
        None
    };
    let monitoring = args.monitor || args.monitor_json.is_some();
    let tracing = args.requests || args.requests_json.is_some();
    let null = NullRecorder::new();
    let mut failed = false;
    let mut all_profiles = Vec::new();
    let mut monitor_reports: Vec<(String, MonitorReport)> = Vec::new();
    let mut request_reports: Vec<(String, String)> = Vec::new();
    for id in &args.ids {
        let per_exp = trace_dir.as_ref().map(|_| TimelineRecorder::new());
        let inner: &dyn Recorder = per_exp
            .as_ref()
            .map(|t| t as &dyn Recorder)
            .or(shared.as_ref().map(|t| t as &dyn Recorder))
            .unwrap_or(&null);
        // The monitor taps whatever recorder the experiment would have
        // used — it forwards every event unchanged, so traces and
        // profiles are unaffected by attaching it.
        let monitor = monitoring.then(|| Monitor::new(inner, MonitorConfig::default()));
        let monitored: &dyn Recorder = monitor
            .as_ref()
            .map(|m| m as &dyn Recorder)
            .unwrap_or(inner);
        // The tracer stacks the same way: it retains a copy of request
        // lifecycle events and forwards the full stream unchanged.
        let tracer = tracing.then(|| Tracer::new(monitored));
        let rec: &dyn Recorder = tracer
            .as_ref()
            .map(|t| t as &dyn Recorder)
            .unwrap_or(monitored);
        let events_before = shared.as_ref().map_or(0, TimelineRecorder::len);
        match run_experiment_traced(id, rec) {
            Ok(result) => {
                println!("{}", result.render());
                match result.save() {
                    Ok(path) => println!("record: {}\n", path.display()),
                    Err(e) => eprintln!("warning: could not save record: {e}"),
                }
                if let Some(dir) = &args.baseline_dir {
                    let b = Baseline::from_records(id, &result.title, &result.verdict, &result.records);
                    match b.save(Path::new(dir)) {
                        Ok(path) => println!("baseline: {}\n", path.display()),
                        Err(e) => {
                            eprintln!("error: could not save baseline: {e}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
        if let Some(m) = &monitor {
            let rep = m.report();
            if args.monitor {
                println!("{}", render_monitor(id, &rep));
            }
            monitor_reports.push((id.clone(), rep));
        }
        if let Some(t) = &tracer {
            let set = t.traces();
            if args.requests {
                if set.requests.is_empty() {
                    println!("requests: {id} recorded no request traffic to trace\n");
                } else {
                    println!("requests: {id}");
                    println!("{}", dl_trace::render_requests(&set, TOP_K_WATERFALLS));
                }
            }
            request_reports.push((id.clone(), dl_trace::requests_json(&set, TOP_K_WATERFALLS)));
        }
        let events = match (&per_exp, &shared) {
            (Some(t), _) => t.events(),
            (None, Some(t)) => t.events()[events_before..].to_vec(),
            (None, None) => Vec::new(),
        };
        if profiling {
            let profiles = profiles_of(&events);
            if args.profile {
                if profiles.is_empty() {
                    println!("profile: {id} recorded no distributed runs to analyze\n");
                }
                for (label, p) in &profiles {
                    println!("profile: {id} {label}");
                    println!("{}", render_profile(label, p));
                }
            }
            all_profiles.push((id.clone(), profiles));
        }
        if let (Some(dir), Some(t)) = (&trace_dir, &per_exp) {
            let path = Path::new(dir).join(format!("{id}.trace.json"));
            match std::fs::write(&path, chrome_trace_with_requests(&t.events())) {
                Ok(()) => println!("trace: {} ({} events)", path.display(), t.len()),
                Err(e) => {
                    eprintln!("error: could not write trace to {}: {e}", path.display());
                    failed = true;
                }
            }
        }
    }
    if let Some(path) = &args.requests_json {
        let body = request_reports
            .iter()
            .map(|(id, json)| format!("{{\"id\": \"{id}\", \"requests\": {json}}}"))
            .collect::<Vec<_>>()
            .join(",\n  ");
        match std::fs::write(path, format!("[\n  {body}\n]\n")) {
            Ok(()) => println!("requests json: {path}"),
            Err(e) => {
                eprintln!("error: could not write requests json to {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.monitor_json {
        let body = monitor_reports
            .iter()
            .map(|(id, rep)| monitor_json(id, rep))
            .collect::<Vec<_>>()
            .join(",\n  ");
        match std::fs::write(path, format!("[\n  {body}\n]\n")) {
            Ok(()) => println!("monitor json: {path}"),
            Err(e) => {
                eprintln!("error: could not write monitor json to {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.profile_json {
        let body = all_profiles
            .iter()
            .map(|(id, profiles)| profiles_json(id, profiles))
            .collect::<Vec<_>>()
            .join(",\n  ");
        match std::fs::write(path, format!("[\n  {body}\n]\n")) {
            Ok(()) => println!("profile json: {path}"),
            Err(e) => {
                eprintln!("error: could not write profile json to {path}: {e}");
                failed = true;
            }
        }
    }
    if let (Some(path), None, Some(timeline)) = (&args.trace_path, &trace_dir, &shared) {
        let trace = chrome_trace_with_requests(&timeline.events());
        match std::fs::write(path, trace) {
            Ok(()) => println!("trace: {path} ({} events)", timeline.len()),
            Err(e) => {
                eprintln!("error: could not write trace to {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
