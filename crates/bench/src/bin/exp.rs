//! The experiment runner: `exp <id>... [--trace <path>]` or `exp all`.
//!
//! Prints each experiment's table and verdict and writes a JSON record to
//! `target/experiments/<id>.json` (override the directory with
//! `DL_EXPERIMENT_DIR`). With `--trace <path>`, every selected experiment
//! is recorded onto one shared timeline and exported as a Chrome
//! `trace_event` JSON file (loadable in `chrome://tracing` or Perfetto).
//!
//! Exit codes: `0` success, `1` an experiment failed, `2` bad usage
//! (unknown id or flag — detected before anything runs).

use dl_bench::{all_ids, run_experiment_traced};
use dl_obs::{export, NullRecorder, Recorder, TimelineRecorder};

struct Args {
    ids: Vec<String>,
    trace_path: Option<String>,
    list: bool,
}

/// Parses the command line; returns an error message for bad usage.
fn parse(args: &[String]) -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut trace_path = None;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) if !p.starts_with('-') => trace_path = Some(p.clone()),
                    _ => return Err("--trace requires a file path".into()),
                }
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            "all" => ids.extend(all_ids()),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if !list && ids.is_empty() {
        return Err("no experiments selected".into());
    }
    // Validate every id up front so a typo exits before hours of runs.
    let known = all_ids();
    for id in &ids {
        let canonical = id.to_ascii_lowercase();
        if !known.contains(&canonical) {
            return Err(format!(
                "unknown experiment {id:?}; expected e1..e23, a1..a4, or 'all'"
            ));
        }
    }
    Ok(Args {
        ids,
        trace_path,
        list,
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: exp <e1..e23|a1..a4|all> [more ids...] [--trace <path>] | --list");
        std::process::exit(2);
    }
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.list {
        for id in all_ids() {
            println!("{id:<4} {}", dl_bench::describe(&id));
        }
        return;
    }

    let timeline = args.trace_path.as_ref().map(|_| TimelineRecorder::new());
    let null = NullRecorder::new();
    let mut failed = false;
    for id in &args.ids {
        let rec: &dyn Recorder = timeline.as_ref().map_or(&null, |t| t as &dyn Recorder);
        match run_experiment_traced(id, rec) {
            Ok(result) => {
                println!("{}", result.render());
                match result.save() {
                    Ok(path) => println!("record: {}\n", path.display()),
                    Err(e) => eprintln!("warning: could not save record: {e}"),
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if let (Some(path), Some(timeline)) = (&args.trace_path, &timeline) {
        let trace = export::chrome_trace_to_string(&timeline.events());
        match std::fs::write(path, trace) {
            Ok(()) => println!("trace: {path} ({} events)", timeline.len()),
            Err(e) => {
                eprintln!("error: could not write trace to {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
