//! The experiment runner: `exp <id>...` or `exp all`.
//!
//! Prints each experiment's table and verdict and writes a JSON record to
//! `target/experiments/<id>.json` (override the directory with
//! `DL_EXPERIMENT_DIR`).

use dl_bench::{all_ids, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: exp <e1..e22|a1..a4|all> [more ids...] | --list");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in all_ids() {
            println!("{id:<4} {}", dl_bench::describe(&id));
        }
        return;
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        all_ids()
    } else {
        args
    };
    let mut failed = false;
    for id in ids {
        match run_experiment(&id) {
            Ok(result) => {
                println!("{}", result.render());
                match result.save() {
                    Ok(path) => println!("record: {}\n", path.display()),
                    Err(e) => eprintln!("warning: could not save record: {e}"),
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
