//! Result tables: pretty terminal rendering + JSON persistence.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// A rendered experiment table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// A complete experiment result: identity, headline, table, and the
/// structured records E21 consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`e1`..`e22`).
    pub id: String,
    /// One-line title (the tutorial claim being regenerated).
    pub title: String,
    /// The result table.
    pub table: Table,
    /// One-sentence verdict comparing measurement to the claim.
    pub verdict: String,
    /// Machine-readable measurements for downstream use (E21).
    pub records: Vec<serde_json::Value>,
}

impl ExperimentResult {
    /// Renders the full report block.
    pub fn render(&self) -> String {
        format!(
            "== {} — {}\n\n{}\nverdict: {}\n",
            self.id.to_uppercase(),
            self.title,
            self.table.render(),
            self.verdict
        )
    }

    /// Directory where experiment JSON records are written.
    pub fn output_dir() -> PathBuf {
        let dir = std::env::var("DL_EXPERIMENT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/experiments"));
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    /// Writes the JSON record to `target/experiments/<id>.json`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = Self::output_dir().join(format!("{}.json", self.id));
        std::fs::write(&path, serde_json::to_string_pretty(self).expect("serializable"))?;
        Ok(path)
    }
}

/// Converts a [`dl_obs::Fields`] list (the shared event-field schema that
/// every report's `ToFields` impl produces) into a JSON record object.
///
/// This is the bridge between span annotations and the machine-readable
/// records under `target/experiments/`: experiments call
/// `fields_json(&report.to_fields())` instead of hand-rolling the same
/// key-by-key `json!` literal a second time.
pub fn fields_json(fields: &dl_obs::Fields) -> serde_json::Value {
    use dl_obs::FieldValue;
    let mut map = serde_json::Map::new();
    for (k, v) in fields {
        let jv = match v {
            FieldValue::U64(n) => serde_json::Value::from(*n),
            FieldValue::I64(n) => serde_json::Value::from(*n),
            FieldValue::F64(x) => serde_json::Value::from(*x),
            FieldValue::Bool(b) => serde_json::Value::from(*b),
            FieldValue::Str(s) => serde_json::Value::from(s.clone()),
        };
        map.insert(k.clone(), jv);
    }
    serde_json::Value::Object(map)
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a byte count human-readably.
pub fn bytes(v: u64) -> String {
    match v {
        v if v >= 1 << 30 => format!("{:.2} GiB", v as f64 / (1u64 << 30) as f64),
        v if v >= 1 << 20 => format!("{:.2} MiB", v as f64 / (1u64 << 20) as f64),
        v if v >= 1 << 10 => format!("{:.2} KiB", v as f64 / 1024.0),
        v => format!("{v} B"),
    }
}

/// Formats a FLOP count human-readably.
pub fn flops(v: u64) -> String {
    match v {
        v if v >= 1_000_000_000_000 => format!("{:.2} TFLOP", v as f64 / 1e12),
        v if v >= 1_000_000_000 => format!("{:.2} GFLOP", v as f64 / 1e9),
        v if v >= 1_000_000 => format!("{:.2} MFLOP", v as f64 / 1e6),
        v => format!("{v} FLOP"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.00 KiB");
        assert_eq!(bytes(3 << 20), "3.00 MiB");
        assert_eq!(flops(500), "500 FLOP");
        assert_eq!(flops(2_500_000), "2.50 MFLOP");
        assert_eq!(flops(3_000_000_000_000), "3.00 TFLOP");
    }

    #[test]
    fn result_saves_json() {
        let r = ExperimentResult {
            id: "etest".into(),
            title: "test".into(),
            table: Table::new(&["x"]),
            verdict: "ok".into(),
            records: vec![],
        };
        let path = r.save().unwrap();
        assert!(path.exists());
        let back: ExperimentResult =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.id, "etest");
        std::fs::remove_file(path).ok();
    }
}
