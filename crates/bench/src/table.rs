//! Result tables: pretty terminal rendering + JSON persistence.
//!
//! Persistence is hand-rolled on top of `dl-obs`'s byte-stable field
//! encoding (sorted keys, shortest round-trip floats) rather than any
//! serde machinery, so a seeded experiment writes the identical JSON file
//! on every run and the perf baselines can diff runs without noise.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// A complete experiment result: identity, headline, table, and the
/// structured records E21 and the perf baselines consume.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (`e1`..`e25`).
    pub id: String,
    /// One-line title (the tutorial claim being regenerated).
    pub title: String,
    /// The result table.
    pub table: Table,
    /// One-sentence verdict comparing measurement to the claim.
    pub verdict: String,
    /// Machine-readable measurements under the shared event-field schema
    /// (one flat record per measurement point).
    pub records: Vec<dl_obs::Fields>,
}

impl ExperimentResult {
    /// Renders the full report block.
    pub fn render(&self) -> String {
        format!(
            "== {} — {}\n\n{}\nverdict: {}\n",
            self.id.to_uppercase(),
            self.title,
            self.table.render(),
            self.verdict
        )
    }

    /// Directory where experiment JSON records are written.
    pub fn output_dir() -> PathBuf {
        let dir = std::env::var("DL_EXPERIMENT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/experiments"));
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    /// The full result as byte-stable JSON: fixed top-level key order,
    /// records encoded with sorted keys via `dl_obs::export`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(&self.id));
        out.push_str("  \"records\": [");
        for (i, record) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&dl_obs::export::fields_to_json(record));
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"table\": {\"headers\": ");
        write_str_array(&mut out, &self.table.headers);
        out.push_str(", \"rows\": [");
        for (i, row) in self.table.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_str_array(&mut out, row);
        }
        out.push_str("]},\n");
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"verdict\": {}", json_str(&self.verdict));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON record to `target/experiments/<id>.json`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = Self::output_dir().join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
}

/// Looks up a numeric field in a record (integers widen, bools count as
/// 0/1) — the replacement for indexing into a dynamic JSON value.
pub fn field_f64(fields: &dl_obs::Fields, key: &str) -> Option<f64> {
    use dl_obs::FieldValue;
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::Bool(b) => Some(f64::from(u8::from(*b))),
        other => other.as_f64(),
    })
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a byte count human-readably.
pub fn bytes(v: u64) -> String {
    match v {
        v if v >= 1 << 30 => format!("{:.2} GiB", v as f64 / (1u64 << 30) as f64),
        v if v >= 1 << 20 => format!("{:.2} MiB", v as f64 / (1u64 << 20) as f64),
        v if v >= 1 << 10 => format!("{:.2} KiB", v as f64 / 1024.0),
        v => format!("{v} B"),
    }
}

/// Formats a FLOP count human-readably.
pub fn flops(v: u64) -> String {
    match v {
        v if v >= 1_000_000_000_000 => format!("{:.2} TFLOP", v as f64 / 1e12),
        v if v >= 1_000_000_000 => format!("{:.2} GFLOP", v as f64 / 1e9),
        v if v >= 1_000_000 => format!("{:.2} MFLOP", v as f64 / 1e6),
        v => format!("{v} FLOP"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.00 KiB");
        assert_eq!(bytes(3 << 20), "3.00 MiB");
        assert_eq!(flops(500), "500 FLOP");
        assert_eq!(flops(2_500_000), "2.50 MFLOP");
        assert_eq!(flops(3_000_000_000_000), "3.00 TFLOP");
    }

    #[test]
    fn result_saves_json() {
        use dl_obs::fields;
        let mut table = Table::new(&["x"]);
        table.row(&["quoted \"cell\"".into()]);
        let r = ExperimentResult {
            id: "etest".into(),
            title: "test".into(),
            table,
            verdict: "ok".into(),
            records: vec![fields! { "accuracy" => 0.875, "bits" => 8usize }],
        };
        let path = r.save().unwrap();
        assert!(path.exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, r.to_json(), "save writes exactly to_json()");
        assert!(text.contains("\"id\": \"etest\""));
        assert!(text.contains(r#"{"accuracy":0.875,"bits":8}"#));
        assert!(text.contains(r#"quoted \"cell\""#));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn to_json_is_byte_stable_and_field_lookup_widens() {
        use dl_obs::fields;
        let record = fields! { "n" => 3usize, "ok" => true, "name" => "x" };
        let r = ExperimentResult {
            id: "e0".into(),
            title: "t".into(),
            table: Table::new(&["a"]),
            verdict: "v".into(),
            records: vec![record.clone()],
        };
        assert_eq!(r.to_json(), r.clone().to_json());
        assert_eq!(field_f64(&record, "n"), Some(3.0));
        assert_eq!(field_f64(&record, "ok"), Some(1.0));
        assert_eq!(field_f64(&record, "name"), None);
        assert_eq!(field_f64(&record, "missing"), None);
    }
}
