//! Group fairness metrics for binary classifiers.
//!
//! All metrics compare exactly two groups (0 = reference/majority,
//! 1 = protected/minority), matching the census generator in `dl-data`.

/// Per-group confusion counts for a binary task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl GroupConfusion {
    /// Samples in the group.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Predicted-positive rate: `(TP + FP) / total`.
    pub fn positive_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.fp) as f64 / t as f64
        }
    }

    /// True-positive rate (recall): `TP / (TP + FN)`.
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// False-positive rate: `FP / (FP + TN)`.
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            0.0
        } else {
            self.fp as f64 / n as f64
        }
    }

    /// Precision: `TP / (TP + FP)`; 0 when nothing predicted positive.
    pub fn precision(&self) -> f64 {
        let p = self.tp + self.fp;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// Folds another slice's counts in. Confusion counts are integers,
    /// so windowed/streaming aggregation is *exact*: merging per-window
    /// confusions equals the full-batch confusion, and therefore every
    /// derived rate and gap is bit-identical too.
    pub fn merge(&mut self, other: &GroupConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Accuracy within the group.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }
}

/// A full two-group fairness report.
#[derive(Debug, Clone, Default)]
pub struct FairnessReport {
    /// Confusion for group 0 (reference).
    pub group0: GroupConfusion,
    /// Confusion for group 1 (protected).
    pub group1: GroupConfusion,
}

impl FairnessReport {
    /// Builds the report from parallel predictions, labels and groups
    /// (all values binary).
    ///
    /// # Panics
    /// Panics on length mismatch or non-binary values.
    pub fn new(predictions: &[usize], labels: &[usize], groups: &[usize]) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        assert_eq!(predictions.len(), groups.len(), "length mismatch");
        let mut g = [GroupConfusion::default(); 2];
        for ((&p, &l), &grp) in predictions.iter().zip(labels).zip(groups) {
            assert!(p <= 1 && l <= 1 && grp <= 1, "binary values required");
            let c = &mut g[grp];
            match (p, l) {
                (1, 1) => c.tp += 1,
                (1, 0) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (0, 1) => c.fn_ += 1,
                _ => unreachable!(),
            }
        }
        FairnessReport {
            group0: g[0],
            group1: g[1],
        }
    }

    /// Folds another window's report in (see [`GroupConfusion::merge`]):
    /// the streaming path for fairness-over-served-traffic, where slices
    /// arrive per monitor window and the fold must equal the full batch.
    pub fn merge(&mut self, other: &FairnessReport) {
        self.group0.merge(&other.group0);
        self.group1.merge(&other.group1);
    }

    /// Demographic-parity difference:
    /// `P(pred=1 | group=0) - P(pred=1 | group=1)`. Zero is parity;
    /// positive values favor group 0.
    pub fn demographic_parity_diff(&self) -> f64 {
        self.group0.positive_rate() - self.group1.positive_rate()
    }

    /// Disparate-impact ratio:
    /// `P(pred=1 | group=1) / P(pred=1 | group=0)`. The 80% rule flags
    /// values below 0.8. Returns infinity when group 0 never receives a
    /// positive prediction but group 1 does.
    pub fn disparate_impact(&self) -> f64 {
        let p0 = self.group0.positive_rate();
        let p1 = self.group1.positive_rate();
        if p0 == 0.0 {
            if p1 == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            p1 / p0
        }
    }

    /// Equal-opportunity difference: TPR(group 0) - TPR(group 1).
    pub fn equal_opportunity_diff(&self) -> f64 {
        self.group0.tpr() - self.group1.tpr()
    }

    /// Equalized-odds distance: the larger of the absolute TPR and FPR
    /// gaps (0 = equalized odds holds).
    pub fn equalized_odds_gap(&self) -> f64 {
        let tpr_gap = (self.group0.tpr() - self.group1.tpr()).abs();
        let fpr_gap = (self.group0.fpr() - self.group1.fpr()).abs();
        tpr_gap.max(fpr_gap)
    }

    /// Calibration gap: difference in precision between groups (a model is
    /// group-calibrated when a positive prediction means the same thing
    /// for both groups).
    pub fn calibration_gap(&self) -> f64 {
        (self.group0.precision() - self.group1.precision()).abs()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct = self.group0.tp + self.group0.tn + self.group1.tp + self.group1.tn;
        let total = self.group0.total() + self.group1.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly fair predictions: identical behaviour per group.
    fn fair_case() -> FairnessReport {
        // group 0: 2 TP, 1 FP, 2 TN, 1 FN; group 1 mirrors it
        let preds = [1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0];
        let labels = [1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1];
        let groups = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        FairnessReport::new(&preds, &labels, &groups)
    }

    #[test]
    fn fair_predictions_score_zero_gaps() {
        let r = fair_case();
        assert_eq!(r.demographic_parity_diff(), 0.0);
        assert_eq!(r.disparate_impact(), 1.0);
        assert_eq!(r.equal_opportunity_diff(), 0.0);
        assert_eq!(r.equalized_odds_gap(), 0.0);
        assert_eq!(r.calibration_gap(), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let r = fair_case();
        assert_eq!(r.group0.tp, 2);
        assert_eq!(r.group0.fp, 1);
        assert_eq!(r.group0.tn, 2);
        assert_eq!(r.group0.fn_, 1);
        assert_eq!(r.group0.total(), 6);
    }

    #[test]
    fn biased_predictions_show_positive_gaps() {
        // group 0 always predicted positive, group 1 never
        let preds = [1, 1, 1, 0, 0, 0];
        let labels = [1, 0, 1, 1, 0, 1];
        let groups = [0, 0, 0, 1, 1, 1];
        let r = FairnessReport::new(&preds, &labels, &groups);
        assert_eq!(r.demographic_parity_diff(), 1.0);
        assert_eq!(r.disparate_impact(), 0.0);
        assert_eq!(r.equal_opportunity_diff(), 1.0);
        assert_eq!(r.equalized_odds_gap(), 1.0);
    }

    #[test]
    fn rates_handle_empty_denominators() {
        let c = GroupConfusion::default();
        assert_eq!(c.positive_rate(), 0.0);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn disparate_impact_edge_cases() {
        // neither group predicted positive: ratio defined as 1 (parity)
        let r = FairnessReport::new(&[0, 0], &[0, 1], &[0, 1]);
        assert_eq!(r.disparate_impact(), 1.0);
        // only group 1 positive: infinite ratio
        let r = FairnessReport::new(&[0, 1], &[0, 1], &[0, 1]);
        assert!(r.disparate_impact().is_infinite());
    }

    #[test]
    fn accuracy_pools_groups() {
        let r = fair_case();
        assert!((r.accuracy() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "binary values required")]
    fn rejects_nonbinary() {
        FairnessReport::new(&[2], &[0], &[0]);
    }

    proptest::proptest! {
        /// All rates stay in [0,1] and all gaps in [-1,1] for arbitrary
        /// binary prediction/label/group triples.
        #[test]
        fn metric_bounds(
            rows in proptest::collection::vec((0usize..2, 0usize..2, 0usize..2), 1..200),
        ) {
            let preds: Vec<usize> = rows.iter().map(|r| r.0).collect();
            let labels: Vec<usize> = rows.iter().map(|r| r.1).collect();
            let groups: Vec<usize> = rows.iter().map(|r| r.2).collect();
            let r = FairnessReport::new(&preds, &labels, &groups);
            for c in [r.group0, r.group1] {
                for rate in [c.positive_rate(), c.tpr(), c.fpr(), c.precision(), c.accuracy()] {
                    proptest::prop_assert!((0.0..=1.0).contains(&rate), "rate {}", rate);
                }
            }
            proptest::prop_assert!(r.demographic_parity_diff().abs() <= 1.0);
            proptest::prop_assert!(r.equal_opportunity_diff().abs() <= 1.0);
            proptest::prop_assert!((0.0..=1.0).contains(&r.equalized_odds_gap()));
            proptest::prop_assert!((0.0..=1.0).contains(&r.calibration_gap()));
            proptest::prop_assert!((0.0..=1.0).contains(&r.accuracy()));
            proptest::prop_assert!(r.disparate_impact() >= 0.0);
        }

        /// Swapping the two groups negates the signed gaps and preserves
        /// the absolute ones.
        #[test]
        fn group_swap_symmetry(
            rows in proptest::collection::vec((0usize..2, 0usize..2, 0usize..2), 1..150),
        ) {
            let preds: Vec<usize> = rows.iter().map(|r| r.0).collect();
            let labels: Vec<usize> = rows.iter().map(|r| r.1).collect();
            let groups: Vec<usize> = rows.iter().map(|r| r.2).collect();
            let swapped: Vec<usize> = groups.iter().map(|&g| 1 - g).collect();
            let a = FairnessReport::new(&preds, &labels, &groups);
            let b = FairnessReport::new(&preds, &labels, &swapped);
            proptest::prop_assert!(
                (a.demographic_parity_diff() + b.demographic_parity_diff()).abs() < 1e-12
            );
            proptest::prop_assert!(
                (a.equalized_odds_gap() - b.equalized_odds_gap()).abs() < 1e-12
            );
            proptest::prop_assert!((a.accuracy() - b.accuracy()).abs() < 1e-12);
        }
    }

    #[test]
    fn windowed_streaming_merge_equals_full_batch_on_census() {
        use dl_data::{CensusConfig, CensusData};
        let census = CensusData::generate(CensusConfig {
            n: 1997, // deliberately not a multiple of any window below
            bias: 0.5,
            seed: 3,
            ..CensusConfig::default()
        });
        // Deterministic synthetic decisions (a cheap hash of the row
        // index): the equality below is structural, so any binary
        // prediction stream exercises it.
        let preds: Vec<usize> = (0..census.labels.len())
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 7) & 1)
            .collect();
        let full = FairnessReport::new(&preds, &census.labels, &census.groups);
        for window in [64usize, 250, 1024] {
            let mut folded = FairnessReport::default();
            for ((p, l), g) in preds
                .chunks(window)
                .zip(census.labels.chunks(window))
                .zip(census.groups.chunks(window))
            {
                folded.merge(&FairnessReport::new(p, l, g));
            }
            assert_eq!(folded.group0, full.group0, "window {window}");
            assert_eq!(folded.group1, full.group1, "window {window}");
            // Integer counts -> every derived metric is bit-identical.
            for (a, b) in [
                (folded.demographic_parity_diff(), full.demographic_parity_diff()),
                (folded.equalized_odds_gap(), full.equalized_odds_gap()),
                (folded.equal_opportunity_diff(), full.equal_opportunity_diff()),
                (folded.disparate_impact(), full.disparate_impact()),
                (folded.accuracy(), full.accuracy()),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "window {window}");
            }
        }
    }

    #[test]
    fn trained_model_on_biased_census_shows_gap() {
        use dl_data::{CensusConfig, CensusData};
        use dl_nn::{Optimizer, TrainConfig, Trainer};
        use dl_tensor::init::rng;
        let census = CensusData::generate(CensusConfig {
            n: 2000,
            bias: 0.6,
            seed: 0,
            ..CensusConfig::default()
        });
        let data = census.to_dataset();
        let mut r = rng(1);
        let mut net = dl_nn::Network::mlp(&[6, 16, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let preds = net.predict(&data.x);
        let report = FairnessReport::new(&preds, &census.labels, &census.groups);
        // the model learns the injected bias (partly via the proxy column)
        assert!(
            report.demographic_parity_diff() > 0.15,
            "expected a substantial parity gap, got {}",
            report.demographic_parity_diff()
        );
    }
}
