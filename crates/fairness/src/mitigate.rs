//! Bias mitigation at the three intervention points the tutorial surveys:
//! before training (reweighing), during training (adversarial debiasing),
//! and after training (threshold adjustment).

use crate::metrics::FairnessReport;
use dl_nn::{
    loss::{one_hot, Loss},
    Dataset, Network, Optimizer,
};
use dl_tensor::{init, Tensor};

/// A mitigation outcome: the debiased predictions plus before/after
/// fairness reports.
#[derive(Debug, Clone)]
pub struct MitigationResult {
    /// Debiased predictions on the evaluation data.
    pub predictions: Vec<usize>,
    /// Fairness report of the debiased predictions.
    pub report: FairnessReport,
}

// ----------------------------------------------------------------------
// Pre-processing: reweighing
// ----------------------------------------------------------------------

/// Kamiran-Calders reweighing: weight each `(group, label)` cell by
/// `P(group) * P(label) / P(group, label)`, which makes group and label
/// statistically independent in the weighted distribution.
///
/// Returns one weight per sample (mean ~1).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn reweigh(labels: &[usize], groups: &[usize]) -> Vec<f64> {
    assert_eq!(labels.len(), groups.len(), "length mismatch");
    assert!(!labels.is_empty(), "cannot reweigh an empty dataset");
    let n = labels.len() as f64;
    let mut group_count = [0usize; 2];
    let mut label_count = [0usize; 2];
    let mut joint = [[0usize; 2]; 2];
    for (&l, &g) in labels.iter().zip(groups) {
        assert!(l <= 1 && g <= 1, "binary values required");
        group_count[g] += 1;
        label_count[l] += 1;
        joint[g][l] += 1;
    }
    labels
        .iter()
        .zip(groups)
        .map(|(&l, &g)| {
            let p_g = group_count[g] as f64 / n;
            let p_l = label_count[l] as f64 / n;
            let p_gl = (joint[g][l] as f64 / n).max(1e-12);
            p_g * p_l / p_gl
        })
        .collect()
}

/// Trains a classifier on reweighed data (weights realized by weighted
/// batch sampling) and evaluates its fairness.
pub fn train_reweighed(
    data: &Dataset,
    groups: &[usize],
    epochs: usize,
    seed: u64,
) -> MitigationResult {
    let weights = reweigh(&data.y, groups);
    let mut rng = init::rng(seed);
    let mut net = Network::mlp(&[data.x.dims()[1], 16, 2], &mut rng);
    let mut opt = Optimizer::adam(0.01);
    let batch = 32;
    let steps_per_epoch = data.len().div_ceil(batch);
    for _ in 0..epochs {
        for _ in 0..steps_per_epoch {
            let idx: Vec<usize> = (0..batch)
                .map(|_| init::weighted_choice(&weights, &mut rng))
                .collect();
            let xb = data.x.select_rows(&idx);
            let labels: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, 2);
            net.zero_grads();
            let logits = net.forward(&xb, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            net.backward(&grad);
            let mut pg = net.params_and_grads();
            opt.step(&mut pg, 1.0);
        }
    }
    net.clear_caches();
    let predictions = net.predict(&data.x);
    let report = FairnessReport::new(&predictions, &data.y, groups);
    MitigationResult {
        predictions,
        report,
    }
}

// ----------------------------------------------------------------------
// In-processing: adversarial debiasing
// ----------------------------------------------------------------------

/// Adversarial debiasing configuration.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Strength of the adversarial penalty (0 = plain training).
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            lambda: 1.0,
            epochs: 20,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Adversarial debiasing (Elazar-Goldberg style): a predictor learns the
/// task while an adversary tries to recover the protected group from the
/// predictor's logits. The predictor receives the *negated* adversary
/// gradient (gradient reversal), so it is pushed toward representations
/// that do not leak the group.
pub fn adversarial_debias(
    data: &Dataset,
    groups: &[usize],
    config: &AdversarialConfig,
) -> MitigationResult {
    assert_eq!(data.len(), groups.len(), "length mismatch");
    let mut rng = init::rng(config.seed);
    let mut predictor = Network::mlp(&[data.x.dims()[1], 16, 2], &mut rng);
    let mut adversary = Network::mlp(&[2, 8, 2], &mut rng);
    let mut p_opt = Optimizer::adam(0.01);
    let mut a_opt = Optimizer::adam(0.01);
    let mut shuffle = init::rng(config.seed.wrapping_add(1));
    for _ in 0..config.epochs {
        let order = init::permutation(data.len(), &mut shuffle);
        for chunk in order.chunks(config.batch_size) {
            let xb = data.x.select_rows(chunk);
            let labels: Vec<usize> = chunk.iter().map(|&i| data.y[i]).collect();
            let grp: Vec<usize> = chunk.iter().map(|&i| groups[i]).collect();
            let y_targets = one_hot(&labels, 2);
            let g_targets = one_hot(&grp, 2);
            // 1) adversary step: predict group from predictor logits
            let logits = predictor.forward(&xb, true);
            adversary.zero_grads();
            let g_logits = adversary.forward(&logits, true);
            let (_, g_grad) = Loss::SoftmaxCrossEntropy.evaluate(&g_logits, &g_targets);
            let grad_into_logits = adversary.backward(&g_grad);
            let mut pg = adversary.params_and_grads();
            a_opt.step(&mut pg, 1.0);
            // 2) predictor step: task gradient minus adversary leak gradient
            predictor.zero_grads();
            let logits = predictor.forward(&xb, true);
            let (_, task_grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &y_targets);
            // gradient reversal: subtract lambda * d(adv loss)/d(logits)
            let combined = &task_grad - &(&grad_into_logits * config.lambda);
            predictor.backward(&combined);
            let mut pg = predictor.params_and_grads();
            p_opt.step(&mut pg, 1.0);
        }
    }
    predictor.clear_caches();
    let predictions = predictor.predict(&data.x);
    let report = FairnessReport::new(&predictions, &data.y, groups);
    MitigationResult {
        predictions,
        report,
    }
}

// ----------------------------------------------------------------------
// Post-processing: threshold adjustment
// ----------------------------------------------------------------------

/// Chooses per-group decision thresholds over positive-class scores so the
/// two groups' positive rates match (demographic parity) as closely as
/// possible, then returns the adjusted predictions.
///
/// # Panics
/// Panics on length mismatch.
pub fn threshold_adjust(
    scores: &Tensor,
    labels: &[usize],
    groups: &[usize],
) -> MitigationResult {
    assert_eq!(scores.dims()[0], labels.len(), "length mismatch");
    assert_eq!(labels.len(), groups.len(), "length mismatch");
    let pos_scores: Vec<f32> = (0..labels.len()).map(|i| scores.get(&[i, 1])).collect();
    // overall positive rate at threshold 0.5 is the target
    let target_rate =
        pos_scores.iter().filter(|&&s| s >= 0.5).count() as f64 / labels.len() as f64;
    // per group, pick the threshold whose positive rate is closest to the target
    let mut thresholds = [0.5f32; 2];
    for (g, threshold) in thresholds.iter_mut().enumerate() {
        let mut group_scores: Vec<f32> = pos_scores
            .iter()
            .zip(groups)
            .filter(|(_, &gg)| gg == g)
            .map(|(&s, _)| s)
            .collect();
        if group_scores.is_empty() {
            continue;
        }
        group_scores.sort_by(f32::total_cmp);
        // threshold at the (1 - target_rate) quantile of this group's scores
        let idx = ((group_scores.len() as f64) * (1.0 - target_rate))
            .floor()
            .clamp(0.0, group_scores.len() as f64 - 1.0) as usize;
        *threshold = group_scores[idx];
    }
    let predictions: Vec<usize> = pos_scores
        .iter()
        .zip(groups)
        .map(|(&s, &g)| usize::from(s >= thresholds[g]))
        .collect();
    let report = FairnessReport::new(&predictions, labels, groups);
    MitigationResult {
        predictions,
        report,
    }
}

/// Per-group thresholds chosen to equalize **true-positive rates** (equal
/// opportunity) instead of raw positive rates: for each group, the
/// threshold is the score quantile among *actual positives* that admits
/// the target TPR.
///
/// # Panics
/// Panics on length mismatch or when a group has no positive samples.
pub fn threshold_equal_opportunity(
    scores: &Tensor,
    labels: &[usize],
    groups: &[usize],
    target_tpr: f64,
) -> MitigationResult {
    assert_eq!(scores.dims()[0], labels.len(), "length mismatch");
    assert_eq!(labels.len(), groups.len(), "length mismatch");
    assert!((0.0..=1.0).contains(&target_tpr), "TPR must lie in [0,1]");
    let pos_scores: Vec<f32> = (0..labels.len()).map(|i| scores.get(&[i, 1])).collect();
    let mut thresholds = [0.5f32; 2];
    for (g, threshold) in thresholds.iter_mut().enumerate() {
        let mut positives: Vec<f32> = pos_scores
            .iter()
            .zip(labels.iter().zip(groups))
            .filter(|(_, (&l, &gg))| l == 1 && gg == g)
            .map(|(&s, _)| s)
            .collect();
        assert!(
            !positives.is_empty(),
            "group {g} has no positive samples to calibrate on"
        );
        positives.sort_by(f32::total_cmp);
        // admit the top target_tpr fraction of true positives
        let idx = ((positives.len() as f64) * (1.0 - target_tpr))
            .floor()
            .clamp(0.0, positives.len() as f64 - 1.0) as usize;
        *threshold = positives[idx];
    }
    let predictions: Vec<usize> = pos_scores
        .iter()
        .zip(groups)
        .map(|(&s, &g)| usize::from(s >= thresholds[g]))
        .collect();
    let report = FairnessReport::new(&predictions, labels, groups);
    MitigationResult {
        predictions,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::{CensusConfig, CensusData};
    use dl_nn::{Optimizer, TrainConfig, Trainer};
    use dl_tensor::init::rng;

    fn biased_census(seed: u64) -> CensusData {
        CensusData::generate(CensusConfig {
            n: 2000,
            bias: 0.6,
            seed,
            ..CensusConfig::default()
        })
    }

    fn baseline(census: &CensusData, seed: u64) -> (Network, FairnessReport) {
        let data = census.to_dataset();
        let mut r = rng(seed);
        let mut net = Network::mlp(&[6, 16, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let preds = net.predict(&data.x);
        let report = FairnessReport::new(&preds, &census.labels, &census.groups);
        (net, report)
    }

    #[test]
    fn reweigh_weights_balance_cells() {
        let labels = [1, 1, 1, 0, 1, 0, 0, 0];
        let groups = [0, 0, 0, 0, 1, 1, 1, 1];
        let w = reweigh(&labels, &groups);
        // group 0 positives are over-represented -> weight < 1
        assert!(w[0] < 1.0);
        // group 1 positives are under-represented -> weight > 1
        assert!(w[4] > 1.0);
        // weighted joint distribution becomes independent:
        // sum of weights in cell (g,l) == n * P(g) * P(l)
        let cell_sum: f64 = w
            .iter()
            .zip(labels.iter().zip(&groups))
            .filter(|(_, (&l, &g))| l == 1 && g == 1)
            .map(|(&wi, _)| wi)
            .sum();
        assert!((cell_sum - 8.0 * 0.5 * 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn reweigh_rejects_empty() {
        reweigh(&[], &[]);
    }

    #[test]
    fn reweighing_reduces_parity_gap() {
        let census = biased_census(0);
        let (_, base) = baseline(&census, 1);
        let result = train_reweighed(&census.to_dataset(), &census.groups, 15, 2);
        assert!(
            result.report.demographic_parity_diff() < base.demographic_parity_diff(),
            "reweighing gap {} should beat baseline {}",
            result.report.demographic_parity_diff(),
            base.demographic_parity_diff()
        );
        assert!(result.report.accuracy() > 0.6, "accuracy collapsed");
    }

    #[test]
    fn adversarial_reduces_parity_gap() {
        let census = biased_census(3);
        let (_, base) = baseline(&census, 4);
        let result = adversarial_debias(
            &census.to_dataset(),
            &census.groups,
            &AdversarialConfig {
                lambda: 2.0,
                epochs: 20,
                ..AdversarialConfig::default()
            },
        );
        assert!(
            result.report.demographic_parity_diff() < base.demographic_parity_diff(),
            "adversarial gap {} should beat baseline {}",
            result.report.demographic_parity_diff(),
            base.demographic_parity_diff()
        );
        assert!(result.report.accuracy() > 0.6);
    }

    #[test]
    fn zero_lambda_adversarial_matches_plain_training() {
        let census = biased_census(5);
        let result = adversarial_debias(
            &census.to_dataset(),
            &census.groups,
            &AdversarialConfig {
                lambda: 0.0,
                epochs: 10,
                ..AdversarialConfig::default()
            },
        );
        // with no penalty the bias stays visible
        assert!(result.report.demographic_parity_diff() > 0.1);
    }

    #[test]
    fn threshold_adjust_closes_parity_almost_exactly() {
        let census = biased_census(6);
        let (mut net, base) = baseline(&census, 7);
        let scores = net.predict_proba(&census.features);
        let result = threshold_adjust(&scores, &census.labels, &census.groups);
        assert!(
            result.report.demographic_parity_diff().abs() < 0.05,
            "post-hoc gap {} should be near zero (baseline {})",
            result.report.demographic_parity_diff(),
            base.demographic_parity_diff()
        );
    }

    #[test]
    fn equal_opportunity_thresholds_close_the_tpr_gap() {
        let census = biased_census(10);
        let (mut net, base) = baseline(&census, 11);
        let scores = net.predict_proba(&census.features);
        let result =
            threshold_equal_opportunity(&scores, &census.labels, &census.groups, 0.85);
        let gap = result.report.equal_opportunity_diff().abs();
        assert!(
            gap < base.equal_opportunity_diff().abs(),
            "EO thresholds should shrink the TPR gap: {gap} vs baseline {}",
            base.equal_opportunity_diff()
        );
        assert!(gap < 0.08, "residual TPR gap {gap}");
        // both groups sit near the target TPR
        assert!((result.report.group0.tpr() - 0.85).abs() < 0.06);
        assert!((result.report.group1.tpr() - 0.85).abs() < 0.06);
    }

    #[test]
    #[should_panic(expected = "TPR must lie")]
    fn equal_opportunity_rejects_bad_target() {
        let census = biased_census(12);
        let (mut net, _) = baseline(&census, 13);
        let scores = net.predict_proba(&census.features);
        threshold_equal_opportunity(&scores, &census.labels, &census.groups, 1.5);
    }

    #[test]
    fn threshold_adjust_trades_some_accuracy() {
        let census = biased_census(8);
        let (mut net, base) = baseline(&census, 9);
        let scores = net.predict_proba(&census.features);
        let result = threshold_adjust(&scores, &census.labels, &census.groups);
        // parity is enforced against biased labels, so accuracy can dip,
        // but must not collapse
        assert!(result.report.accuracy() > base.accuracy() - 0.15);
    }
}
