//! # dl-fairness
//!
//! Responsible deep learning, dimension one: **fairness** (tutorial §4.1).
//!
//! The tutorial frames unfairness as entering at two levels — the data
//! (biased labels and proxies) and the algorithm (what the model amplifies)
//! — and surveys interventions at both. This crate implements the
//! measurement side and one intervention per level:
//!
//! * [`metrics`] — group fairness metrics over binary classifiers:
//!   demographic parity, disparate impact, equal opportunity, equalized
//!   odds, and per-group calibration.
//! * [`mitigate`] — interventions:
//!   * **reweighing** (pre-processing): weight training samples so group
//!     and label become statistically independent,
//!   * **adversarial debiasing** (in-processing): an adversary tries to
//!     recover the protected attribute from the predictor's outputs; the
//!     predictor is penalized for leaking it,
//!   * **threshold adjustment** (post-processing): per-group decision
//!     thresholds chosen to equalize positive rates.
//!
//! The ground-truth bias knob lives in `dl-data::census`, so experiments
//! can sweep actual injected bias against what these metrics recover.

#![warn(missing_docs)]

pub mod metrics;
pub mod mitigate;

pub use metrics::{FairnessReport, GroupConfusion};
pub use mitigate::{
    adversarial_debias, reweigh, threshold_adjust, threshold_equal_opportunity, train_reweighed,
    AdversarialConfig, MitigationResult,
};
