//! # dl-green
//!
//! Environmental impact of deep learning (tutorial §4.3): energy and
//! carbon accounting in the style of the Machine Learning Emissions
//! Calculator and the Green Algorithms project, plus a carbon-aware job
//! scheduler.
//!
//! * [`energy`] — hardware profiles (TDP, sustained FLOP/s, achievable
//!   utilization) turn FLOP counts from `dl-nn`'s cost model into
//!   kilowatt-hours; datacenter PUE multiplies in overhead.
//! * [`carbon`] — regional grid carbon intensities convert energy into
//!   gCO2e, with the calculator-style per-run report (including the
//!   "cars" equivalence the tutorial quotes).
//! * [`scheduler`] — a carbon-aware scheduler that places training jobs
//!   across regions and hours to minimize emissions under deadline
//!   constraints, against a naive first-fit baseline.
//!
//! The published constants encoded here (TDPs, PUEs, regional
//! intensities) are documented inline; everything else is arithmetic over
//! the workspace's deterministic FLOP counts.

#![warn(missing_docs)]

pub mod carbon;
pub mod energy;
pub mod scheduler;

pub use carbon::{CarbonReport, Region};
pub use energy::{EnergyReport, HardwareProfile};
pub use scheduler::{schedule_jobs, Job, ScheduleOutcome, SchedulePolicy};
