//! Carbon accounting: kWh -> gCO2e, per region.

use crate::energy::EnergyReport;
use serde::{Deserialize, Serialize};

/// A grid region with its average carbon intensity.
///
/// Intensities (gCO2e per kWh) follow the public figures the ML-emissions
/// calculators ship: hydro-heavy grids near 30, EU average near 300,
/// coal-heavy grids above 700.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Hydro/nuclear-dominated grid (~30 gCO2e/kWh).
    HydroNorth,
    /// Wind+gas mix (~200 gCO2e/kWh).
    WindCoast,
    /// Average mixed grid (~450 gCO2e/kWh).
    MixedAverage,
    /// Coal-dominated grid (~750 gCO2e/kWh).
    CoalBelt,
}

impl Region {
    /// All regions, for sweeps.
    pub fn all() -> [Region; 4] {
        [
            Region::HydroNorth,
            Region::WindCoast,
            Region::MixedAverage,
            Region::CoalBelt,
        ]
    }

    /// Average carbon intensity in gCO2e/kWh.
    pub fn intensity(&self) -> f64 {
        match self {
            Region::HydroNorth => 30.0,
            Region::WindCoast => 200.0,
            Region::MixedAverage => 450.0,
            Region::CoalBelt => 750.0,
        }
    }

    /// Hourly intensity profile: a sinusoidal diurnal cycle around the
    /// average (solar/wind availability), used by the carbon-aware
    /// scheduler. `hour` is 0-23.
    pub fn intensity_at(&self, hour: usize) -> f64 {
        let base = self.intensity();
        // grids with more renewables swing harder across the day
        let swing = match self {
            Region::HydroNorth => 0.05,
            Region::WindCoast => 0.4,
            Region::MixedAverage => 0.25,
            Region::CoalBelt => 0.1,
        };
        let phase = (hour % 24) as f64 / 24.0 * std::f64::consts::TAU;
        base * (1.0 + swing * phase.sin())
    }

    /// Region name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Region::HydroNorth => "hydro-north",
            Region::WindCoast => "wind-coast",
            Region::MixedAverage => "mixed-average",
            Region::CoalBelt => "coal-belt",
        }
    }
}

/// A per-run carbon report in the style of the ML emissions calculator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonReport {
    /// Energy consumed (kWh, including PUE).
    pub kwh: f64,
    /// Region used.
    pub region: Region,
    /// Emissions in grams of CO2-equivalent.
    pub grams_co2e: f64,
}

/// Lifetime emissions of an average car, used for the tutorial's
/// "training emits as much as N cars" equivalence (~57 tCO2e).
pub const CAR_LIFETIME_GRAMS: f64 = 57.0e6;

impl CarbonReport {
    /// Emissions of an energy report executed in `region`.
    pub fn from_energy(energy: &EnergyReport, region: Region) -> Self {
        CarbonReport {
            kwh: energy.total_kwh,
            region,
            grams_co2e: energy.total_kwh * region.intensity(),
        }
    }

    /// The run's emissions as a fraction of one car's lifetime emissions.
    pub fn car_equivalents(&self) -> f64 {
        self.grams_co2e / CAR_LIFETIME_GRAMS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{energy_for, HardwareProfile};

    #[test]
    fn emissions_proportional_to_intensity() {
        let e = energy_for(&HardwareProfile::datacenter_gpu(), 1_000_000_000_000_000, 1.1);
        let hydro = CarbonReport::from_energy(&e, Region::HydroNorth);
        let coal = CarbonReport::from_energy(&e, Region::CoalBelt);
        assert!((coal.grams_co2e / hydro.grams_co2e - 25.0).abs() < 0.1);
    }

    #[test]
    fn diurnal_profile_averages_to_base() {
        for region in Region::all() {
            let mean: f64 =
                (0..24).map(|h| region.intensity_at(h)).sum::<f64>() / 24.0;
            assert!(
                (mean - region.intensity()).abs() < region.intensity() * 0.02,
                "{}: mean {mean}",
                region.name()
            );
        }
    }

    #[test]
    fn wind_region_swings_more_than_hydro() {
        let swing = |r: Region| {
            let vals: Vec<f64> = (0..24).map(|h| r.intensity_at(h)).collect();
            let max = vals.iter().copied().fold(f64::MIN, f64::max);
            let min = vals.iter().copied().fold(f64::MAX, f64::min);
            (max - min) / r.intensity()
        };
        assert!(swing(Region::WindCoast) > swing(Region::HydroNorth) * 3.0);
    }

    #[test]
    fn car_equivalence_is_sane() {
        // a huge training run: 1e19 FLOPs/device-job x 100 jobs worth
        let e = energy_for(&HardwareProfile::datacenter_gpu(), 10u64.pow(19), 1.6);
        let e = crate::energy::EnergyReport {
            total_kwh: e.total_kwh * 100.0,
            ..e
        };
        let r = CarbonReport::from_energy(&e, Region::MixedAverage);
        // thousands of kWh -> a meaningful fraction of cars
        assert!(r.car_equivalents() > 0.01, "{}", r.car_equivalents());
        assert!(r.car_equivalents() < 100.0);
    }
}
