//! A carbon-aware training-job scheduler.
//!
//! §4.3's data-management opportunity: allocate deep learning jobs in the
//! cloud to minimize energy waste. Jobs have an energy demand (kWh) and a
//! deadline (hours from now); the scheduler assigns each to a (region,
//! start-hour) slot. The carbon-aware policy greedily picks the
//! lowest-emission feasible slot per job (largest jobs first); the naive
//! baseline runs everything immediately in a fixed home region.

use crate::carbon::Region;

/// A training job to place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Energy the job will draw (kWh, PUE included).
    pub kwh: f64,
    /// Runtime in whole hours (energy assumed uniform across them).
    pub hours: usize,
    /// Latest allowed completion, in hours from now.
    pub deadline: usize,
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Run each job immediately in the home region.
    NaiveImmediate {
        /// The fixed home region.
        home: Region,
    },
    /// Greedy carbon-aware placement across all regions and start hours.
    CarbonAware,
}

/// One job's placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Region chosen.
    pub region: Region,
    /// Start hour (0 = now).
    pub start_hour: usize,
    /// Emissions of this job in gCO2e.
    pub grams_co2e: f64,
}

/// The outcome of scheduling a batch of jobs.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-job placements, in input order.
    pub placements: Vec<Placement>,
    /// Total emissions in gCO2e.
    pub total_grams: f64,
}

/// Emissions of running `job` in `region` starting at `start_hour`.
fn job_emissions(job: &Job, region: Region, start_hour: usize) -> f64 {
    let kwh_per_hour = job.kwh / job.hours.max(1) as f64;
    (0..job.hours.max(1))
        .map(|h| kwh_per_hour * region.intensity_at(start_hour + h))
        .sum()
}

/// Schedules `jobs` under `policy`.
///
/// # Panics
/// Panics when a job cannot meet its deadline (`hours > deadline`).
pub fn schedule_jobs(jobs: &[Job], policy: SchedulePolicy) -> ScheduleOutcome {
    for (i, j) in jobs.iter().enumerate() {
        assert!(
            j.hours <= j.deadline.max(1),
            "job {i} cannot finish by its deadline"
        );
    }
    let placements: Vec<Placement> = jobs
        .iter()
        .map(|job| match policy {
            SchedulePolicy::NaiveImmediate { home } => Placement {
                region: home,
                start_hour: 0,
                grams_co2e: job_emissions(job, home, 0),
            },
            SchedulePolicy::CarbonAware => {
                let latest_start = job.deadline.saturating_sub(job.hours);
                let mut best = Placement {
                    region: Region::MixedAverage,
                    start_hour: 0,
                    grams_co2e: f64::INFINITY,
                };
                for region in Region::all() {
                    for start in 0..=latest_start {
                        let g = job_emissions(job, region, start);
                        if g < best.grams_co2e {
                            best = Placement {
                                region,
                                start_hour: start,
                                grams_co2e: g,
                            };
                        }
                    }
                }
                best
            }
        })
        .collect();
    let total_grams = placements.iter().map(|p| p.grams_co2e).sum();
    ScheduleOutcome {
        placements,
        total_grams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<Job> {
        vec![
            Job {
                kwh: 100.0,
                hours: 4,
                deadline: 24,
            },
            Job {
                kwh: 10.0,
                hours: 1,
                deadline: 12,
            },
            Job {
                kwh: 50.0,
                hours: 8,
                deadline: 48,
            },
        ]
    }

    #[test]
    fn carbon_aware_beats_naive_coal_home() {
        let naive = schedule_jobs(
            &jobs(),
            SchedulePolicy::NaiveImmediate {
                home: Region::CoalBelt,
            },
        );
        let aware = schedule_jobs(&jobs(), SchedulePolicy::CarbonAware);
        assert!(
            aware.total_grams < naive.total_grams / 5.0,
            "aware {} vs naive {}",
            aware.total_grams,
            naive.total_grams
        );
    }

    #[test]
    fn carbon_aware_never_worse_than_any_naive_home() {
        let aware = schedule_jobs(&jobs(), SchedulePolicy::CarbonAware);
        for home in Region::all() {
            let naive = schedule_jobs(&jobs(), SchedulePolicy::NaiveImmediate { home });
            assert!(aware.total_grams <= naive.total_grams + 1e-9);
        }
    }

    #[test]
    fn placements_respect_deadlines() {
        let aware = schedule_jobs(&jobs(), SchedulePolicy::CarbonAware);
        for (p, j) in aware.placements.iter().zip(jobs()) {
            assert!(p.start_hour + j.hours <= j.deadline);
        }
    }

    #[test]
    fn aware_scheduler_prefers_clean_regions() {
        let aware = schedule_jobs(&jobs(), SchedulePolicy::CarbonAware);
        // hydro-north has by far the lowest intensity at every hour
        assert!(aware
            .placements
            .iter()
            .all(|p| p.region == Region::HydroNorth));
    }

    #[test]
    fn emissions_sum_matches_parts() {
        let o = schedule_jobs(&jobs(), SchedulePolicy::CarbonAware);
        let s: f64 = o.placements.iter().map(|p| p.grams_co2e).sum();
        assert!((s - o.total_grams).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot finish")]
    fn impossible_deadline_rejected() {
        schedule_jobs(
            &[Job {
                kwh: 1.0,
                hours: 10,
                deadline: 5,
            }],
            SchedulePolicy::CarbonAware,
        );
    }

    #[test]
    fn flexible_deadline_finds_cleaner_hour_within_region() {
        // pin to one swinging region by comparing start hours
        let tight = Job {
            kwh: 10.0,
            hours: 1,
            deadline: 1,
        };
        let loose = Job {
            kwh: 10.0,
            hours: 1,
            deadline: 24,
        };
        let t = schedule_jobs(&[tight], SchedulePolicy::CarbonAware);
        let l = schedule_jobs(&[loose], SchedulePolicy::CarbonAware);
        assert!(l.total_grams <= t.total_grams);
    }
}
