//! Hardware energy model: FLOPs -> kWh.

use serde::{Deserialize, Serialize};

/// An accelerator/CPU power profile.
///
/// `sustained_flops` is the realistic training throughput (not the
/// marketing peak); `utilization` scales TDP to the average draw during
/// training. Both follow the assumptions of the public ML-emissions
/// calculators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Thermal design power in watts.
    pub tdp_watts: f64,
    /// Sustained training throughput in FLOP/s.
    pub sustained_flops: f64,
    /// Average fraction of TDP drawn during training.
    pub utilization: f64,
}

impl HardwareProfile {
    /// A V100-class datacenter GPU (300 W TDP, ~14 TFLOP/s sustained).
    pub fn datacenter_gpu() -> Self {
        HardwareProfile {
            name: "datacenter-gpu",
            tdp_watts: 300.0,
            sustained_flops: 14e12,
            utilization: 0.85,
        }
    }

    /// A desktop GPU (180 W, ~7 TFLOP/s).
    pub fn desktop_gpu() -> Self {
        HardwareProfile {
            name: "desktop-gpu",
            tdp_watts: 180.0,
            sustained_flops: 7e12,
            utilization: 0.8,
        }
    }

    /// A laptop CPU (45 W, ~200 GFLOP/s).
    pub fn laptop_cpu() -> Self {
        HardwareProfile {
            name: "laptop-cpu",
            tdp_watts: 45.0,
            sustained_flops: 0.2e12,
            utilization: 0.7,
        }
    }

    /// A projected photonic accelerator (§4.3 points at photonics and
    /// quantum hardware as FLOPs/W escape hatches): published prototypes
    /// target ~100x the FLOPs/W of electronic accelerators. Speculative,
    /// flagged by name.
    pub fn photonic_projection() -> Self {
        HardwareProfile {
            name: "photonic-projection",
            tdp_watts: 50.0,
            sustained_flops: 200e12,
            utilization: 0.8,
        }
    }

    /// All built-in profiles, for sweeps.
    pub fn all() -> [HardwareProfile; 4] {
        [
            HardwareProfile::datacenter_gpu(),
            HardwareProfile::desktop_gpu(),
            HardwareProfile::laptop_cpu(),
            HardwareProfile::photonic_projection(),
        ]
    }

    /// Energy efficiency in FLOPs per watt (the §4.3 hardware metric).
    pub fn flops_per_watt(&self) -> f64 {
        self.sustained_flops / (self.tdp_watts * self.utilization)
    }

    /// Seconds to execute `flops` of work.
    pub fn runtime_seconds(&self, flops: u64) -> f64 {
        flops as f64 / self.sustained_flops
    }
}

/// Energy accounting for one workload on one hardware profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total FLOPs executed.
    pub flops: u64,
    /// Runtime in seconds.
    pub seconds: f64,
    /// Device energy in kWh (before datacenter overhead).
    pub device_kwh: f64,
    /// Total energy in kWh including PUE overhead.
    pub total_kwh: f64,
    /// The PUE used.
    pub pue: f64,
}

/// Computes the energy of running `flops` on `hw` in a facility with the
/// given power usage effectiveness (PUE; 1.0 = no overhead, typical cloud
/// ~1.1, average datacenter ~1.6).
///
/// # Panics
/// Panics when `pue < 1.0`.
pub fn energy_for(hw: &HardwareProfile, flops: u64, pue: f64) -> EnergyReport {
    assert!(pue >= 1.0, "PUE cannot be below 1.0, got {pue}");
    let seconds = hw.runtime_seconds(flops);
    let watts = hw.tdp_watts * hw.utilization;
    let device_kwh = watts * seconds / 3.6e6;
    EnergyReport {
        flops,
        seconds,
        device_kwh,
        total_kwh: device_kwh * pue,
        pue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scales_with_flops() {
        let hw = HardwareProfile::datacenter_gpu();
        assert!((hw.runtime_seconds(14_000_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_hand_calculation() {
        let hw = HardwareProfile::datacenter_gpu();
        // 1 hour of work: 14e12 * 3600 FLOPs
        let flops = (14e12 * 3600.0) as u64;
        let r = energy_for(&hw, flops, 1.0);
        assert!((r.seconds - 3600.0).abs() < 1.0);
        // 300 W * 0.85 for 1 h = 0.255 kWh
        assert!((r.device_kwh - 0.255).abs() < 1e-3, "kwh {}", r.device_kwh);
    }

    #[test]
    fn pue_multiplies_total() {
        let hw = HardwareProfile::desktop_gpu();
        let r = energy_for(&hw, 1_000_000_000_000, 1.6);
        assert!((r.total_kwh - r.device_kwh * 1.6).abs() < 1e-12);
    }

    #[test]
    fn gpu_more_efficient_than_cpu() {
        assert!(
            HardwareProfile::datacenter_gpu().flops_per_watt()
                > HardwareProfile::laptop_cpu().flops_per_watt() * 5.0
        );
    }

    #[test]
    fn photonic_projection_dominates_on_efficiency() {
        let photonic = HardwareProfile::photonic_projection();
        for hw in HardwareProfile::all() {
            if hw.name != photonic.name {
                assert!(photonic.flops_per_watt() > hw.flops_per_watt() * 10.0);
            }
        }
        // same job: vastly less energy
        let flops = 10u64.pow(18);
        let gpu = energy_for(&HardwareProfile::datacenter_gpu(), flops, 1.2);
        let pho = energy_for(&photonic, flops, 1.2);
        assert!(pho.total_kwh < gpu.total_kwh / 20.0);
    }

    #[test]
    #[should_panic(expected = "PUE cannot be below")]
    fn rejects_sub_one_pue() {
        energy_for(&HardwareProfile::laptop_cpu(), 1, 0.9);
    }

    #[test]
    fn zero_flops_zero_energy() {
        let r = energy_for(&HardwareProfile::laptop_cpu(), 0, 1.2);
        assert_eq!(r.device_kwh, 0.0);
        assert_eq!(r.seconds, 0.0);
    }
}
