//! Golden-file regression test for the artifact byte layout.
//!
//! `tests/golden/tiny_mlp.dlst` is a committed artifact for a tiny
//! deterministic MLP. If encoding ever drifts — field order, alignment,
//! checksum, endianness — this test fails before any consumer does.
//! To regenerate after an *intentional* format-version bump:
//!
//! ```text
//! DL_STORE_REGEN_GOLDEN=1 cargo test -p dl-store --test golden
//! ```

use dl_nn::Network;
use dl_store::{fnv1a, load_network, save_network, Artifact, ALIGN};
use dl_tensor::init;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tiny_mlp.dlst")
}

fn tiny_mlp() -> Network {
    let mut rng = init::rng(42);
    Network::mlp(&[4, 6, 3], &mut rng)
}

#[test]
fn golden_artifact_bytes_are_stable() {
    let bytes = save_network(&tiny_mlp());
    let path = golden_path();
    if std::env::var_os("DL_STORE_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let golden = std::fs::read(&path)
        .expect("committed golden artifact (regen with DL_STORE_REGEN_GOLDEN=1)");
    assert_eq!(
        bytes, golden,
        "artifact encoding drifted from the committed golden file"
    );
}

#[test]
fn golden_artifact_still_loads_and_matches_the_model() {
    let golden = std::fs::read(golden_path()).expect("committed golden artifact");
    let net = load_network(&golden).expect("golden artifact parses");
    let fresh = tiny_mlp();
    let a = fresh.flat_params();
    let b = net.flat_params();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn golden_artifact_is_aligned_and_checksummed() {
    let golden = std::fs::read(golden_path()).expect("committed golden artifact");
    let a = Artifact::parse(&golden).expect("parses");
    for e in a.entries() {
        assert_eq!(e.offset % ALIGN, 0, "payload {} unaligned", e.name);
        assert_eq!(fnv1a(a.payload(e).unwrap()), e.checksum);
    }
    let n = golden.len();
    let stored = u64::from_le_bytes(golden[n - 8..].try_into().unwrap());
    assert_eq!(stored, fnv1a(&golden[..n - 8]));
}
