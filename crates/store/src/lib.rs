//! `dl-store` — byte-stable binary model artifacts.
//!
//! Nothing in the stack survived a process before this crate: trained
//! networks, quantized variants and distributed checkpoints all lived as
//! in-memory structs. `dl-store` is the hinge between training and
//! deployment — a hand-rolled, zero-dependency binary format in the
//! ggml lineage (magic + version header, an hparams section, a named
//! tensor directory) with two hard guarantees:
//!
//! 1. **Byte stability.** Saving the same model twice produces the same
//!    bytes: fixed little-endian encoding, insertion-ordered sections, no
//!    hash-map iteration anywhere. A committed golden file regression-
//!    tests the layout itself.
//! 2. **Bit-identical round-trips.** `save → load` reproduces parameters,
//!    structure and forward behaviour exactly. Int8 tensors from
//!    `dl-compress` are stored as their packed codes plus quant params —
//!    never dequantized on the way to disk — so `load → dequantize`
//!    equals `dequantize → save` to the bit.
//!
//! Tensor payloads start on 64-byte-aligned offsets so the layout is
//! mmap-friendly: a reader can map the file and point kernels straight at
//! the payload bytes. Corruption is detected twice over — a whole-file
//! checksum in the trailer and a per-tensor payload checksum in the
//! directory — with typed [`StoreError`]s for truncation, bad magic and
//! checksum mismatches.
//!
//! ```text
//! offset 0        "DLST" magic · u32 version
//!                 u32 hparam count · u32 tensor count
//!                 hparams      (name, tagged value) ...
//!                 directory    (name, dtype, dims, quant params,
//!                               payload offset/len/checksum) ...
//!                 -- zero pad to 64 --
//! aligned 64      payload 0    (f32 little-endian or packed int8 codes)
//!                 -- zero pad to 64 --
//! aligned 64      payload 1 ...
//! end - 8         u64 FNV-1a checksum of every preceding byte
//! ```
//!
//! On top of the raw [`format`] live the model codecs: [`network`]
//! encodes/decodes any `dl_nn::Network` (all eight layer kinds) under a
//! key prefix so several models share one artifact — which is how
//! `dl-serve` persists whole variant families — and [`checkpoint`]
//! carries `dl-distributed`'s training checkpoints (step, flat params,
//! optimizer hyper-parameters, data cursors) through the same format.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod format;
pub mod network;

pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointData};
pub use format::{fnv1a, Artifact, ArtifactBuilder, Dtype, HParam, TensorEntry, ALIGN};
pub use network::{
    decode_network, decode_network_with_quant, encode_network, encode_network_q8, load_network,
    load_network_file, save_network, save_network_file,
};

/// Everything that can go wrong reading an artifact.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `DLST` magic.
    BadMagic([u8; 4]),
    /// The header names a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The buffer ends before a section it promises.
    Truncated {
        /// Bytes the parser needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// What the checksum covers (`"file"` or a tensor name).
        what: String,
        /// Checksum stored in the artifact.
        expected: u64,
        /// Checksum recomputed from the bytes.
        actual: u64,
    },
    /// Structurally invalid content (bad dims, missing entries, ...).
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"DLST\""),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated { needed, have } => {
                write!(f, "truncated artifact: needed {needed} bytes, have {have}")
            }
            StoreError::ChecksumMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on {what}: stored {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
