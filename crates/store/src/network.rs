//! Encoding and decoding `dl_nn::Network` through the artifact format.
//!
//! Every layer kind round-trips: parameters land in the tensor directory
//! (f32, or packed int8 codes for quantized models), structure and scalar
//! knobs land in the hparams section under a caller-chosen key prefix so
//! several networks can share one artifact (how dl-serve persists whole
//! variant families). `f32` knobs are stored as bit patterns, never
//! re-parsed from text, so reconstruction is exact.
//!
//! Gradients are training scratch and are not persisted; a loaded network
//! carries zeroed gradient buffers, identical to a freshly constructed
//! one. Parameters, structure, dropout mask streams and batch-norm
//! running statistics round-trip bit-for-bit.

use crate::format::{Artifact, ArtifactBuilder, Dtype, HParam};
use crate::StoreError;
use dl_compress::QuantizedTensor;
use dl_nn::layers::{BatchNorm1d, Conv2d, Dense, Dropout, Layer, MaxPool2d, ReLU, Sigmoid, Tanh};
use dl_nn::Network;
use dl_tensor::{init, Tensor};
use std::path::Path;

/// Value of the `artifact.kind` hparam written by [`save_network`].
pub const NETWORK_KIND: &str = "network";

fn key(prefix: &str, i: usize, field: &str) -> String {
    format!("{prefix}.layer{i}.{field}")
}

fn put_f32_bits(b: &mut ArtifactBuilder, name: String, v: f32) {
    b.hparam(name, HParam::U64(u64::from(v.to_bits())));
}

/// Writes `net` into `b` under `prefix`, all parameters as f32.
pub fn encode_network(b: &mut ArtifactBuilder, prefix: &str, net: &Network) {
    encode_impl(b, prefix, net, None);
}

/// Writes `net` into `b` under `prefix`, storing its parameter tensors as
/// the packed int8 codes in `quantized` (one per parameter tensor, in
/// `params_and_grads` order — exactly what
/// `dl_compress::quantize_network_tensors` returns). Non-parameter
/// tensors (batch-norm running statistics) stay f32.
///
/// # Panics
/// Panics when `quantized` does not line up one-to-one with the
/// network's parameter tensors (count or dims).
pub fn encode_network_q8(
    b: &mut ArtifactBuilder,
    prefix: &str,
    net: &Network,
    quantized: &[QuantizedTensor],
) {
    encode_impl(b, prefix, net, Some(quantized));
}

fn encode_impl(
    b: &mut ArtifactBuilder,
    prefix: &str,
    net: &Network,
    quantized: Option<&[QuantizedTensor]>,
) {
    b.hparam(format!("{prefix}.input_dim"), HParam::U64(net.input_dim as u64));
    b.hparam(
        format!("{prefix}.layer_count"),
        HParam::U64(net.layers().len() as u64),
    );
    let mut qi = 0usize;
    // Writes one parameter tensor: the next quantized entry when
    // persisting a q8 model, the raw f32 data otherwise.
    let param = |b: &mut ArtifactBuilder, name: String, t: &Tensor, qi: &mut usize| match quantized {
        Some(qts) => {
            let q = qts
                .get(*qi)
                .unwrap_or_else(|| panic!("quantized tensor list too short at {name}"));
            assert_eq!(q.dims(), t.dims(), "quantized dims mismatch at {name}");
            b.tensor_q8(name, q.dims(), q.codes(), q.scale(), q.zero_point(), q.bits());
            *qi += 1;
        }
        None => b.tensor_f32(name, t.dims(), t.data()),
    };
    for (i, layer) in net.layers().iter().enumerate() {
        b.hparam(key(prefix, i, "kind"), HParam::Str(layer.name().to_string()));
        match layer {
            Layer::Dense(d) => {
                param(b, key(prefix, i, "weight"), &d.weight, &mut qi);
                param(b, key(prefix, i, "bias"), &d.bias, &mut qi);
            }
            Layer::ReLU(_) | Layer::Sigmoid(_) | Layer::Tanh(_) => {}
            Layer::Dropout(d) => {
                put_f32_bits(b, key(prefix, i, "p_bits"), d.p);
                b.hparam(key(prefix, i, "seed"), HParam::U64(d.seed()));
                b.hparam(key(prefix, i, "step"), HParam::U64(d.step()));
            }
            Layer::Conv2d(c) => {
                for (field, v) in [
                    ("in_channels", c.in_channels),
                    ("out_channels", c.out_channels),
                    ("height", c.height),
                    ("width", c.width),
                    ("kh", c.kh),
                    ("kw", c.kw),
                    ("stride", c.stride),
                    ("pad", c.pad),
                ] {
                    b.hparam(key(prefix, i, field), HParam::U64(v as u64));
                }
                param(b, key(prefix, i, "weight"), &c.weight, &mut qi);
                param(b, key(prefix, i, "bias"), &c.bias, &mut qi);
            }
            Layer::MaxPool2d(m) => {
                for (field, v) in [
                    ("channels", m.channels),
                    ("height", m.height),
                    ("width", m.width),
                    ("k", m.k),
                    ("stride", m.stride),
                ] {
                    b.hparam(key(prefix, i, field), HParam::U64(v as u64));
                }
            }
            Layer::BatchNorm1d(bn) => {
                put_f32_bits(b, key(prefix, i, "momentum_bits"), bn.momentum);
                put_f32_bits(b, key(prefix, i, "eps_bits"), bn.eps());
                param(b, key(prefix, i, "gamma"), &bn.gamma, &mut qi);
                param(b, key(prefix, i, "beta"), &bn.beta, &mut qi);
                b.tensor_f32(
                    key(prefix, i, "running_mean"),
                    bn.running_mean.dims(),
                    bn.running_mean.data(),
                );
                b.tensor_f32(
                    key(prefix, i, "running_var"),
                    bn.running_var.dims(),
                    bn.running_var.data(),
                );
            }
        }
    }
    if let Some(qts) = quantized {
        assert_eq!(qi, qts.len(), "quantized tensor list longer than the network's params");
    }
}

/// Reads one parameter tensor, collecting the packed codes when the
/// entry is stored q8 (int8 payloads dequantize through the exact same
/// `zero + scale * code` expression `dl-compress` used in memory, so the
/// reconstruction is bit-identical).
fn param_tensor(
    a: &Artifact<'_>,
    name: &str,
    quants: &mut Vec<QuantizedTensor>,
    any_q8: &mut bool,
) -> Result<Tensor, StoreError> {
    let entry = a
        .tensor(name)
        .ok_or_else(|| StoreError::Corrupt(format!("missing tensor {name:?}")))?;
    match entry.dtype {
        Dtype::F32 => a.tensor_f32(name),
        Dtype::Q8 => {
            let q = a.tensor_q8(name)?;
            let t = q.dequantize();
            quants.push(q);
            *any_q8 = true;
            Ok(t)
        }
    }
}

/// Reconstructs a network stored under `prefix`.
///
/// # Errors
/// [`StoreError::Corrupt`] for missing or inconsistent sections; checksum
/// errors propagate from payload reads.
pub fn decode_network(a: &Artifact<'_>, prefix: &str) -> Result<Network, StoreError> {
    decode_network_with_quant(a, prefix).map(|(net, _)| net)
}

/// Reconstructs a network stored under `prefix`, additionally returning
/// its packed int8 tensors (in parameter order) when any parameter was
/// stored q8 — so a loaded quantized model can be re-saved byte-for-byte
/// without a dequantize round-trip.
///
/// # Errors
/// [`StoreError::Corrupt`] for missing or inconsistent sections; checksum
/// errors propagate from payload reads.
pub fn decode_network_with_quant(
    a: &Artifact<'_>,
    prefix: &str,
) -> Result<(Network, Option<Vec<QuantizedTensor>>), StoreError> {
    let input_dim = a.hparam_u64(&format!("{prefix}.input_dim"))? as usize;
    let layer_count = a.hparam_u64(&format!("{prefix}.layer_count"))? as usize;
    let mut net = Network::new(input_dim);
    let mut quants = Vec::new();
    let mut any_q8 = false;
    for i in 0..layer_count {
        let kind = a.hparam_str(&key(prefix, i, "kind"))?.to_string();
        let u = |field: &str| a.hparam_u64(&key(prefix, i, field)).map(|v| v as usize);
        let layer = match kind.as_str() {
            "dense" => {
                let w = param_tensor(a, &key(prefix, i, "weight"), &mut quants, &mut any_q8)?;
                let bias = param_tensor(a, &key(prefix, i, "bias"), &mut quants, &mut any_q8)?;
                Layer::Dense(Dense::from_parts(w, bias))
            }
            "relu" => Layer::ReLU(ReLU::new()),
            "sigmoid" => Layer::Sigmoid(Sigmoid::new()),
            "tanh" => Layer::Tanh(Tanh::new()),
            "dropout" => {
                let p = a.hparam_f32_bits(&key(prefix, i, "p_bits"))?;
                let seed = a.hparam_u64(&key(prefix, i, "seed"))?;
                let step = a.hparam_u64(&key(prefix, i, "step"))?;
                Layer::Dropout(Dropout::from_state(p, seed, step))
            }
            "conv2d" => {
                // Constructed through `new` (which needs an rng for its
                // He init), then the freshly drawn weights are replaced
                // by the stored ones — the rng never leaks into the
                // reconstruction.
                let mut c = Conv2d::new(
                    u("in_channels")?,
                    u("out_channels")?,
                    u("height")?,
                    u("width")?,
                    u("kh")?,
                    u("kw")?,
                    u("stride")?,
                    u("pad")?,
                    &mut init::rng(0),
                );
                c.weight = param_tensor(a, &key(prefix, i, "weight"), &mut quants, &mut any_q8)?;
                c.bias = param_tensor(a, &key(prefix, i, "bias"), &mut quants, &mut any_q8)?;
                c.grad_weight = Tensor::zeros(c.weight.shape().clone());
                c.grad_bias = Tensor::zeros(c.bias.shape().clone());
                Layer::Conv2d(c)
            }
            "maxpool2d" => Layer::MaxPool2d(MaxPool2d::new(
                u("channels")?,
                u("height")?,
                u("width")?,
                u("k")?,
                u("stride")?,
            )),
            "batchnorm1d" => {
                let momentum = a.hparam_f32_bits(&key(prefix, i, "momentum_bits"))?;
                let eps = a.hparam_f32_bits(&key(prefix, i, "eps_bits"))?;
                let gamma = param_tensor(a, &key(prefix, i, "gamma"), &mut quants, &mut any_q8)?;
                let beta = param_tensor(a, &key(prefix, i, "beta"), &mut quants, &mut any_q8)?;
                let features = gamma.dims()[0];
                let mut bn = BatchNorm1d::with_eps(features, eps);
                bn.momentum = momentum;
                bn.gamma = gamma;
                bn.beta = beta;
                bn.running_mean = a.tensor_f32(&key(prefix, i, "running_mean"))?;
                bn.running_var = a.tensor_f32(&key(prefix, i, "running_var"))?;
                Layer::BatchNorm1d(bn)
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown layer kind {other:?} at {prefix}.layer{i}"
                )))
            }
        };
        net = net.push(layer);
    }
    Ok((net, any_q8.then_some(quants)))
}

/// Serializes one network as a standalone artifact.
#[must_use]
pub fn save_network(net: &Network) -> Vec<u8> {
    let mut b = ArtifactBuilder::new();
    b.hparam("artifact.kind", HParam::Str(NETWORK_KIND.to_string()));
    encode_network(&mut b, "net", net);
    b.finish()
}

/// Loads a network saved by [`save_network`].
///
/// # Errors
/// Format errors from [`Artifact::parse`]; [`StoreError::Corrupt`] when
/// the artifact is not a network artifact.
pub fn load_network(bytes: &[u8]) -> Result<Network, StoreError> {
    let a = Artifact::parse(bytes)?;
    let kind = a.hparam_str("artifact.kind")?;
    if kind != NETWORK_KIND {
        return Err(StoreError::Corrupt(format!(
            "artifact kind {kind:?} is not a network"
        )));
    }
    decode_network(&a, "net")
}

/// Writes [`save_network`] bytes to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_network_file(net: &Network, path: &Path) -> Result<(), StoreError> {
    std::fs::write(path, save_network(net)).map_err(StoreError::Io)
}

/// Reads and parses a [`save_network_file`] artifact.
///
/// # Errors
/// Filesystem errors plus everything [`load_network`] can return.
pub fn load_network_file(path: &Path) -> Result<Network, StoreError> {
    let bytes = std::fs::read(path)?;
    load_network(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_kinds_network() -> Network {
        let mut rng = init::rng(11);
        // 1x6x6 image input -> conv -> pool -> dense stack exercising
        // every persistable layer kind.
        let conv = Conv2d::new(1, 2, 6, 6, 3, 3, 1, 1, &mut rng);
        let pool = MaxPool2d::new(2, 6, 6, 2, 2);
        let pooled = 2 * 3 * 3;
        let mut bn = BatchNorm1d::with_eps(pooled, 3e-5);
        bn.momentum = 0.25;
        Network::new(36)
            .push(Layer::Conv2d(conv))
            .push(Layer::ReLU(ReLU::new()))
            .push(Layer::MaxPool2d(pool))
            .push(Layer::BatchNorm1d(bn))
            .push(Layer::Dense(Dense::new(pooled, 8, &mut rng)))
            .push(Layer::Tanh(Tanh::new()))
            .push(Layer::Dropout(Dropout::from_state(0.25, 99, 3)))
            .push(Layer::Dense(Dense::new(8, 4, &mut rng)))
            .push(Layer::Sigmoid(Sigmoid::new()))
    }

    #[test]
    fn mlp_roundtrip_is_bit_identical_and_byte_stable() {
        let mut rng = init::rng(7);
        let mut net = Network::mlp(&[5, 8, 3], &mut rng);
        let bytes = save_network(&net);
        assert_eq!(bytes, save_network(&net), "same model, same bytes");
        let mut back = load_network(&bytes).expect("valid artifact");
        let a = net.flat_params();
        let b = back.flat_params();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let x = Tensor::from_vec(vec![0.3, -1.0, 0.5, 2.0, -0.25], [1, 5]).unwrap();
        let ya = net.forward(&x, false);
        let yb = back.forward(&x, false);
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Re-saving the loaded model reproduces the artifact exactly.
        assert_eq!(save_network(&back), bytes);
    }

    #[test]
    fn every_layer_kind_roundtrips() {
        let mut net = all_kinds_network();
        let bytes = save_network(&net);
        let mut back = load_network(&bytes).expect("valid artifact");
        assert_eq!(net.layers().len(), back.layers().len());
        for (l, m) in net.layers().iter().zip(back.layers()) {
            assert_eq!(l.name(), m.name());
        }
        // Forward in train mode exercises dropout's (seed, step) stream
        // and batch-norm's running-stat updates on both copies equally.
        let x = Tensor::from_vec((0..72).map(|i| i as f32 * 0.1 - 3.0).collect(), [2, 36]).unwrap();
        for train in [false, true, true] {
            let ya = net.forward(&x, train);
            let yb = back.forward(&x, train);
            for (p, q) in ya.data().iter().zip(yb.data()) {
                assert_eq!(p.to_bits(), q.to_bits(), "train={train}");
            }
        }
        // Dropout advanced in lockstep, so a re-save of both still agrees.
        assert_eq!(save_network(&net), save_network(&back));
    }

    #[test]
    fn q8_networks_store_codes_natively_and_roundtrip_bitwise() {
        let mut rng = init::rng(21);
        let teacher = Network::mlp(&[6, 10, 4], &mut rng);
        let (mut deq, _report, qts) = dl_compress::quantize_network_tensors(&teacher, 8);
        let mut b = ArtifactBuilder::new();
        b.hparam("artifact.kind", HParam::Str(NETWORK_KIND.to_string()));
        encode_network_q8(&mut b, "net", &deq, &qts);
        let bytes = b.finish();

        let a = Artifact::parse(&bytes).unwrap();
        // The payloads really are the packed codes, not dequantized f32s.
        let entry = a.tensor("net.layer0.weight").expect("directory entry");
        assert_eq!(entry.dtype, Dtype::Q8);
        assert_eq!(a.payload(entry).unwrap(), qts[0].codes());

        let (mut back, quants) = decode_network_with_quant(&a, "net").unwrap();
        let quants = quants.expect("q8 params detected");
        assert_eq!(quants.len(), qts.len());
        // load -> dequantize equals dequantize-before-save, bitwise.
        for (x, y) in deq.flat_params().iter().zip(back.flat_params()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0, 0.0, -1.5], [1, 6]).unwrap();
        let ya = deq.forward(&x, false);
        let yb = back.forward(&x, false);
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Re-encoding from the recovered codes is byte-identical.
        let mut b2 = ArtifactBuilder::new();
        b2.hparam("artifact.kind", HParam::Str(NETWORK_KIND.to_string()));
        encode_network_q8(&mut b2, "net", &back, &quants);
        assert_eq!(b2.finish(), bytes);
    }

    #[test]
    fn foreign_artifact_kind_is_rejected() {
        let mut b = ArtifactBuilder::new();
        b.hparam("artifact.kind", HParam::Str("something-else".into()));
        let bytes = b.finish();
        assert!(matches!(
            load_network(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    proptest! {
        #[test]
        fn save_load_dequantize_equals_dequantize_before_save(
            seed in 0u64..200, hidden in 2usize..12,
        ) {
            // The satellite contract, as a property over random models:
            // persisting the packed int8 codes and dequantizing after
            // load gives exactly the f32s the in-memory model served.
            let mut rng = init::rng(seed);
            let net = Network::mlp(&[4, hidden, 3], &mut rng);
            let (deq, _report, qts) = dl_compress::quantize_network_tensors(&net, 8);
            let mut b = ArtifactBuilder::new();
            encode_network_q8(&mut b, "net", &deq, &qts);
            let bytes = b.finish();
            let a = Artifact::parse(&bytes).unwrap();
            let (back, _) = decode_network_with_quant(&a, "net").unwrap();
            for (x, y) in deq.flat_params().iter().zip(back.flat_params()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
