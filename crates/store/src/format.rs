//! The raw artifact format: builder, parser, checksums.
//!
//! Everything is little-endian and insertion-ordered; there is no
//! hash-map anywhere in the encode path, so the same inputs always
//! produce the same bytes. See the crate docs for the layout diagram.

use crate::StoreError;
use dl_compress::QuantizedTensor;
use dl_tensor::Tensor;

/// File magic: the first four bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"DLST";

/// Format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Tensor payload alignment in bytes. Payload offsets are multiples of
/// this, so a memory-mapped artifact can hand kernels cache-line- and
/// SIMD-aligned pointers without copying.
pub const ALIGN: usize = 64;

/// Minimum parseable artifact: header (16 bytes) + trailer checksum (8).
const MIN_LEN: usize = 24;

/// FNV-1a 64-bit checksum — the format's corruption detector. Chosen for
/// being trivially re-implementable (one xor, one multiply per byte) so
/// external tools can verify artifacts without this crate.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Payload element encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// Little-endian `f32`s, 4 bytes per element.
    F32,
    /// Packed int8 affine codes from `dl-compress`, 1 byte per element,
    /// with scale / zero point / bit width carried in the directory.
    Q8,
}

impl Dtype {
    fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::Q8 => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Dtype::F32),
            1 => Some(Dtype::Q8),
            _ => None,
        }
    }
}

/// A typed hparam value. Floating hyper-parameters that must round-trip
/// exactly are stored as bit patterns in [`HParam::U64`] by convention
/// (the codecs in [`crate::network`] do this for every `f32` knob).
#[derive(Debug, Clone, PartialEq)]
pub enum HParam {
    /// Unsigned integer (also used for `f32`/`f64` bit patterns).
    U64(u64),
    /// Double-precision float (only for values where rounding is benign).
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes (e.g. shard cursors packed little-endian).
    Bytes(Vec<u8>),
}

/// One tensor directory entry, as parsed back from an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Namespaced tensor name (e.g. `net.layer0.weight`).
    pub name: String,
    /// Payload encoding.
    pub dtype: Dtype,
    /// Logical dimensions.
    pub dims: Vec<usize>,
    /// Absolute payload offset (a multiple of [`ALIGN`]).
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
    /// `(scale, zero, bits)` for [`Dtype::Q8`] entries.
    pub quant: Option<(f32, f32, u8)>,
}

struct PendingTensor {
    name: String,
    dtype: Dtype,
    dims: Vec<usize>,
    quant: Option<(f32, f32, u8)>,
    payload: Vec<u8>,
}

/// Incrementally assembles an artifact; [`ArtifactBuilder::finish`]
/// lays out the bytes. Hparams and tensors keep insertion order.
#[derive(Default)]
#[must_use = "a builder does nothing until finish() lays out the bytes"]
pub struct ArtifactBuilder {
    hparams: Vec<(String, HParam)>,
    tensors: Vec<PendingTensor>,
}

impl ArtifactBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ArtifactBuilder::default()
    }

    /// Appends one hparam.
    ///
    /// # Panics
    /// Panics on a duplicate name — keys are namespaced by the codecs, so
    /// a collision is a programming error, not a data error.
    pub fn hparam(&mut self, name: impl Into<String>, value: HParam) {
        let name = name.into();
        assert!(
            self.hparams.iter().all(|(n, _)| *n != name),
            "duplicate hparam {name:?}"
        );
        self.hparams.push((name, value));
    }

    /// Appends an `f32` tensor.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `dims`, or on
    /// a duplicate tensor name.
    pub fn tensor_f32(&mut self, name: impl Into<String>, dims: &[usize], data: &[f32]) {
        let len: usize = dims.iter().product();
        assert_eq!(data.len(), len, "payload length must match dims");
        let mut payload = Vec::with_capacity(data.len() * 4);
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.push_tensor(name.into(), Dtype::F32, dims.to_vec(), None, payload);
    }

    /// Appends a packed-int8 tensor: the raw codes plus quant params,
    /// exactly as held by a `dl_compress::QuantizedTensor`.
    ///
    /// # Panics
    /// Panics if the code count does not match the product of `dims`, or
    /// on a duplicate tensor name.
    pub fn tensor_q8(
        &mut self,
        name: impl Into<String>,
        dims: &[usize],
        codes: &[u8],
        scale: f32,
        zero: f32,
        bits: u8,
    ) {
        let len: usize = dims.iter().product();
        assert_eq!(codes.len(), len, "code count must match dims");
        self.push_tensor(
            name.into(),
            Dtype::Q8,
            dims.to_vec(),
            Some((scale, zero, bits)),
            codes.to_vec(),
        );
    }

    fn push_tensor(
        &mut self,
        name: String,
        dtype: Dtype,
        dims: Vec<usize>,
        quant: Option<(f32, f32, u8)>,
        payload: Vec<u8>,
    ) {
        assert!(
            self.tensors.iter().all(|t| t.name != name),
            "duplicate tensor {name:?}"
        );
        self.tensors.push(PendingTensor {
            name,
            dtype,
            dims,
            quant,
            payload,
        });
    }

    /// Size of the directory entry for `t` once encoded.
    fn entry_len(t: &PendingTensor) -> usize {
        // name (4 + bytes) + dtype (1) + ndims (4) + dims (8 each)
        // + quant (4+4+1 for Q8) + offset (8) + len (8) + checksum (8)
        4 + t.name.len() + 1 + 4 + 8 * t.dims.len() + if t.quant.is_some() { 9 } else { 0 } + 24
    }

    /// Lays out the final byte image: header, hparams, directory,
    /// aligned payloads, trailer checksum.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        put_u32(&mut head, VERSION);
        put_u32(&mut head, self.hparams.len() as u32);
        put_u32(&mut head, self.tensors.len() as u32);
        for (name, value) in &self.hparams {
            put_str(&mut head, name);
            match value {
                HParam::U64(v) => {
                    head.push(0);
                    put_u64(&mut head, *v);
                }
                HParam::F64(v) => {
                    head.push(1);
                    put_u64(&mut head, v.to_bits());
                }
                HParam::Str(s) => {
                    head.push(2);
                    put_str(&mut head, s);
                }
                HParam::Bytes(b) => {
                    head.push(3);
                    put_u32(&mut head, b.len() as u32);
                    head.extend_from_slice(b);
                }
            }
        }

        // Directory size is known up front, so payload offsets are too.
        let dir_len: usize = self.tensors.iter().map(Self::entry_len).sum();
        let mut offset = align_up(head.len() + dir_len);
        let mut offsets = Vec::with_capacity(self.tensors.len());
        for t in &self.tensors {
            offsets.push(offset);
            offset = align_up(offset + t.payload.len());
        }

        for (t, &off) in self.tensors.iter().zip(&offsets) {
            put_str(&mut head, &t.name);
            head.push(t.dtype.tag());
            put_u32(&mut head, t.dims.len() as u32);
            for &d in &t.dims {
                put_u64(&mut head, d as u64);
            }
            if let Some((scale, zero, bits)) = t.quant {
                put_u32(&mut head, scale.to_bits());
                put_u32(&mut head, zero.to_bits());
                head.push(bits);
            }
            put_u64(&mut head, off as u64);
            put_u64(&mut head, t.payload.len() as u64);
            put_u64(&mut head, fnv1a(&t.payload));
        }

        let mut out = head;
        for (t, &off) in self.tensors.iter().zip(&offsets) {
            out.resize(off, 0);
            out.extend_from_slice(&t.payload);
        }
        let trailer = fnv1a(&out);
        put_u64(&mut out, trailer);
        out
    }
}

fn align_up(n: usize) -> usize {
    n.div_ceil(ALIGN) * ALIGN
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A parsed artifact view over a byte buffer. Parsing verifies the magic,
/// version and whole-file trailer checksum eagerly; per-tensor payload
/// checksums are verified on access (so a mapped file only touches the
/// pages it reads).
#[derive(Debug)]
#[must_use = "a parsed artifact is a read-only view; query it for tensors"]
pub struct Artifact<'a> {
    data: &'a [u8],
    hparams: Vec<(String, HParam)>,
    entries: Vec<TensorEntry>,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated {
            needed: usize::MAX,
            have: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 name".into()))
    }
}

impl<'a> Artifact<'a> {
    /// Parses and validates `data` as an artifact.
    ///
    /// # Errors
    /// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] for
    /// foreign files, [`StoreError::Truncated`] when sections overrun the
    /// buffer, [`StoreError::ChecksumMismatch`] when the trailer disagrees
    /// with the bytes, [`StoreError::Corrupt`] for structural damage.
    pub fn parse(data: &'a [u8]) -> Result<Self, StoreError> {
        if data.len() < 4 {
            return Err(StoreError::Truncated {
                needed: MIN_LEN,
                have: data.len(),
            });
        }
        let magic: [u8; 4] = data[..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        if data.len() < MIN_LEN {
            return Err(StoreError::Truncated {
                needed: MIN_LEN,
                have: data.len(),
            });
        }
        let body = &data[..data.len() - 8];
        let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().expect("8 bytes"));
        let actual = fnv1a(body);
        if stored != actual {
            return Err(StoreError::ChecksumMismatch {
                what: "file".into(),
                expected: stored,
                actual,
            });
        }

        let mut c = Cursor { buf: body, pos: 4 };
        let version = c.u32()?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let n_hparams = c.u32()? as usize;
        let n_tensors = c.u32()? as usize;

        let mut hparams = Vec::with_capacity(n_hparams);
        for _ in 0..n_hparams {
            let name = c.str()?;
            let value = match c.u8()? {
                0 => HParam::U64(c.u64()?),
                1 => HParam::F64(f64::from_bits(c.u64()?)),
                2 => HParam::Str(c.str()?),
                3 => {
                    let len = c.u32()? as usize;
                    HParam::Bytes(c.take(len)?.to_vec())
                }
                tag => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown hparam tag {tag} for {name:?}"
                    )))
                }
            };
            hparams.push((name, value));
        }

        let mut entries = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            let name = c.str()?;
            let dtype = Dtype::from_tag(c.u8()?)
                .ok_or_else(|| StoreError::Corrupt(format!("unknown dtype for {name:?}")))?;
            let ndims = c.u32()? as usize;
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                dims.push(c.u64()? as usize);
            }
            let quant = match dtype {
                Dtype::F32 => None,
                Dtype::Q8 => {
                    let scale = f32::from_bits(c.u32()?);
                    let zero = f32::from_bits(c.u32()?);
                    let bits = c.u8()?;
                    Some((scale, zero, bits))
                }
            };
            let offset = c.u64()? as usize;
            let len = c.u64()? as usize;
            let checksum = c.u64()?;
            if !offset.is_multiple_of(ALIGN) {
                return Err(StoreError::Corrupt(format!(
                    "tensor {name:?} payload offset {offset} is not {ALIGN}-byte aligned"
                )));
            }
            let end = offset.checked_add(len).ok_or_else(|| {
                StoreError::Corrupt(format!("tensor {name:?} payload range overflows"))
            })?;
            if end > body.len() {
                return Err(StoreError::Truncated {
                    needed: end + 8,
                    have: data.len(),
                });
            }
            let elems: usize = dims.iter().product();
            let expect = match dtype {
                Dtype::F32 => elems * 4,
                Dtype::Q8 => elems,
            };
            if len != expect {
                return Err(StoreError::Corrupt(format!(
                    "tensor {name:?} payload is {len} bytes for dims {dims:?}"
                )));
            }
            entries.push(TensorEntry {
                name,
                dtype,
                dims,
                offset,
                len,
                checksum,
                quant,
            });
        }

        Ok(Artifact {
            data,
            hparams,
            entries,
        })
    }

    /// All hparams in stored order.
    #[must_use]
    pub fn hparams(&self) -> &[(String, HParam)] {
        &self.hparams
    }

    /// All tensor directory entries in stored order.
    #[must_use]
    pub fn entries(&self) -> &[TensorEntry] {
        &self.entries
    }

    /// Looks up one hparam by name.
    #[must_use]
    pub fn hparam(&self, name: &str) -> Option<&HParam> {
        self.hparams.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// A required `U64` hparam.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when missing or differently typed.
    pub fn hparam_u64(&self, name: &str) -> Result<u64, StoreError> {
        match self.hparam(name) {
            Some(HParam::U64(v)) => Ok(*v),
            _ => Err(StoreError::Corrupt(format!("missing u64 hparam {name:?}"))),
        }
    }

    /// A required `f32` hparam stored as a `U64` bit pattern.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when missing, differently typed, or not a
    /// valid `f32` bit pattern.
    pub fn hparam_f32_bits(&self, name: &str) -> Result<f32, StoreError> {
        let bits = self.hparam_u64(name)?;
        u32::try_from(bits)
            .map(f32::from_bits)
            .map_err(|_| StoreError::Corrupt(format!("hparam {name:?} is not an f32 bit pattern")))
    }

    /// A required `F64` hparam (stored as a bit pattern, recovered
    /// exactly).
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when missing or differently typed.
    pub fn hparam_f64(&self, name: &str) -> Result<f64, StoreError> {
        match self.hparam(name) {
            Some(HParam::F64(v)) => Ok(*v),
            _ => Err(StoreError::Corrupt(format!("missing f64 hparam {name:?}"))),
        }
    }

    /// A required `Str` hparam.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when missing or differently typed.
    pub fn hparam_str(&self, name: &str) -> Result<&str, StoreError> {
        match self.hparam(name) {
            Some(HParam::Str(s)) => Ok(s),
            _ => Err(StoreError::Corrupt(format!("missing str hparam {name:?}"))),
        }
    }

    /// Looks up a tensor entry by name.
    #[must_use]
    pub fn tensor(&self, name: &str) -> Option<&TensorEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The raw payload bytes of `entry`, checksum-verified.
    ///
    /// # Errors
    /// [`StoreError::ChecksumMismatch`] when the payload bytes do not
    /// match the directory checksum.
    pub fn payload(&self, entry: &TensorEntry) -> Result<&'a [u8], StoreError> {
        let bytes = &self.data[entry.offset..entry.offset + entry.len];
        let actual = fnv1a(bytes);
        if actual != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                what: entry.name.clone(),
                expected: entry.checksum,
                actual,
            });
        }
        Ok(bytes)
    }

    /// Decodes a named `f32` tensor.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when the tensor is missing or not `F32`;
    /// checksum errors propagate from [`Artifact::payload`].
    pub fn tensor_f32(&self, name: &str) -> Result<Tensor, StoreError> {
        let entry = self
            .tensor(name)
            .ok_or_else(|| StoreError::Corrupt(format!("missing tensor {name:?}")))?;
        if entry.dtype != Dtype::F32 {
            return Err(StoreError::Corrupt(format!("tensor {name:?} is not f32")));
        }
        let bytes = self.payload(entry)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Tensor::from_vec(data, entry.dims.as_slice())
            .map_err(|e| StoreError::Corrupt(format!("tensor {name:?}: {e:?}")))
    }

    /// Decodes a named packed-int8 tensor back into a
    /// `dl_compress::QuantizedTensor` — codes untouched, no dequantize
    /// round-trip.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when the tensor is missing or not `Q8`;
    /// checksum errors propagate from [`Artifact::payload`].
    pub fn tensor_q8(&self, name: &str) -> Result<QuantizedTensor, StoreError> {
        let entry = self
            .tensor(name)
            .ok_or_else(|| StoreError::Corrupt(format!("missing tensor {name:?}")))?;
        let (scale, zero, bits) = match (entry.dtype, entry.quant) {
            (Dtype::Q8, Some(q)) => q,
            _ => return Err(StoreError::Corrupt(format!("tensor {name:?} is not q8"))),
        };
        let codes = self.payload(entry)?.to_vec();
        Ok(QuantizedTensor::from_parts(
            codes,
            scale,
            zero,
            bits,
            entry.dims.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = ArtifactBuilder::new();
        b.hparam("model.kind", HParam::Str("test".into()));
        b.hparam("model.layers", HParam::U64(2));
        b.hparam("model.lr", HParam::F64(0.125));
        b.hparam("model.cursors", HParam::Bytes(vec![1, 2, 3, 4]));
        b.tensor_f32("w0", &[2, 3], &[1.0, -2.5, 3.25, 0.0, 4.5, -6.75]);
        b.tensor_q8("w1", &[4], &[0, 127, 255, 63], 0.5, -1.0, 8);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bytes = sample();
        let a = Artifact::parse(&bytes).expect("valid artifact");
        assert_eq!(a.hparam_str("model.kind").unwrap(), "test");
        assert_eq!(a.hparam_u64("model.layers").unwrap(), 2);
        assert_eq!(a.hparam("model.lr"), Some(&HParam::F64(0.125)));
        assert_eq!(
            a.hparam("model.cursors"),
            Some(&HParam::Bytes(vec![1, 2, 3, 4]))
        );
        let w0 = a.tensor_f32("w0").unwrap();
        assert_eq!(w0.dims(), &[2, 3]);
        assert_eq!(w0.data(), &[1.0, -2.5, 3.25, 0.0, 4.5, -6.75]);
        let w1 = a.tensor_q8("w1").unwrap();
        assert_eq!(w1.codes(), &[0, 127, 255, 63]);
        assert_eq!(w1.scale(), 0.5);
        assert_eq!(w1.zero_point(), -1.0);
        assert_eq!(w1.bits(), 8);
        assert_eq!(w1.dims(), &[4]);
    }

    #[test]
    fn encoding_is_byte_stable_and_aligned() {
        let a = sample();
        let b = sample();
        assert_eq!(a, b, "same inputs, same bytes");
        let parsed = Artifact::parse(&a).unwrap();
        for e in parsed.entries() {
            assert_eq!(e.offset % ALIGN, 0, "{} misaligned", e.name);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        match Artifact::parse(&bytes) {
            Err(StoreError::BadMagic(m)) => assert_eq!(&m[1..], b"LST"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected_at_any_cut() {
        let bytes = sample();
        // Every strict prefix must fail — with Truncated until the cut
        // reaches the trailer, and never with a panic.
        for cut in [0, 3, 4, 10, 16, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = Artifact::parse(&bytes[..cut]).expect_err("prefix must not parse");
            match err {
                StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::BadMagic(_) => {}
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_byte_fails_the_file_checksum() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        match Artifact::parse(&bytes) {
            Err(StoreError::ChecksumMismatch { what, .. }) => assert_eq!(what, "file"),
            other => panic!("expected file checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn payload_corruption_behind_a_fixed_trailer_fails_the_tensor_checksum() {
        let mut bytes = sample();
        // Corrupt one payload byte, then re-seal the trailer so the file
        // checksum passes — the per-tensor checksum must still catch it.
        let a = Artifact::parse(&bytes).unwrap();
        let off = a.tensor("w0").unwrap().offset;
        drop(a);
        bytes[off] ^= 0x01;
        let n = bytes.len();
        let fixed = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&fixed.to_le_bytes());
        let a = Artifact::parse(&bytes).expect("trailer was re-sealed");
        match a.tensor_f32("w0") {
            Err(StoreError::ChecksumMismatch { what, .. }) => assert_eq!(what, "w0"),
            other => panic!("expected tensor checksum failure, got {other:?}"),
        }
        // The untouched tensor still reads fine.
        assert!(a.tensor_q8("w1").is_ok());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample();
        bytes[4] = 99;
        let n = bytes.len();
        let fixed = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&fixed.to_le_bytes());
        match Artifact::parse(&bytes) {
            Err(StoreError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate tensor")]
    fn duplicate_tensor_names_panic() {
        let mut b = ArtifactBuilder::new();
        b.tensor_f32("w", &[1], &[0.0]);
        b.tensor_f32("w", &[1], &[1.0]);
    }
}
