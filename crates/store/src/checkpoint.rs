//! Training-checkpoint codec on top of the artifact format.
//!
//! Carries everything `dl-distributed` needs to resume elastic Local
//! SGD: the completed step count, the flat synchronized parameters, the
//! optimizer's hyper-parameters and per-worker data-shard cursors. The
//! optimizer's moment buffers (momentum velocity, Adam m/v) are training
//! scratch that the existing JSON round-trip already dropped
//! (`#[serde(skip)]`) — this format preserves those semantics exactly:
//! hyper-parameters and the Adam timestep round-trip, accumulators are
//! rebuilt lazily on the first post-restore step.
//!
//! Scalar f32 hyper-parameters are stored as bit patterns, params as one
//! f32 tensor, cursors as little-endian u64 bytes — so a re-saved
//! checkpoint is byte-identical to the original artifact.

use crate::format::{Artifact, ArtifactBuilder, HParam};
use crate::StoreError;
use dl_nn::Optimizer;

/// Value of the `artifact.kind` hparam written by [`save_checkpoint`].
pub const CHECKPOINT_KIND: &str = "checkpoint";

/// The format-level view of a training checkpoint.
///
/// `dl-distributed`'s `Checkpoint` converts to and from this struct; the
/// codec itself stays free of any dependency on the training stack.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// Completed steps at capture time.
    pub step: u64,
    /// Flattened model parameters.
    pub params: Vec<f32>,
    /// Optimizer at capture time (moment buffers empty, as after
    /// deserialization of the `#[serde(skip)]` fields).
    pub optimizer: Optimizer,
    /// Per-worker data-shard cursors.
    pub cursors: Vec<u64>,
}

fn bits(v: f32) -> HParam {
    HParam::U64(u64::from(v.to_bits()))
}

/// Serializes a checkpoint as a standalone artifact.
#[must_use]
pub fn save_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let mut b = ArtifactBuilder::new();
    b.hparam("artifact.kind", HParam::Str(CHECKPOINT_KIND.to_string()));
    b.hparam("ckpt.step", HParam::U64(data.step));
    match &data.optimizer {
        Optimizer::Sgd { lr } => {
            b.hparam("ckpt.opt.kind", HParam::Str("sgd".to_string()));
            b.hparam("ckpt.opt.lr_bits", bits(*lr));
        }
        Optimizer::Momentum { lr, beta, .. } => {
            b.hparam("ckpt.opt.kind", HParam::Str("momentum".to_string()));
            b.hparam("ckpt.opt.lr_bits", bits(*lr));
            b.hparam("ckpt.opt.beta_bits", bits(*beta));
        }
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
            ..
        } => {
            b.hparam("ckpt.opt.kind", HParam::Str("adam".to_string()));
            b.hparam("ckpt.opt.lr_bits", bits(*lr));
            b.hparam("ckpt.opt.beta1_bits", bits(*beta1));
            b.hparam("ckpt.opt.beta2_bits", bits(*beta2));
            b.hparam("ckpt.opt.eps_bits", bits(*eps));
            b.hparam("ckpt.opt.t", HParam::U64(*t));
        }
    }
    let mut cursor_bytes = Vec::with_capacity(data.cursors.len() * 8);
    for c in &data.cursors {
        cursor_bytes.extend_from_slice(&c.to_le_bytes());
    }
    b.hparam("ckpt.cursors", HParam::Bytes(cursor_bytes));
    b.tensor_f32("ckpt.params", &[data.params.len()], &data.params);
    b.finish()
}

/// Loads a checkpoint saved by [`save_checkpoint`].
///
/// # Errors
/// Format errors from [`Artifact::parse`]; [`StoreError::Corrupt`] when
/// the artifact is not a checkpoint or names an unknown optimizer.
pub fn load_checkpoint(bytes: &[u8]) -> Result<CheckpointData, StoreError> {
    let a = Artifact::parse(bytes)?;
    let kind = a.hparam_str("artifact.kind")?;
    if kind != CHECKPOINT_KIND {
        return Err(StoreError::Corrupt(format!(
            "artifact kind {kind:?} is not a checkpoint"
        )));
    }
    let step = a.hparam_u64("ckpt.step")?;
    let optimizer = match a.hparam_str("ckpt.opt.kind")? {
        "sgd" => Optimizer::Sgd {
            lr: a.hparam_f32_bits("ckpt.opt.lr_bits")?,
        },
        "momentum" => Optimizer::Momentum {
            lr: a.hparam_f32_bits("ckpt.opt.lr_bits")?,
            beta: a.hparam_f32_bits("ckpt.opt.beta_bits")?,
            velocity: Vec::new(),
        },
        "adam" => Optimizer::Adam {
            lr: a.hparam_f32_bits("ckpt.opt.lr_bits")?,
            beta1: a.hparam_f32_bits("ckpt.opt.beta1_bits")?,
            beta2: a.hparam_f32_bits("ckpt.opt.beta2_bits")?,
            eps: a.hparam_f32_bits("ckpt.opt.eps_bits")?,
            t: a.hparam_u64("ckpt.opt.t")?,
            m: Vec::new(),
            v: Vec::new(),
        },
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown optimizer kind {other:?}"
            )))
        }
    };
    let cursor_bytes = match a.hparam("ckpt.cursors") {
        Some(HParam::Bytes(raw)) => raw,
        _ => {
            return Err(StoreError::Corrupt(
                "missing or mistyped ckpt.cursors".to_string(),
            ))
        }
    };
    if cursor_bytes.len() % 8 != 0 {
        return Err(StoreError::Corrupt(format!(
            "cursor bytes not a multiple of 8: {}",
            cursor_bytes.len()
        )));
    }
    let cursors = cursor_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    let params = a.tensor_f32("ckpt.params")?.data().to_vec();
    Ok(CheckpointData {
        step,
        params,
        optimizer,
        cursors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(optimizer: Optimizer) -> CheckpointData {
        CheckpointData {
            step: 4217,
            params: (0..257).map(|i| (i as f32 * 0.37 - 11.0).sin()).collect(),
            optimizer,
            cursors: vec![272, 272, 256, 0, u64::MAX],
        }
    }

    #[test]
    fn every_optimizer_roundtrips_exactly() {
        let mut adam = Optimizer::adam(1e-3);
        if let Optimizer::Adam { t, .. } = &mut adam {
            *t = 999;
        }
        for opt in [Optimizer::sgd(0.05), Optimizer::momentum(0.01), adam] {
            let data = sample(opt);
            let bytes = save_checkpoint(&data);
            let back = load_checkpoint(&bytes).expect("valid artifact");
            assert_eq!(back.step, data.step);
            assert_eq!(back.cursors, data.cursors);
            assert_eq!(back.params.len(), data.params.len());
            for (x, y) in data.params.iter().zip(&back.params) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            // Re-save is byte-identical.
            assert_eq!(save_checkpoint(&back), bytes);
        }
    }

    #[test]
    fn network_artifacts_are_not_checkpoints() {
        let net = dl_nn::Network::mlp(&[3, 4, 2], &mut dl_tensor::init::rng(1));
        let bytes = crate::network::save_network(&net);
        assert!(matches!(
            load_checkpoint(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupted_checkpoint_is_detected() {
        let data = sample(Optimizer::sgd(0.1));
        let mut bytes = save_checkpoint(&data);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(load_checkpoint(&bytes).is_err());
    }
}
