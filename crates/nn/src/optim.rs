//! Optimizers and learning-rate schedules.
//!
//! The cyclic cosine schedule ([`LrSchedule::CyclicCosine`]) is the engine
//! behind Snapshot Ensembles (§2.1 of the tutorial): the learning rate is
//! repeatedly annealed to ~0 (where a snapshot is taken) and restarted.

use dl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Gradient-descent update rules over a flat list of parameter tensors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Base learning rate.
        lr: f32,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Base learning rate.
        lr: f32,
        /// Momentum coefficient (typically 0.9).
        beta: f32,
        /// Velocity state, lazily sized to the parameter list.
        #[serde(skip)]
        velocity: Vec<Tensor>,
    },
    /// Adam with bias correction.
    Adam {
        /// Base learning rate.
        lr: f32,
        /// First-moment decay (typically 0.9).
        beta1: f32,
        /// Second-moment decay (typically 0.999).
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Timestep for bias correction.
        t: u64,
        /// First-moment state.
        #[serde(skip)]
        m: Vec<Tensor>,
        /// Second-moment state.
        #[serde(skip)]
        v: Vec<Tensor>,
    },
}

impl Optimizer {
    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// Momentum SGD with coefficient 0.9.
    pub fn momentum(lr: f32) -> Self {
        Optimizer::Momentum {
            lr,
            beta: 0.9,
            velocity: Vec::new(),
        }
    }

    /// Adam with the standard (0.9, 0.999, 1e-8) hyper-parameters.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configured base learning rate.
    pub fn base_lr(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr } | Optimizer::Momentum { lr, .. } | Optimizer::Adam { lr, .. } => {
                *lr
            }
        }
    }

    /// Applies one update to `params` given `grads`, scaling the base
    /// learning rate by `lr_scale` (supplied by the active [`LrSchedule`]).
    ///
    /// # Panics
    /// Panics if `params` and `grads` differ in length or any pair differs
    /// in shape, or if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)], lr_scale: f32) {
        match self {
            Optimizer::Sgd { lr } => {
                let lr = *lr * lr_scale;
                for (p, g) in params.iter_mut() {
                    **p = &**p - &(&**g * lr);
                }
            }
            Optimizer::Momentum { lr, beta, velocity } => {
                if velocity.is_empty() {
                    *velocity = params
                        .iter()
                        .map(|(p, _)| Tensor::zeros(p.shape().clone()))
                        .collect();
                }
                assert_eq!(velocity.len(), params.len(), "parameter list changed");
                let lr = *lr * lr_scale;
                for ((p, g), vel) in params.iter_mut().zip(velocity.iter_mut()) {
                    *vel = &(&*vel * *beta) + &(&**g * lr);
                    **p = &**p - &*vel;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                if m.is_empty() {
                    *m = params
                        .iter()
                        .map(|(p, _)| Tensor::zeros(p.shape().clone()))
                        .collect();
                    *v = m.clone();
                }
                assert_eq!(m.len(), params.len(), "parameter list changed");
                *t += 1;
                let lr = *lr * lr_scale;
                let bc1 = 1.0 - beta1.powi(*t as i32);
                let bc2 = 1.0 - beta2.powi(*t as i32);
                for (i, (p, g)) in params.iter_mut().enumerate() {
                    m[i] = &(&m[i] * *beta1) + &(&**g * (1.0 - *beta1));
                    v[i] = &(&v[i] * *beta2) + &(g.map(|x| x * x) * (1.0 - *beta2));
                    let m_hat = &m[i] * (1.0 / bc1);
                    let v_hat = &v[i] * (1.0 / bc2);
                    let update = m_hat.zip(&v_hat, |mh, vh| lr * mh / (vh.sqrt() + *eps));
                    **p = &**p - &update;
                }
            }
        }
    }
}

/// Learning-rate schedules, expressed as a multiplier on the base rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier of 1.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing restarted every `cycle_len` epochs: the schedule of
    /// Snapshot Ensembles. The multiplier starts at 1 and anneals to ~0 at
    /// the end of each cycle.
    CyclicCosine {
        /// Epochs per cycle (a snapshot is taken at each cycle end).
        cycle_len: usize,
    },
    /// Triangular cycles between a high and a low rate: the schedule of
    /// Fast Geometric Ensembles. The multiplier descends linearly from 1
    /// to `floor` over the first half of each cycle and climbs back; the
    /// cycle's *minimum* (where FGE collects a model) is flagged by
    /// [`LrSchedule::is_cycle_end`].
    CyclicTriangular {
        /// Epochs per cycle.
        cycle_len: usize,
        /// Low-rate multiplier at the cycle minimum, in `(0, 1]`.
        floor: f32,
    },
}

impl LrSchedule {
    /// Multiplier for the given 0-based epoch.
    pub fn scale(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => gamma.powi((epoch / every.max(&1)) as i32),
            LrSchedule::CyclicCosine { cycle_len } => {
                let cycle_len = (*cycle_len).max(1);
                let pos = (epoch % cycle_len) as f32 / cycle_len as f32;
                0.5 * (1.0 + (std::f32::consts::PI * pos).cos())
            }
            LrSchedule::CyclicTriangular { cycle_len, floor } => {
                let cycle_len = (*cycle_len).max(2);
                let pos = (epoch % cycle_len) as f32 / cycle_len as f32;
                // descend for the first half, ascend for the second
                let t = if pos < 0.5 { pos * 2.0 } else { 2.0 - pos * 2.0 };
                1.0 + (floor - 1.0) * t
            }
        }
    }

    /// True when `epoch` (0-based) is a model-collection point: the end of
    /// a cosine cycle (Snapshot Ensembles) or the minimum of a triangular
    /// cycle (Fast Geometric Ensembles).
    pub fn is_cycle_end(&self, epoch: usize) -> bool {
        match self {
            LrSchedule::CyclicCosine { cycle_len } => (epoch + 1).is_multiple_of((*cycle_len).max(1)),
            LrSchedule::CyclicTriangular { cycle_len, .. } => {
                let cycle_len = (*cycle_len).max(2);
                epoch % cycle_len == cycle_len / 2
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(p: &Tensor) -> Tensor {
        // gradient of f(p) = |p|^2 / 2
        p.clone()
    }

    /// All optimizers should descend a convex quadratic.
    fn descends(mut opt: Optimizer, steps: usize) -> f32 {
        let mut p = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]).unwrap();
        for _ in 0..steps {
            let mut g = quad_grad(&p);
            let mut binding = vec![(&mut p, &mut g)];
            opt.step(&mut binding, 1.0);
        }
        p.norm()
    }

    #[test]
    fn sgd_descends_quadratic() {
        assert!(descends(Optimizer::sgd(0.1), 100) < 1e-3);
    }

    #[test]
    fn momentum_descends_quadratic() {
        assert!(descends(Optimizer::momentum(0.05), 200) < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        assert!(descends(Optimizer::adam(0.1), 300) < 1e-2);
    }

    #[test]
    fn sgd_update_is_exact() {
        let mut p = Tensor::from_vec(vec![1.0], [1]).unwrap();
        let mut g = Tensor::from_vec(vec![0.5], [1]).unwrap();
        let mut opt = Optimizer::sgd(0.2);
        opt.step(&mut [(&mut p, &mut g)], 1.0);
        assert!((p.data()[0] - 0.9).abs() < 1e-7);
    }

    #[test]
    fn lr_scale_multiplies() {
        let mut p = Tensor::from_vec(vec![1.0], [1]).unwrap();
        let mut g = Tensor::from_vec(vec![1.0], [1]).unwrap();
        let mut opt = Optimizer::sgd(0.1);
        opt.step(&mut [(&mut p, &mut g)], 0.5);
        assert!((p.data()[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Tensor::from_vec(vec![0.0], [1]).unwrap();
        let mut opt = Optimizer::momentum(0.1);
        // constant gradient of 1: velocity grows, steps get larger
        let mut last = 0.0f32;
        let mut deltas = Vec::new();
        for _ in 0..3 {
            let mut g = Tensor::from_vec(vec![1.0], [1]).unwrap();
            opt.step(&mut [(&mut p, &mut g)], 1.0);
            deltas.push(last - p.data()[0]);
            last = p.data()[0];
        }
        assert!(deltas[1] > deltas[0]);
        assert!(deltas[2] > deltas[1]);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // with bias correction, the first Adam step has magnitude ~lr
        let mut p = Tensor::from_vec(vec![0.0], [1]).unwrap();
        let mut g = Tensor::from_vec(vec![0.3], [1]).unwrap();
        let mut opt = Optimizer::adam(0.1);
        opt.step(&mut [(&mut p, &mut g)], 1.0);
        assert!((p.data()[0].abs() - 0.1).abs() < 1e-3, "step was {}", p.data()[0]);
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant.scale(0), 1.0);
        assert_eq!(LrSchedule::Constant.scale(99), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.scale(0), 1.0);
        assert_eq!(s.scale(9), 1.0);
        assert_eq!(s.scale(10), 0.5);
        assert_eq!(s.scale(25), 0.25);
    }

    #[test]
    fn cyclic_cosine_restarts() {
        let s = LrSchedule::CyclicCosine { cycle_len: 10 };
        assert!((s.scale(0) - 1.0).abs() < 1e-6);
        assert!(s.scale(9) < 0.05); // annealed near zero at cycle end
        assert!((s.scale(10) - 1.0).abs() < 1e-6); // restart
        assert!(s.is_cycle_end(9));
        assert!(!s.is_cycle_end(8));
        assert!(s.is_cycle_end(19));
    }

    #[test]
    fn cyclic_triangular_descends_then_climbs() {
        let s = LrSchedule::CyclicTriangular {
            cycle_len: 8,
            floor: 0.1,
        };
        assert!((s.scale(0) - 1.0).abs() < 1e-6);
        // minimum at mid-cycle
        assert!((s.scale(4) - 0.1).abs() < 1e-6);
        assert!(s.scale(2) < s.scale(1));
        assert!(s.scale(6) > s.scale(5));
        // collection points at each cycle's minimum
        assert!(s.is_cycle_end(4));
        assert!(s.is_cycle_end(12));
        assert!(!s.is_cycle_end(0));
        assert!(!s.is_cycle_end(7));
    }

    #[test]
    fn cyclic_cosine_monotone_within_cycle() {
        let s = LrSchedule::CyclicCosine { cycle_len: 8 };
        for e in 0..7 {
            assert!(s.scale(e) > s.scale(e + 1), "not decreasing at epoch {e}");
        }
    }
}
