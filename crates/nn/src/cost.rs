//! Resource cost accounting: the "resource-related metrics" of the tutorial.
//!
//! The tutorial classifies every efficiency technique by how it moves
//! quality metrics (accuracy) against resource metrics (training time,
//! inference time, memory). This module provides the resource side: static,
//! hardware-independent counts of floating-point work and bytes moved, which
//! the simulator crates (`dl-distributed`, `dl-green`) later turn into
//! seconds and joules under explicit hardware models.

use serde::{Deserialize, Serialize};

/// Static cost of one layer for a given batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerCost {
    /// Floating-point operations for one forward pass.
    pub forward_flops: u64,
    /// Floating-point operations for one backward pass (grads for params and
    /// input). We use the standard approximation of 2x the forward work.
    pub backward_flops: u64,
    /// Number of trainable parameters.
    pub params: u64,
    /// Elements of activation output that must be held for backward.
    pub activation_elems: u64,
}

impl LayerCost {
    /// Cost of a dense layer `[fan_in, fan_out]` at `batch` samples.
    pub fn dense(batch: usize, fan_in: usize, fan_out: usize) -> Self {
        let fwd = 2 * (batch * fan_in * fan_out) as u64 + (batch * fan_out) as u64;
        LayerCost {
            forward_flops: fwd,
            backward_flops: 2 * fwd,
            params: (fan_in * fan_out + fan_out) as u64,
            activation_elems: (batch * fan_out) as u64,
        }
    }

    /// Cost of a 2-D convolution at `batch` samples.
    pub fn conv2d(
        batch: usize,
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        out_h: usize,
        out_w: usize,
    ) -> Self {
        let per_output = 2 * in_c * kh * kw; // multiply-add per output element
        let outputs = batch * out_c * out_h * out_w;
        let fwd = (per_output * outputs) as u64;
        LayerCost {
            forward_flops: fwd,
            backward_flops: 2 * fwd,
            params: (out_c * in_c * kh * kw + out_c) as u64,
            activation_elems: outputs as u64,
        }
    }

    /// Cost of an elementwise layer over `elems` activations.
    pub fn elementwise(elems: usize) -> Self {
        LayerCost {
            forward_flops: elems as u64,
            backward_flops: elems as u64,
            params: 0,
            activation_elems: elems as u64,
        }
    }

    /// Component-wise sum of two costs.
    pub fn merge(self, other: LayerCost) -> Self {
        LayerCost {
            forward_flops: self.forward_flops + other.forward_flops,
            backward_flops: self.backward_flops + other.backward_flops,
            params: self.params + other.params,
            activation_elems: self.activation_elems + other.activation_elems,
        }
    }
}

/// Aggregate cost of a whole network, plus derived byte figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostProfile {
    /// Total forward FLOPs per batch.
    pub forward_flops: u64,
    /// Total backward FLOPs per batch.
    pub backward_flops: u64,
    /// Total trainable parameters.
    pub params: u64,
    /// Total activation elements held live for backward per batch.
    pub activation_elems: u64,
}

impl CostProfile {
    /// Builds the profile from per-layer costs.
    pub fn from_layers(layers: &[LayerCost]) -> Self {
        let total = layers
            .iter()
            .copied()
            .fold(LayerCost::default(), LayerCost::merge);
        CostProfile {
            forward_flops: total.forward_flops,
            backward_flops: total.backward_flops,
            params: total.params,
            activation_elems: total.activation_elems,
        }
    }

    /// Parameter memory in bytes at `f32` precision.
    pub fn param_bytes(&self) -> u64 {
        self.params * 4
    }

    /// Activation memory in bytes at `f32` precision (all layers resident —
    /// the baseline `dl-memsched` improves on).
    pub fn activation_bytes(&self) -> u64 {
        self.activation_elems * 4
    }

    /// FLOPs of one training step (forward + backward).
    pub fn train_step_flops(&self) -> u64 {
        self.forward_flops + self.backward_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_counts_macs_and_bias() {
        let c = LayerCost::dense(2, 3, 4);
        // 2 batch * (2*3*4 mac flops) + 2*4 bias adds
        assert_eq!(c.forward_flops, 2 * 2 * 3 * 4 / 2 * 2 + 8);
        assert_eq!(c.params, 3 * 4 + 4);
        assert_eq!(c.activation_elems, 8);
        assert_eq!(c.backward_flops, 2 * c.forward_flops);
    }

    #[test]
    fn conv_cost_scales_with_output_positions() {
        let small = LayerCost::conv2d(1, 1, 1, 3, 3, 2, 2);
        let large = LayerCost::conv2d(1, 1, 1, 3, 3, 4, 4);
        assert_eq!(large.forward_flops, small.forward_flops * 4);
        assert_eq!(small.params, 9 + 1);
    }

    #[test]
    fn profile_merges_layers() {
        let p = CostProfile::from_layers(&[
            LayerCost::dense(1, 2, 3),
            LayerCost::elementwise(3),
            LayerCost::dense(1, 3, 1),
        ]);
        assert_eq!(p.params, (2 * 3 + 3) + (3 + 1));
        assert_eq!(p.param_bytes(), p.params * 4);
        assert_eq!(p.activation_elems, 3 + 3 + 1);
        assert_eq!(
            p.train_step_flops(),
            p.forward_flops + p.backward_flops
        );
    }

    #[test]
    fn elementwise_has_no_params() {
        let c = LayerCost::elementwise(100);
        assert_eq!(c.params, 0);
        assert_eq!(c.forward_flops, 100);
    }
}
