//! Training objectives: softmax cross-entropy and mean squared error.

use dl_tensor::Tensor;

/// A differentiable objective over batched predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Loss {
    /// Softmax over logits followed by cross-entropy against integer class
    /// labels. The fused form keeps the backward pass numerically stable
    /// (`softmax - onehot`).
    SoftmaxCrossEntropy,
    /// Mean squared error against dense targets (used for regression and
    /// for distillation against teacher probabilities).
    MeanSquaredError,
}

impl Loss {
    /// Loss value and gradient with respect to the predictions.
    ///
    /// * For [`Loss::SoftmaxCrossEntropy`], `predictions` are raw logits
    ///   `[batch, classes]` and `targets` is a one-hot (or soft-label)
    ///   matrix of the same shape.
    /// * For [`Loss::MeanSquaredError`], both are arbitrary same-shaped
    ///   tensors.
    ///
    /// The returned gradient is already averaged over the batch.
    ///
    /// # Panics
    /// Panics when shapes disagree.
    pub fn evaluate(&self, predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(
            predictions.shape(),
            targets.shape(),
            "loss requires matching shapes: {} vs {}",
            predictions.shape(),
            targets.shape()
        );
        match self {
            Loss::SoftmaxCrossEntropy => {
                let probs = softmax(predictions);
                let batch = predictions.dims()[0] as f32;
                // CE = -sum(t * log p) / batch, guard log(0)
                let loss = -probs
                    .zip(targets, |p, t| if t > 0.0 { t * p.max(1e-12).ln() } else { 0.0 })
                    .sum()
                    / batch;
                let grad = (&probs - targets).map(|g| g / batch);
                (loss, grad)
            }
            Loss::MeanSquaredError => {
                let diff = predictions - targets;
                let n = predictions.len() as f32;
                let loss = diff.sum_squares() / n;
                let grad = diff.map(|d| 2.0 * d / n);
                (loss, grad)
            }
        }
    }
}

/// Row-wise softmax of a `[batch, classes]` logits matrix, computed with the
/// max-subtraction trick for numerical stability.
///
/// # Panics
/// Panics on non-matrix input.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax expects [batch, classes]");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let total: f32 = exps.iter().sum();
        out.extend(exps.iter().map(|e| e / total));
    }
    Tensor::from_vec(out, [rows, cols]).expect("length matches by construction")
}

/// One-hot encodes integer labels into a `[labels.len(), classes]` matrix.
///
/// # Panics
/// Panics when any label is out of range.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut data = vec![0.0f32; labels.len() * classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < classes, "label {l} out of range for {classes} classes");
        data[i * classes + l] = 1.0;
    }
    Tensor::from_vec(data, [labels.len(), classes]).expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]).unwrap();
        let p = softmax(&x);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| p.get(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], [1, 2]).unwrap();
        let p = softmax(&x);
        assert!(p.data().iter().all(|v| v.is_finite()));
        let y = Tensor::from_vec(vec![0.0, 1.0], [1, 2]).unwrap();
        assert!(p.approx_eq(&softmax(&y), 1e-6));
    }

    #[test]
    fn one_hot_encodes() {
        let t = one_hot(&[2, 0], 3);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        one_hot(&[3], 3);
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(vec![20.0, -20.0], [1, 2]).unwrap();
        let targets = one_hot(&[0], 2);
        let (loss, _) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
        assert!(loss < 1e-5, "loss was {loss}");
    }

    #[test]
    fn cross_entropy_uniform_prediction_is_log_classes() {
        let logits = Tensor::zeros([1, 4]);
        let targets = one_hot(&[1], 4);
        let (loss, _) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], [1, 3]).unwrap();
        let targets = one_hot(&[1], 3);
        let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
        let probs = softmax(&logits);
        let expected = &probs - &targets;
        assert!(grad.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::from_vec(vec![0.3, -0.6, 1.2, 0.1, 0.5, -0.2], [2, 3]).unwrap();
        let targets = one_hot(&[2, 0], 3);
        let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = Loss::SoftmaxCrossEntropy.evaluate(&lp, &targets);
            let (fm, _) = Loss::SoftmaxCrossEntropy.evaluate(&lm, &targets);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: numeric {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_value_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], [1, 2]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.evaluate(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.data(), &[1.0, 2.0]); // 2 * diff / n
    }

    #[test]
    fn mse_zero_at_match() {
        let pred = Tensor::from_vec(vec![3.0, -1.0], [2, 1]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.evaluate(&pred, &pred.clone());
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn soft_labels_supported() {
        // distillation-style soft targets still give finite loss/grad
        let logits = Tensor::from_vec(vec![0.5, -0.5], [1, 2]).unwrap();
        let soft = Tensor::from_vec(vec![0.7, 0.3], [1, 2]).unwrap();
        let (loss, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &soft);
        assert!(loss.is_finite() && loss > 0.0);
        assert!((grad.sum()).abs() < 1e-6); // softmax grad rows sum to zero
    }
}
