//! The training loop, instrumented with the tutorial's two metric families.
//!
//! Every epoch records quality metrics (loss, accuracy) *and* resource
//! metrics (cumulative FLOPs, parameter and activation bytes). Downstream
//! crates convert the resource counts into simulated time and energy; the
//! counts themselves are hardware-independent and deterministic.

use std::sync::Arc;

use dl_obs::{fields, FieldValue, NullRecorder, Recorder, ToFields};
use dl_tensor::acct::{self, OpCost};
use dl_tensor::{init, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::loss::{one_hot, Loss};
use crate::metrics::accuracy;
use crate::network::Network;
use crate::optim::{LrSchedule, Optimizer};

/// Nominal device rate used to convert hardware-independent FLOP counts
/// into virtual-clock seconds for traces (matches the simulator's
/// mid-range accelerator: 10 TFLOP/s). Purely an observability concern —
/// no training arithmetic depends on it.
const NOMINAL_FLOPS_PER_SEC: f64 = 10e12;

/// A labeled classification dataset: feature rows plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix `[samples, features]`.
    pub x: Tensor,
    /// Integer class labels, one per row.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Bundles features and labels.
    ///
    /// # Panics
    /// Panics when row count and label count differ, or a label is out of
    /// range.
    pub fn new(x: Tensor, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.dims()[0], y.len(), "rows and labels must align");
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Dataset { x, y, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// The subset at the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
        }
    }

    /// Deterministic train/test split: first `(1-test_frac)` after a seeded
    /// shuffle goes to train.
    pub fn split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut rng = init::rng(seed);
        let perm = init::permutation(self.len(), &mut rng);
        let test_n = (self.len() as f64 * test_frac).round() as usize;
        let (test_idx, train_idx) = perm.split_at(test_n);
        (self.subset(train_idx), self.subset(test_idx))
    }
}

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// Learning-rate schedule applied on top of the optimizer's base rate.
    pub schedule: LrSchedule,
    /// Shuffle seed (data order is part of the experiment definition).
    pub seed: u64,
    /// L2 weight decay added to every gradient (0 disables).
    pub weight_decay: f32,
    /// Global gradient-norm clip (None disables).
    pub clip_norm: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            loss: Loss::SoftmaxCrossEntropy,
            schedule: LrSchedule::Constant,
            seed: 0,
            weight_decay: 0.0,
            clip_norm: None,
        }
    }
}

/// One epoch's record of quality and resource metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Training accuracy measured after the epoch.
    pub train_accuracy: f64,
    /// Learning-rate multiplier that was in effect.
    pub lr_scale: f32,
    /// Cumulative training FLOPs up to and including this epoch.
    pub cumulative_flops: u64,
    /// Whether the schedule marked this epoch as a snapshot point.
    pub cycle_end: bool,
}

impl ToFields for EpochRecord {
    /// The record under the shared event schema — the single
    /// serialization path used for epoch-span annotations and the bench
    /// harness's JSON records alike.
    fn to_fields(&self) -> Vec<(String, FieldValue)> {
        fields! {
            "epoch" => self.epoch,
            "train_loss" => self.train_loss,
            "train_accuracy" => self.train_accuracy,
            "lr_scale" => self.lr_scale,
            "cumulative_flops" => self.cumulative_flops,
            "cycle_end" => self.cycle_end,
        }
    }
}

/// Batched gradient-descent training with per-epoch instrumentation.
pub struct Trainer {
    /// Hyper-parameters.
    pub config: TrainConfig,
    /// Update rule.
    pub optimizer: Optimizer,
    /// Per-epoch records, appended as training progresses.
    pub history: Vec<EpochRecord>,
    /// Cumulative FLOPs across all `fit` calls on this trainer.
    pub flops: u64,
    rng: StdRng,
    /// Optional callback invoked after each epoch (snapshotting hooks).
    #[allow(clippy::type_complexity)]
    epoch_hook: Option<Box<dyn FnMut(&mut Network, &EpochRecord)>>,
    /// Structured-event recorder; a no-op [`NullRecorder`] by default.
    recorder: Arc<dyn Recorder>,
}

impl Trainer {
    /// A trainer with the given config and optimizer.
    pub fn new(config: TrainConfig, optimizer: Optimizer) -> Self {
        let rng = init::rng(config.seed);
        Trainer {
            config,
            optimizer,
            history: Vec::new(),
            flops: 0,
            rng,
            epoch_hook: None,
            recorder: Arc::new(NullRecorder::new()),
        }
    }

    /// Registers a hook run after every epoch (Snapshot Ensembles use this
    /// to copy the model at cycle ends).
    pub fn on_epoch(&mut self, hook: impl FnMut(&mut Network, &EpochRecord) + 'static) {
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Attaches a structured-event recorder: subsequent `fit` calls emit
    /// per-epoch and per-batch spans (loss/accuracy/FLOPs fields) and
    /// advance the recorder's virtual clock by nominal compute time.
    /// Tracing never alters the training trajectory.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Trains `net` on `data`, returning the per-epoch records added by
    /// this call.
    pub fn fit(&mut self, net: &mut Network, data: &Dataset) -> Vec<EpochRecord> {
        self.fit_soft(net, data, None)
    }

    /// Trains with optional soft targets (teacher probabilities for
    /// distillation) mixed in place of the hard one-hot labels.
    ///
    /// When `soft_targets` is `Some`, it must be a `[samples, classes]`
    /// matrix; rows are used directly as targets.
    pub fn fit_soft(
        &mut self,
        net: &mut Network,
        data: &Dataset,
        soft_targets: Option<&Tensor>,
    ) -> Vec<EpochRecord> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        if let Some(t) = soft_targets {
            assert_eq!(t.dims()[0], data.len(), "soft target rows must match data");
        }
        let step_flops = net.cost_profile(self.config.batch_size).train_step_flops();
        let start_epoch = self.history.len();
        let mut added = Vec::with_capacity(self.config.epochs);
        let batch_seconds = step_flops as f64 / NOMINAL_FLOPS_PER_SEC;
        // Measured cost accounting only runs when someone is listening:
        // with the default NullRecorder no acct scope ever opens, so the
        // untraced path stays bit-identical and pays a single flag check.
        let measuring = self.recorder.enabled();
        for e in 0..self.config.epochs {
            let epoch = start_epoch + e;
            let scale = self.config.schedule.scale(epoch);
            let epoch_span = self
                .recorder
                .span_start(0, "epoch", fields! { "epoch" => epoch });
            let order = init::permutation(data.len(), &mut self.rng);
            let mut loss_sum = 0.0;
            let mut batches = 0;
            let mut epoch_cost = OpCost::default();
            for chunk in order.chunks(self.config.batch_size) {
                let batch_span = self
                    .recorder
                    .span_start(0, "batch", fields! { "batch" => batches as usize });
                let xb = data.x.select_rows(chunk);
                let targets = match soft_targets {
                    Some(t) => t.select_rows(chunk),
                    None => {
                        let labels: Vec<usize> = chunk.iter().map(|&i| data.y[i]).collect();
                        one_hot(&labels, data.classes)
                    }
                };
                if measuring {
                    acct::begin();
                }
                net.zero_grads();
                let logits = net.forward(&xb, true);
                let (loss, grad) = self.config.loss.evaluate(&logits, &targets);
                net.backward(&grad);
                let mut pg = net.params_and_grads();
                apply_grad_transforms(&mut pg, self.config.weight_decay, self.config.clip_norm);
                self.optimizer.step(&mut pg, scale);
                if measuring {
                    // The whole update — forward, loss, backward, transforms,
                    // optimizer — counts as one measured training step.
                    epoch_cost = epoch_cost.merge(acct::end());
                }
                loss_sum += loss;
                batches += 1;
                self.flops += step_flops;
                self.recorder.clock().advance(batch_seconds);
                self.recorder.observe("train.batch_loss", f64::from(loss));
                self.recorder.counter(0, "train.samples", chunk.len() as u64);
                self.recorder
                    .span_end(batch_span, fields! { "loss" => loss, "flops" => step_flops });
            }
            if measuring {
                self.recorder
                    .counter(0, "train.measured_flops", epoch_cost.flops);
                self.recorder
                    .counter(0, "train.measured_bytes_read", epoch_cost.bytes_read);
                self.recorder
                    .counter(0, "train.measured_bytes_written", epoch_cost.bytes_written);
            }
            let preds = net.predict(&data.x);
            let record = EpochRecord {
                epoch,
                train_loss: loss_sum / batches as f32,
                train_accuracy: accuracy(&preds, &data.y),
                lr_scale: scale,
                cumulative_flops: self.flops,
                cycle_end: self.config.schedule.is_cycle_end(epoch),
            };
            self.recorder.span_end(epoch_span, record.to_fields());
            if let Some(hook) = &mut self.epoch_hook {
                hook(net, &record);
            }
            self.history.push(record.clone());
            added.push(record);
        }
        net.clear_caches();
        added
    }

    /// Rows per evaluation chunk. Small enough that the workspace's
    /// datasets genuinely exercise the multi-chunk path (the previous
    /// 2048 meant every eval was a single chunk and the chunking logic
    /// never ran), while still amortizing each dense layer's weight read
    /// over hundreds of rows. Chunking is bitwise invisible: see
    /// `predict_batched` and [`Trainer::evaluate_metrics`].
    pub const EVAL_BATCH: usize = 256;

    /// Evaluates accuracy of `net` on a dataset without training.
    ///
    /// Runs through the chunked eval-mode forward path so peak
    /// activation memory is bounded by [`Trainer::EVAL_BATCH`] rows on
    /// arbitrarily large evaluation sets; chunking is bitwise invisible
    /// (see `predict_batched`).
    pub fn evaluate(net: &mut Network, data: &Dataset) -> f64 {
        accuracy(&net.predict_batched(&data.x, Self::EVAL_BATCH), &data.y)
    }

    /// Cross-entropy loss *and* accuracy of `net` on a dataset, computed
    /// [`Trainer::EVAL_BATCH`] rows at a time so peak activation memory
    /// stays bounded on arbitrarily large evaluation sets.
    ///
    /// Both numbers are **bit-identical to the unchunked computation**:
    /// the forward pass is row-independent (see `predict_batched`), and
    /// the loss accumulates each element's contribution — the exact
    /// `t * ln(max(p, 1e-12))` expression `Loss::SoftmaxCrossEntropy`
    /// uses — into one running `f32` sum in global row-major element
    /// order, the same addition sequence `Tensor::sum` performs over the
    /// full matrix, before the single division by the total row count.
    pub fn evaluate_metrics(net: &mut Network, data: &Dataset) -> (f64, f64) {
        let rows = data.x.dims()[0];
        let classes = data.classes;
        let mut acc_sum = 0.0f32;
        let mut correct = 0usize;
        let mut lo = 0usize;
        while lo < rows {
            let hi = usize::min(lo + Self::EVAL_BATCH, rows);
            let idx: Vec<usize> = (lo..hi).collect();
            let chunk = if lo == 0 && hi == rows {
                // Single chunk: forward the matrix as-is, no row copies.
                data.x.clone()
            } else {
                data.x.select_rows(&idx)
            };
            let logits = net.forward(&chunk, false);
            let probs = crate::loss::softmax(&logits);
            for (r, &row) in idx.iter().enumerate() {
                let p_row = &probs.data()[r * classes..(r + 1) * classes];
                // Argmax on the *logits* (not the probs), matching
                // `Network::predict` exactly even where float rounding
                // collapses distinct logits to equal probabilities.
                let l_row = &logits.data()[r * classes..(r + 1) * classes];
                let mut best = 0usize;
                for c in 0..classes {
                    // Replicate the unchunked zip+sum element-for-element,
                    // zeros included, so the running sum sees the same f32
                    // addition sequence.
                    let t = if data.y[row] == c { 1.0f32 } else { 0.0 };
                    acc_sum += if t > 0.0 {
                        t * p_row[c].max(1e-12).ln()
                    } else {
                        0.0
                    };
                    if l_row[c] > l_row[best] {
                        best = c;
                    }
                }
                if best == data.y[row] {
                    correct += 1;
                }
            }
            lo = hi;
        }
        let loss = f64::from(-acc_sum / rows as f32);
        (loss, correct as f64 / rows as f64)
    }
}

/// Adds L2 weight decay to every gradient and clips the global gradient
/// norm, in that order (decoupled-decay-then-clip, the common recipe).
fn apply_grad_transforms(
    params: &mut [(&mut Tensor, &mut Tensor)],
    weight_decay: f32,
    clip_norm: Option<f32>,
) {
    if weight_decay > 0.0 {
        for (p, g) in params.iter_mut() {
            **g = &**g + &(&**p * weight_decay);
        }
    }
    if let Some(max_norm) = clip_norm {
        assert!(max_norm > 0.0, "clip norm must be positive");
        let total: f32 = params
            .iter()
            .map(|(_, g)| g.sum_squares())
            .sum::<f32>()
            .sqrt();
        if total > max_norm {
            let scale = max_norm / total;
            for (_, g) in params.iter_mut() {
                g.map_inplace(|v| v * scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init::rng;

    /// Two well-separated Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut r = rng(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.0 } else { 1.0 };
            let noise = init::uniform([2], -0.3, 0.3, &mut r);
            xs.push(center + noise.data()[0]);
            xs.push(center + noise.data()[1]);
            ys.push(c);
        }
        Dataset::new(Tensor::from_vec(xs, [n, 2]).unwrap(), ys, 2)
    }

    #[test]
    fn dataset_subset_and_split() {
        let d = blobs(20, 0);
        let s = d.subset(&[0, 5, 7]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.y[1], d.y[5]);
        let (train, test) = d.split(0.25, 1);
        assert_eq!(test.len(), 5);
        assert_eq!(train.len(), 15);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = blobs(30, 2);
        let (a1, _) = d.split(0.3, 7);
        let (a2, _) = d.split(0.3, 7);
        assert_eq!(a1.y, a2.y);
        let (a3, _) = d.split(0.3, 8);
        assert_ne!(a1.y, a3.y);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn dataset_rejects_bad_labels() {
        Dataset::new(Tensor::zeros([2, 1]), vec![0, 5], 2);
    }

    #[test]
    fn training_converges_and_records_history() {
        let data = blobs(60, 3);
        let mut r = rng(4);
        let mut net = Network::mlp(&[2, 8, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 30,
                batch_size: 16,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        let records = trainer.fit(&mut net, &data);
        assert_eq!(records.len(), 30);
        assert!(records.last().unwrap().train_accuracy > 0.95);
        assert!(records.last().unwrap().train_loss < records[0].train_loss);
        // flops strictly increase
        assert!(records
            .windows(2)
            .all(|w| w[1].cumulative_flops > w[0].cumulative_flops));
    }

    #[test]
    fn epoch_hook_fires_each_epoch() {
        let data = blobs(20, 5);
        let mut r = rng(6);
        let mut net = Network::mlp(&[2, 4, 2], &mut r);
        let counter = std::rc::Rc::new(std::cell::Cell::new(0));
        let c2 = counter.clone();
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
            Optimizer::sgd(0.1),
        );
        trainer.on_epoch(move |_, _| c2.set(c2.get() + 1));
        trainer.fit(&mut net, &data);
        assert_eq!(counter.get(), 5);
    }

    #[test]
    fn cyclic_schedule_marks_cycle_ends() {
        let data = blobs(20, 7);
        let mut r = rng(8);
        let mut net = Network::mlp(&[2, 4, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 6,
                schedule: LrSchedule::CyclicCosine { cycle_len: 3 },
                ..TrainConfig::default()
            },
            Optimizer::sgd(0.1),
        );
        let records = trainer.fit(&mut net, &data);
        let ends: Vec<usize> = records
            .iter()
            .filter(|r| r.cycle_end)
            .map(|r| r.epoch)
            .collect();
        assert_eq!(ends, vec![2, 5]);
    }

    #[test]
    fn evaluate_metrics_chunked_matches_unchunked_bitwise() {
        // More rows than EVAL_BATCH so the multi-chunk path genuinely
        // runs (2 full chunks plus a ragged tail).
        let data = blobs(Trainer::EVAL_BATCH * 2 + 37, 11);
        let mut r = rng(12);
        let mut net = Network::mlp(&[2, 16, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            Optimizer::sgd(0.1),
        );
        trainer.fit(&mut net, &data);
        let (loss, acc) = Trainer::evaluate_metrics(&mut net, &data);
        // Unchunked reference: one full forward, the library loss, the
        // library accuracy.
        let logits = net.forward(&data.x, false);
        let targets = one_hot(&data.y, data.classes);
        let (ref_loss, _) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
        let ref_acc = accuracy(&net.predict(&data.x), &data.y);
        assert_eq!(loss, f64::from(ref_loss), "chunked loss must be bit-identical");
        assert_eq!(acc, ref_acc, "chunked accuracy must be bit-identical");
        assert_eq!(Trainer::evaluate(&mut net, &data), ref_acc);
    }

    #[test]
    fn soft_targets_train() {
        let data = blobs(20, 9);
        let soft = one_hot(&data.y, 2).map(|v| v * 0.9 + 0.05);
        let mut r = rng(10);
        let mut net = Network::mlp(&[2, 4, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.02),
        );
        trainer.fit_soft(&mut net, &data, Some(&soft));
        assert!(Trainer::evaluate(&mut net, &data) > 0.9);
    }

    #[test]
    fn weight_decay_shrinks_parameter_norm() {
        let data = blobs(60, 40);
        let train = |wd: f32| {
            let mut r = rng(40);
            let mut net = Network::mlp(&[2, 16, 2], &mut r);
            let mut t = Trainer::new(
                TrainConfig {
                    epochs: 25,
                    weight_decay: wd,
                    ..TrainConfig::default()
                },
                Optimizer::sgd(0.1),
            );
            t.fit(&mut net, &data);
            net.flat_params().iter().map(|v| v * v).sum::<f32>().sqrt()
        };
        let free = train(0.0);
        let decayed = train(0.05);
        assert!(
            decayed < free,
            "decay should shrink weights: {decayed} vs {free}"
        );
    }

    #[test]
    fn gradient_clipping_bounds_update_magnitude() {
        // huge targets make raw gradients enormous; clipping bounds the step
        let data = blobs(40, 41);
        let run = |clip: Option<f32>| {
            let mut r = rng(42);
            let mut net = Network::mlp(&[2, 8, 2], &mut r);
            let before = net.flat_params();
            let mut t = Trainer::new(
                TrainConfig {
                    epochs: 1,
                    loss: Loss::MeanSquaredError,
                    clip_norm: clip,
                    ..TrainConfig::default()
                },
                Optimizer::sgd(1.0),
            );
            // train against absurd regression targets to provoke big grads
            let wild = Tensor::full([40, 2], 1e4);
            t.fit_soft(&mut net, &data, Some(&wild));
            let after = net.flat_params();
            before
                .iter()
                .zip(&after)
                .map(|(b, a)| (b - a).abs())
                .fold(0.0f32, f32::max)
        };
        let unclipped = run(None);
        let clipped = run(Some(1.0));
        assert!(
            clipped < unclipped / 10.0,
            "clipping must bound the step: {clipped} vs {unclipped}"
        );
    }

    #[test]
    fn tracing_emits_spans_without_perturbing_training() {
        use dl_obs::{EventKind, TimelineRecorder};
        let data = blobs(40, 20);
        let train = |traced: bool| {
            let mut r = rng(21);
            let mut net = Network::mlp(&[2, 8, 2], &mut r);
            let mut trainer = Trainer::new(
                TrainConfig {
                    epochs: 3,
                    batch_size: 8,
                    ..TrainConfig::default()
                },
                Optimizer::sgd(0.1),
            );
            let rec = Arc::new(TimelineRecorder::new());
            if traced {
                trainer.set_recorder(rec.clone());
            }
            trainer.fit(&mut net, &data);
            (net.flat_params(), rec)
        };
        let (plain, _) = train(false);
        let (traced, rec) = train(true);
        assert_eq!(plain, traced, "tracing must not alter the trajectory");
        let events = rec.events();
        let epoch_starts = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart && e.name == "epoch")
            .count();
        assert_eq!(epoch_starts, 3);
        // 40 samples / batch 8 = 5 batches per epoch
        assert_eq!(rec.counters()["train.samples"], 120);
        assert_eq!(rec.histogram("train.batch_loss").unwrap().count, 15);
        // the epoch end edge carries the EpochRecord fields
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "epoch")
            .unwrap();
        assert!(end.fields.iter().any(|(k, _)| k == "train_accuracy"));
        assert!(rec.clock().now() > 0.0, "batches advance the virtual clock");
    }

    #[test]
    fn traced_training_reports_measured_kernel_costs() {
        use dl_obs::TimelineRecorder;
        let data = blobs(40, 22);
        let mut r = rng(23);
        let mut net = Network::mlp(&[2, 8, 2], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 2,
                batch_size: 8,
                ..TrainConfig::default()
            },
            Optimizer::sgd(0.1),
        );
        let rec = Arc::new(TimelineRecorder::new());
        trainer.set_recorder(rec.clone());
        trainer.fit(&mut net, &data);
        let counters = rec.counters();
        let measured = counters["train.measured_flops"];
        assert!(measured > 0, "measured FLOPs must be recorded");
        assert!(counters["train.measured_bytes_read"] > 0);
        assert!(counters["train.measured_bytes_written"] > 0);
        // The static model only counts layer forward/backward; the measured
        // number adds loss and optimizer work and subtracts sparse-matmul
        // skips, so same order of magnitude, not equality.
        let modeled = trainer.flops;
        let ratio = measured as f64 / modeled as f64;
        assert!(
            (0.2..5.0).contains(&ratio),
            "measured/modeled ratio {ratio} implausible (measured {measured}, modeled {modeled})"
        );
    }

    #[test]
    fn epoch_record_to_fields_covers_every_metric() {
        let r = EpochRecord {
            epoch: 2,
            train_loss: 0.5,
            train_accuracy: 0.75,
            lr_scale: 1.0,
            cumulative_flops: 1000,
            cycle_end: true,
        };
        let fields = r.to_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "epoch",
                "train_loss",
                "train_accuracy",
                "lr_scale",
                "cumulative_flops",
                "cycle_end"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_rejects_empty_dataset() {
        let mut r = rng(11);
        let mut net = Network::mlp(&[2, 2], &mut r);
        let empty = Dataset::new(Tensor::zeros([0, 2]), vec![], 2);
        Trainer::new(TrainConfig::default(), Optimizer::sgd(0.1)).fit(&mut net, &empty);
    }
}
