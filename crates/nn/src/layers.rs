//! The pipeline operators: layers with explicit forward/backward passes.
//!
//! Layers are the "operators" of the tutorial's query-processing analogy.
//! Each caches exactly the intermediates its backward pass needs, which is
//! the quantity `dl-memsched` trades against recompute time.
//!
//! All layers consume and produce batched matrices `[batch, features]`;
//! spatial layers ([`Conv2d`], [`MaxPool2d`]) carry their own `[C, H, W]`
//! geometry and reinterpret each row.

use dl_tensor::{init, par, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cost::LayerCost;

/// A layer of the network pipeline.
///
/// Modeled as an enum (rather than trait objects) so that networks serialize
/// cleanly and the compression crate can pattern-match its way to weight
/// matrices for pruning/quantization surgery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected affine layer.
    Dense(Dense),
    /// Rectified linear activation.
    ReLU(ReLU),
    /// Logistic sigmoid activation.
    Sigmoid(Sigmoid),
    /// Hyperbolic tangent activation.
    Tanh(Tanh),
    /// Inverted dropout regularizer.
    Dropout(Dropout),
    /// 2-D convolution over `[C, H, W]` rows.
    Conv2d(Conv2d),
    /// 2-D max pooling over `[C, H, W]` rows.
    MaxPool2d(MaxPool2d),
    /// Batch normalization over feature columns.
    BatchNorm1d(BatchNorm1d),
}

impl Layer {
    /// Runs the layer forward. `train` enables training-only behaviour
    /// (dropout masks, batch statistics).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            Layer::Dense(l) => l.forward(x),
            Layer::ReLU(l) => l.forward(x),
            Layer::Sigmoid(l) => l.forward(x),
            Layer::Tanh(l) => l.forward(x),
            Layer::Dropout(l) => l.forward(x, train),
            Layer::Conv2d(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::BatchNorm1d(l) => l.forward(x, train),
        }
    }

    /// Propagates `grad` (d loss / d output) backward, accumulating
    /// parameter gradients and returning d loss / d input.
    ///
    /// # Panics
    /// Panics if called before `forward` (no cached intermediates).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            Layer::Dense(l) => l.backward(grad),
            Layer::ReLU(l) => l.backward(grad),
            Layer::Sigmoid(l) => l.backward(grad),
            Layer::Tanh(l) => l.backward(grad),
            Layer::Dropout(l) => l.backward(grad),
            Layer::Conv2d(l) => l.backward(grad),
            Layer::MaxPool2d(l) => l.backward(grad),
            Layer::BatchNorm1d(l) => l.backward(grad),
        }
    }

    /// Trainable parameters, paired with their gradients, in a fixed order.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        match self {
            Layer::Dense(l) => vec![(&mut l.weight, &mut l.grad_weight), (&mut l.bias, &mut l.grad_bias)],
            Layer::Conv2d(l) => vec![(&mut l.weight, &mut l.grad_weight), (&mut l.bias, &mut l.grad_bias)],
            Layer::BatchNorm1d(l) => vec![(&mut l.gamma, &mut l.grad_gamma), (&mut l.beta, &mut l.grad_beta)],
            _ => Vec::new(),
        }
    }

    /// Read-only view of trainable parameters in the same order as
    /// [`Layer::params_and_grads`].
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(l) => vec![&l.weight, &l.bias],
            Layer::Conv2d(l) => vec![&l.weight, &l.bias],
            Layer::BatchNorm1d(l) => vec![&l.gamma, &l.beta],
            _ => Vec::new(),
        }
    }

    /// Zeroes accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.map_inplace(|_| 0.0);
        }
    }

    /// Drops cached activations (between steps, or to model checkpointing).
    pub fn clear_cache(&mut self) {
        match self {
            Layer::Dense(l) => l.input = None,
            Layer::ReLU(l) => l.mask = None,
            Layer::Sigmoid(l) => l.output = None,
            Layer::Tanh(l) => l.output = None,
            Layer::Dropout(l) => l.mask = None,
            Layer::Conv2d(l) => l.cols = None,
            Layer::MaxPool2d(l) => l.argmax = None,
            Layer::BatchNorm1d(l) => l.cache = None,
        }
    }

    /// Static resource cost at the given batch size and input width.
    /// Returns the cost and the layer's output width.
    pub fn cost(&self, batch: usize, input_dim: usize) -> (LayerCost, usize) {
        match self {
            Layer::Dense(l) => {
                let (fi, fo) = (l.weight.dims()[0], l.weight.dims()[1]);
                (LayerCost::dense(batch, fi, fo), fo)
            }
            Layer::Conv2d(l) => {
                let (oh, ow) = l.output_hw();
                let out_dim = l.out_channels * oh * ow;
                (
                    LayerCost::conv2d(batch, l.in_channels, l.out_channels, l.kh, l.kw, oh, ow),
                    out_dim,
                )
            }
            Layer::MaxPool2d(l) => {
                let (oh, ow) = l.output_hw();
                let out_dim = l.channels * oh * ow;
                (LayerCost::elementwise(batch * input_dim), out_dim)
            }
            Layer::BatchNorm1d(_)
            | Layer::ReLU(_)
            | Layer::Sigmoid(_)
            | Layer::Tanh(_)
            | Layer::Dropout(_) => {
                let mut c = LayerCost::elementwise(batch * input_dim);
                if let Layer::BatchNorm1d(l) = self {
                    c.params = 2 * l.gamma.len() as u64;
                }
                (c, input_dim)
            }
        }
    }

    /// Short human-readable layer name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::ReLU(_) => "relu",
            Layer::Sigmoid(_) => "sigmoid",
            Layer::Tanh(_) => "tanh",
            Layer::Dropout(_) => "dropout",
            Layer::Conv2d(_) => "conv2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::BatchNorm1d(_) => "batchnorm1d",
        }
    }
}

// ----------------------------------------------------------------------
// Dense
// ----------------------------------------------------------------------

/// Fully-connected layer: `y = x W + b` with `W: [in, out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix `[in, out]`.
    pub weight: Tensor,
    /// Bias vector `[out]`.
    pub bias: Tensor,
    /// Gradient of the loss with respect to [`Dense::weight`].
    pub grad_weight: Tensor,
    /// Gradient of the loss with respect to [`Dense::bias`].
    pub grad_bias: Tensor,
    #[serde(skip)]
    input: Option<Tensor>,
}

impl Dense {
    /// He-initialized dense layer (suited to the ReLU nets used throughout).
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        Dense {
            weight: init::he(fan_in, fan_out, rng),
            bias: Tensor::zeros([fan_out]),
            grad_weight: Tensor::zeros([fan_in, fan_out]),
            grad_bias: Tensor::zeros([fan_out]),
            input: None,
        }
    }

    /// Dense layer with explicit weights (used by distillation / hatching).
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        let gw = Tensor::zeros(weight.shape().clone());
        let gb = Tensor::zeros(bias.shape().clone());
        Dense {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            input: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weight.dims()[1]
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.input = Some(x.clone());
        // The parallel kernel is bit-identical to `x.matmul(..)` at any
        // thread count, so training trajectories do not depend on
        // DL_THREADS.
        &par::matmul(x, &self.weight) + &self.bias
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .input
            .as_ref()
            .expect("Dense::backward called before forward");
        self.grad_weight = par::matmul(&x.transpose(), grad);
        self.grad_bias = grad.sum_axis(0);
        par::matmul(grad, &self.weight.transpose())
    }
}

// ----------------------------------------------------------------------
// Activations
// ----------------------------------------------------------------------

/// Rectified linear unit: `max(0, x)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    #[serde(skip)]
    mask: Option<Tensor>,
}

impl ReLU {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("ReLU::backward called before forward");
        grad * mask.clone()
    }
}

/// Logistic sigmoid: `1 / (1 + e^-x)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sigmoid {
    #[serde(skip)]
    output: Option<Tensor>,
}

impl Sigmoid {
    /// A fresh sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self
            .output
            .as_ref()
            .expect("Sigmoid::backward called before forward");
        grad.zip(y, |g, y| g * y * (1.0 - y))
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tanh {
    #[serde(skip)]
    output: Option<Tensor>,
}

impl Tanh {
    /// A fresh tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(f32::tanh);
        self.output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self
            .output
            .as_ref()
            .expect("Tanh::backward called before forward");
        grad.zip(y, |g, y| g * (1.0 - y * y))
    }
}

// ----------------------------------------------------------------------
// Dropout
// ----------------------------------------------------------------------

/// Inverted dropout: at train time zeroes each activation with probability
/// `p` and scales survivors by `1/(1-p)`; identity at inference.
///
/// Randomness is derived from `(seed, step)` so a deserialized model
/// reproduces the exact same mask sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
    step: u64,
    #[serde(skip)]
    mask: Option<Tensor>,
}

impl Dropout {
    /// A dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Dropout {
            p,
            seed,
            step: 0,
            mask: None,
        }
    }

    /// Reconstructs a dropout layer mid-sequence: the next training-time
    /// mask continues the `(seed, step)` stream exactly where `step`
    /// points, so a persisted model resumes the identical mask sequence.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    #[must_use]
    pub fn from_state(p: f32, seed: u64, step: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Dropout {
            p,
            seed,
            step,
            mask: None,
        }
    }

    /// The seed the mask stream is derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of training-time masks drawn so far.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = Some(Tensor::ones(x.shape().clone()));
            return x.clone();
        }
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.step));
        self.step += 1;
        let keep = 1.0 - self.p;
        let mask = Tensor::from_vec(
            (0..x.len())
                .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                .collect(),
            x.shape().clone(),
        )
        .expect("mask length matches input");
        self.mask = Some(mask.clone());
        x * &mask
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Dropout::backward called before forward");
        grad * mask.clone()
    }
}

// ----------------------------------------------------------------------
// Conv2d
// ----------------------------------------------------------------------

/// 2-D convolution. Rows of the incoming batch matrix are reinterpreted as
/// `[in_channels, height, width]` images; each sample is lowered with
/// `im2col` so the convolution runs as a single matmul (the tutorial's
/// data-layout lens on convolution).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Filter bank `[out_channels, in_channels * kh * kw]`.
    pub weight: Tensor,
    /// Per-filter bias `[out_channels]`.
    pub bias: Tensor,
    /// Gradient for [`Conv2d::weight`].
    pub grad_weight: Tensor,
    /// Gradient for [`Conv2d::bias`].
    pub grad_bias: Tensor,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    #[serde(skip)]
    cols: Option<Vec<Tensor>>,
}

impl Conv2d {
    /// He-initialized convolution over `[in_channels, height, width]` rows.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        height: usize,
        width: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kh * kw;
        Conv2d {
            weight: init::he(out_channels, fan_in, rng)
                .reshape([out_channels, fan_in])
                .expect("he init shape"),
            bias: Tensor::zeros([out_channels]),
            grad_weight: Tensor::zeros([out_channels, fan_in]),
            grad_bias: Tensor::zeros([out_channels]),
            in_channels,
            out_channels,
            height,
            width,
            kh,
            kw,
            stride,
            pad,
            cols: None,
        }
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn output_hw(&self) -> (usize, usize) {
        (
            (self.height + 2 * self.pad - self.kh) / self.stride + 1,
            (self.width + 2 * self.pad - self.kw) / self.stride + 1,
        )
    }

    /// Flattened output width (`out_channels * out_h * out_w`).
    pub fn output_dim(&self) -> usize {
        let (oh, ow) = self.output_hw();
        self.out_channels * oh * ow
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.dims()[0];
        let in_dim = self.in_channels * self.height * self.width;
        assert_eq!(
            x.dims()[1],
            in_dim,
            "Conv2d expected rows of {in_dim} elements ({}x{}x{})",
            self.in_channels,
            self.height,
            self.width
        );
        let (oh, ow) = self.output_hw();
        let out_dim = self.out_channels * oh * ow;
        let mut out = Vec::with_capacity(batch * out_dim);
        let mut cols_cache = Vec::with_capacity(batch);
        for s in 0..batch {
            let img = x
                .row(s)
                .reshape([self.in_channels, self.height, self.width])
                .expect("row length checked above");
            let cols = par::im2col(&img, self.kh, self.kw, self.stride, self.pad);
            let y = par::matmul(&self.weight, &cols); // [out_c, oh*ow]
            for c in 0..self.out_channels {
                let b = self.bias.data()[c];
                for p in 0..oh * ow {
                    out.push(y.data()[c * oh * ow + p] + b);
                }
            }
            cols_cache.push(cols);
        }
        self.cols = Some(cols_cache);
        Tensor::from_vec(out, [batch, out_dim]).expect("length matches by construction")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cols_cache = self
            .cols
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let batch = grad.dims()[0];
        let (oh, ow) = self.output_hw();
        let positions = oh * ow;
        let fan_in = self.in_channels * self.kh * self.kw;
        let in_dim = self.in_channels * self.height * self.width;
        let mut gw = Tensor::zeros([self.out_channels, fan_in]);
        let mut gb = Tensor::zeros([self.out_channels]);
        let mut gx = Vec::with_capacity(batch * in_dim);
        for (s, cols) in cols_cache.iter().enumerate().take(batch) {
            let g_s = grad
                .row(s)
                .reshape([self.out_channels, positions])
                .expect("grad row matches output geometry");
            gw = &gw + &par::matmul(&g_s, &cols.transpose());
            gb = &gb + &g_s.sum_axis(1);
            let dcols = par::matmul(&self.weight.transpose(), &g_s);
            let dx = par::col2im(
                &dcols,
                self.in_channels,
                self.height,
                self.width,
                self.kh,
                self.kw,
                self.stride,
                self.pad,
            );
            gx.extend_from_slice(dx.data());
        }
        self.grad_weight = gw;
        self.grad_bias = gb;
        Tensor::from_vec(gx, [batch, in_dim]).expect("length matches by construction")
    }
}

// ----------------------------------------------------------------------
// MaxPool2d
// ----------------------------------------------------------------------

/// 2-D max pooling with a square `k`-window and stride `stride`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Channels of the incoming `[C, H, W]` rows.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Pooling window side.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    #[serde(skip)]
    argmax: Option<Vec<usize>>,
    #[serde(skip)]
    in_dims: Option<(usize, usize)>,
}

impl MaxPool2d {
    /// A pooling layer over `[channels, height, width]` rows.
    pub fn new(channels: usize, height: usize, width: usize, k: usize, stride: usize) -> Self {
        MaxPool2d {
            channels,
            height,
            width,
            k,
            stride,
            argmax: None,
            in_dims: None,
        }
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn output_hw(&self) -> (usize, usize) {
        (
            (self.height - self.k) / self.stride + 1,
            (self.width - self.k) / self.stride + 1,
        )
    }

    /// Flattened output width.
    pub fn output_dim(&self) -> usize {
        let (oh, ow) = self.output_hw();
        self.channels * oh * ow
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.dims()[0];
        let in_dim = self.channels * self.height * self.width;
        assert_eq!(x.dims()[1], in_dim, "MaxPool2d row width mismatch");
        let (oh, ow) = self.output_hw();
        let out_dim = self.channels * oh * ow;
        let mut out = Vec::with_capacity(batch * out_dim);
        let mut argmax = Vec::with_capacity(batch * out_dim);
        for s in 0..batch {
            let base = s * in_dim;
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_val = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx =
                                    base + (c * self.height + iy) * self.width + ix;
                                let v = x.data()[idx];
                                if v > best_val {
                                    best_val = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        out.push(best_val);
                        argmax.push(best_idx);
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.in_dims = Some((batch, in_dim));
        Tensor::from_vec(out, [batch, out_dim]).expect("length matches by construction")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .as_ref()
            .expect("MaxPool2d::backward called before forward");
        let (batch, in_dim) = self.in_dims.expect("set together with argmax");
        let mut gx = vec![0.0f32; batch * in_dim];
        for (g, &idx) in grad.data().iter().zip(argmax) {
            gx[idx] += g;
        }
        Tensor::from_vec(gx, [batch, in_dim]).expect("length matches by construction")
    }
}

// ----------------------------------------------------------------------
// BatchNorm1d
// ----------------------------------------------------------------------

/// Batch normalization over feature columns with learnable scale/shift and
/// running statistics for inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    /// Learnable scale `[features]`.
    pub gamma: Tensor,
    /// Learnable shift `[features]`.
    pub beta: Tensor,
    /// Gradient for [`BatchNorm1d::gamma`].
    pub grad_gamma: Tensor,
    /// Gradient for [`BatchNorm1d::beta`].
    pub grad_beta: Tensor,
    /// Running mean used at inference.
    pub running_mean: Tensor,
    /// Running variance used at inference.
    pub running_var: Tensor,
    /// Exponential-average momentum for running statistics.
    pub momentum: f32,
    eps: f32,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    std_inv: Tensor,
}

impl BatchNorm1d {
    /// Batch norm over `features` columns (momentum 0.1, eps 1e-5).
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Tensor::ones([features]),
            beta: Tensor::zeros([features]),
            grad_gamma: Tensor::zeros([features]),
            grad_beta: Tensor::zeros([features]),
            running_mean: Tensor::zeros([features]),
            running_var: Tensor::ones([features]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Batch norm with an explicit variance epsilon (persistence passes
    /// the stored value back through so reconstruction is exact).
    #[must_use]
    pub fn with_eps(features: usize, eps: f32) -> Self {
        let mut bn = BatchNorm1d::new(features);
        bn.eps = eps;
        bn
    }

    /// Numerical-stability epsilon added to the variance.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            let mean = x.mean_axis(0);
            let centered = x - &mean;
            let var = (&centered * &centered).mean_axis(0);
            let std_inv = var.map(|v| 1.0 / (v + self.eps).sqrt());
            let x_hat = &centered * &std_inv;
            // update running statistics
            let m = self.momentum;
            self.running_mean = &(&self.running_mean * (1.0 - m)) + &(&mean * m);
            self.running_var = &(&self.running_var * (1.0 - m)) + &(&var * m);
            let out = &(&x_hat * &self.gamma) + &self.beta;
            self.cache = Some(BnCache { x_hat, std_inv });
            out
        } else {
            let std_inv = self.running_var.map(|v| 1.0 / (v + self.eps).sqrt());
            let x_hat = &(x - &self.running_mean) * &std_inv;
            &(&x_hat * &self.gamma) + &self.beta
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm1d::backward called before forward (train mode)");
        let n = grad.dims()[0] as f32;
        let x_hat = &cache.x_hat;
        self.grad_gamma = (grad * x_hat.clone()).sum_axis(0);
        self.grad_beta = grad.sum_axis(0);
        // dx = (gamma * std_inv / N) * (N*g - sum(g) - x_hat * sum(g*x_hat))
        let sum_g = grad.sum_axis(0);
        let sum_gx = (grad * x_hat.clone()).sum_axis(0);
        let term = &(&(grad * n) - &sum_g) - &(x_hat * &sum_gx);
        let scale = &self.gamma * &cache.std_inv;
        &(&term * &scale) * (1.0 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init::rng;

    /// Finite-difference gradient check for a layer's input gradient.
    fn check_input_grad(layer: &mut Layer, x: &Tensor, tol: f32) {
        let y = layer.forward(x, true);
        // loss = sum(y^2)/2, so dL/dy = y
        let gx = layer.backward(&y);
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut lp = layer.clone();
            let yp = lp.forward(&xp, true);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut lm = layer.clone();
            let ym = lm.forward(&xm, true);
            let numeric =
                (yp.sum_squares() / 2.0 - ym.sum_squares() / 2.0) / (2.0 * eps);
            let analytic = gx.data()[i];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let mut l = Dense::from_parts(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap(),
            Tensor::from_vec(vec![0.5, -0.5], [2]).unwrap(),
        );
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.data(), &[1.0 + 3.0 + 0.5, 2.0 + 4.0 - 0.5]);
    }

    #[test]
    fn dense_backward_shapes_and_values() {
        let mut l = Dense::from_parts(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).unwrap(),
            Tensor::zeros([2]),
        );
        let x = Tensor::from_vec(vec![2.0, 3.0], [1, 2]).unwrap();
        let _ = l.forward(&x);
        let g = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let gx = l.backward(&g);
        // identity weights: grad passes straight through
        assert_eq!(gx.data(), &[1.0, 1.0]);
        // dW = x^T g
        assert_eq!(l.grad_weight.data(), &[2.0, 2.0, 3.0, 3.0]);
        assert_eq!(l.grad_bias.data(), &[1.0, 1.0]);
    }

    #[test]
    fn dense_gradcheck() {
        let mut r = rng(1);
        let mut layer = Layer::Dense(Dense::new(3, 2, &mut r));
        let x = init::uniform([2, 3], -1.0, 1.0, &mut r);
        check_input_grad(&mut layer, &x, 1e-2);
    }

    #[test]
    fn relu_masks_negative() {
        let mut l = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], [1, 2]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = Tensor::from_vec(vec![5.0, 5.0], [1, 2]).unwrap();
        assert_eq!(l.backward(&g).data(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_range_and_gradcheck() {
        let mut r = rng(2);
        let mut layer = Layer::Sigmoid(Sigmoid::new());
        let x = init::uniform([2, 4], -2.0, 2.0, &mut r);
        let y = layer.forward(&x, true);
        assert!(y.min() > 0.0 && y.max() < 1.0);
        check_input_grad(&mut layer, &x, 1e-2);
    }

    #[test]
    fn tanh_gradcheck() {
        let mut r = rng(3);
        let mut layer = Layer::Tanh(Tanh::new());
        let x = init::uniform([2, 4], -2.0, 2.0, &mut r);
        check_input_grad(&mut layer, &x, 1e-2);
    }

    #[test]
    fn dropout_scales_survivors_and_is_identity_at_eval() {
        let mut l = Dropout::new(0.5, 7);
        let x = Tensor::ones([1, 1000]);
        let y = l.forward(&x, true);
        // inverted dropout: survivors scaled to 2.0, mean stays ~1
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 2.0));
        assert!((y.mean() - 1.0).abs() < 0.1);
        let y_eval = l.forward(&x, false);
        assert_eq!(y_eval.data(), x.data());
    }

    #[test]
    fn dropout_mask_sequence_is_deterministic() {
        let xs = Tensor::ones([1, 64]);
        let mut a = Dropout::new(0.3, 42);
        let mut b = Dropout::new(0.3, 42);
        for _ in 0..3 {
            assert_eq!(a.forward(&xs, true).data(), b.forward(&xs, true).data());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn conv_known_edge_filter() {
        let mut r = rng(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 2, 2, 1, 0, &mut r);
        conv.weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], [1, 4]).unwrap();
        conv.bias = Tensor::zeros([1]);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            [1, 9],
        )
        .unwrap();
        let y = conv.forward(&x);
        assert_eq!(y.dims(), &[1, 4]);
        assert_eq!(y.data(), &[-4.0, -4.0, -4.0, -4.0]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut r = rng(5);
        let mut layer = Layer::Conv2d(Conv2d::new(1, 2, 4, 4, 3, 3, 1, 1, &mut r));
        let x = init::uniform([2, 16], -1.0, 1.0, &mut r);
        check_input_grad(&mut layer, &x, 2e-2);
    }

    #[test]
    fn conv_weight_gradcheck() {
        let mut r = rng(6);
        let conv = Conv2d::new(1, 1, 3, 3, 2, 2, 1, 0, &mut r);
        let x = init::uniform([1, 9], -1.0, 1.0, &mut r);
        let mut layer = Layer::Conv2d(conv.clone());
        let y = layer.forward(&x, true);
        let _ = layer.backward(&y);
        let analytic = match &layer {
            Layer::Conv2d(c) => c.grad_weight.clone(),
            _ => unreachable!(),
        };
        let eps = 1e-2;
        for i in 0..4 {
            let mut cp = conv.clone();
            cp.weight.data_mut()[i] += eps;
            let mut cm = conv.clone();
            cm.weight.data_mut()[i] -= eps;
            let lp = cp.forward(&x).sum_squares() / 2.0;
            let lm = cm.forward(&x).sum_squares() / 2.0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 1e-2 * (1.0 + numeric.abs()),
                "weight grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut pool = MaxPool2d::new(1, 4, 4, 2, 2);
        let x = Tensor::from_vec(
            (0..16).map(|i| i as f32).collect(),
            [1, 16],
        )
        .unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.dims(), &[1, 4]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let g = Tensor::ones([1, 4]);
        let gx = pool.backward(&g);
        // gradient routed only to the max positions
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.data()[5], 1.0);
        assert_eq!(gx.data()[15], 1.0);
        assert_eq!(gx.data()[0], 0.0);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut r = rng(8);
        let mut layer = Layer::MaxPool2d(MaxPool2d::new(1, 4, 4, 2, 2));
        let x = init::uniform([2, 16], -1.0, 1.0, &mut r);
        check_input_grad(&mut layer, &x, 1e-2);
    }

    #[test]
    fn batchnorm_normalizes_at_train() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0], [3, 2]).unwrap();
        let y = bn.forward(&x, true);
        let m = y.mean_axis(0);
        assert!(m.data().iter().all(|&v| v.abs() < 1e-5));
        let var = (&y - &m).map(|v| v * v).mean_axis(0);
        assert!(var.data().iter().all(|&v| (v - 1.0).abs() < 1e-3));
    }

    #[test]
    fn batchnorm_uses_running_stats_at_eval() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![10.0, 12.0, 8.0, 10.0], [4, 1]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        // running mean converges to 10, so eval output is ~centered
        let y = bn.forward(&x, false);
        assert!((y.mean()).abs() < 0.1, "eval mean was {}", y.mean());
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut r = rng(9);
        let mut layer = Layer::BatchNorm1d(BatchNorm1d::new(3));
        let x = init::uniform([4, 3], -1.0, 1.0, &mut r);
        check_input_grad(&mut layer, &x, 2e-2);
    }

    #[test]
    fn params_and_grads_ordering() {
        let mut r = rng(10);
        let mut layer = Layer::Dense(Dense::new(2, 3, &mut r));
        let pg = layer.params_and_grads();
        assert_eq!(pg.len(), 2);
        assert_eq!(pg[0].0.dims(), &[2, 3]); // weight first
        assert_eq!(pg[1].0.dims(), &[3]); // bias second
        assert!(Layer::ReLU(ReLU::new()).params_and_grads().is_empty());
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut r = rng(11);
        let mut layer = Layer::Dense(Dense::new(2, 2, &mut r));
        let x = init::uniform([3, 2], -1.0, 1.0, &mut r);
        let y = layer.forward(&x, true);
        let _ = layer.backward(&y);
        layer.zero_grads();
        for (_, g) in layer.params_and_grads() {
            assert_eq!(g.sum(), 0.0);
        }
    }

    #[test]
    fn cost_tracks_output_width() {
        let mut r = rng(12);
        let layer = Layer::Dense(Dense::new(5, 7, &mut r));
        let (cost, out) = layer.cost(4, 5);
        assert_eq!(out, 7);
        assert_eq!(cost.params, 5 * 7 + 7);
        let conv = Layer::Conv2d(Conv2d::new(1, 2, 4, 4, 3, 3, 1, 1, &mut r));
        let (_, out) = conv.cost(1, 16);
        assert_eq!(out, 2 * 4 * 4);
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut r = rng(13);
        let layer = Layer::Dense(Dense::new(3, 2, &mut r));
        let json = serde_json::to_string(&layer).unwrap();
        let mut back: Layer = serde_json::from_str(&json).unwrap();
        match (&layer, &mut back) {
            (Layer::Dense(a), Layer::Dense(b)) => {
                assert_eq!(a.weight, b.weight);
                assert_eq!(a.bias, b.bias);
            }
            _ => panic!("variant changed in roundtrip"),
        }
    }
}
