//! # dl-nn
//!
//! A from-scratch neural network framework with the *systems instrumentation*
//! the tutorial's Part 1 calls for. The tutorial frames a deep network as a
//! query-processing pipeline: every layer has **logic and weights**, training
//! tunes the weights, and deployment streams data items through the fixed
//! pipeline. This crate makes that framing literal:
//!
//! * [`layers`] — the pipeline operators ([`Dense`], [`Conv2d`],
//!   [`MaxPool2d`], activations, [`Dropout`], [`BatchNorm1d`]), each with an
//!   explicit `forward`/`backward` pair and cached intermediates,
//! * [`Network`] — an ordered pipeline of layers with save/load, parameter
//!   surgery hooks (used by `dl-compress`), and cost accounting,
//! * [`loss`] — softmax cross-entropy and mean-squared-error objectives,
//! * [`optim`] — SGD / momentum / Adam plus learning-rate schedules
//!   (including the cyclic cosine schedule Snapshot Ensembles rely on),
//! * [`train`] — a batching training loop that records, per epoch, the
//!   quality metrics (loss, accuracy) *and* the resource metrics (FLOPs,
//!   parameter bytes, peak activation bytes) the tutorial's tradeoff
//!   framework classifies techniques by,
//! * [`metrics`] — accuracy, confusion matrices, per-group summaries.
//!
//! Everything is seeded and deterministic; no wall-clock time enters any
//! algorithm.

#![warn(missing_docs)]

pub mod cost;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod train;

pub use cost::{CostProfile, LayerCost};
pub use layers::{BatchNorm1d, Conv2d, Dense, Dropout, Layer, MaxPool2d};
pub use loss::Loss;
pub use network::{Network, NetworkError};
pub use optim::{LrSchedule, Optimizer};
pub use train::{Dataset, EpochRecord, TrainConfig, Trainer};
