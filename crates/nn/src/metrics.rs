//! Quality metrics: accuracy, confusion matrices, per-group breakdowns.

/// Fraction of predictions equal to the labels.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "accuracy requires equal-length predictions and labels"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// A `classes x classes` confusion matrix; `matrix[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Panics
    /// Panics on length mismatch or any index `>= classes`.
    pub fn new(predictions: &[usize], labels: &[usize], classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len());
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < classes && l < classes, "class index out of range");
            counts[l][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when never predicted.
    pub fn precision(&self, c: usize) -> Option<f64> {
        let predicted: usize = self.counts.iter().map(|row| row[c]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / predicted as f64)
        }
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when class never occurs.
    pub fn recall(&self, c: usize) -> Option<f64> {
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / actual as f64)
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: usize) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.classes()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }
}

/// Accuracy computed separately per group label — the basic tool for the
/// fairness experiments (`dl-fairness` builds richer metrics on top).
///
/// Returns `(group, accuracy, count)` sorted by group.
pub fn grouped_accuracy(
    predictions: &[usize],
    labels: &[usize],
    groups: &[usize],
) -> Vec<(usize, f64, usize)> {
    assert_eq!(predictions.len(), labels.len());
    assert_eq!(predictions.len(), groups.len());
    let mut per_group: std::collections::BTreeMap<usize, (usize, usize)> = Default::default();
    for ((&p, &l), &g) in predictions.iter().zip(labels).zip(groups) {
        let e = per_group.entry(g).or_insert((0, 0));
        e.1 += 1;
        if p == l {
            e.0 += 1;
        }
    }
    per_group
        .into_iter()
        .map(|(g, (correct, total))| (g, correct as f64 / total as f64, total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn accuracy_length_mismatch() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn precision_recall_f1() {
        // predictions: class 0 predicted 3 times (2 right), class 1 once (right)
        let m = ConfusionMatrix::new(&[0, 0, 0, 1], &[0, 0, 1, 1], 2);
        assert_eq!(m.precision(0), Some(2.0 / 3.0));
        assert_eq!(m.recall(0), Some(1.0));
        assert_eq!(m.precision(1), Some(1.0));
        assert_eq!(m.recall(1), Some(0.5));
        let f1 = m.f1(1).unwrap();
        assert!((f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn precision_none_when_never_predicted() {
        let m = ConfusionMatrix::new(&[0, 0], &[0, 1], 3);
        assert_eq!(m.precision(2), None);
        assert_eq!(m.recall(2), None);
    }

    #[test]
    fn grouped_accuracy_splits_by_group() {
        let preds = [0, 0, 1, 1];
        let labels = [0, 1, 1, 1];
        let groups = [0, 0, 1, 1];
        let g = grouped_accuracy(&preds, &labels, &groups);
        assert_eq!(g, vec![(0, 0.5, 2), (1, 1.0, 2)]);
    }
}
