//! The network: an ordered pipeline of layers.

use dl_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

use crate::cost::{CostProfile, LayerCost};
use crate::layers::{Dense, Layer, ReLU};
use crate::loss::softmax;

/// Errors from network construction and persistence.
#[derive(Debug)]
pub enum NetworkError {
    /// Model file could not be read or written.
    Io(std::io::Error),
    /// Model file could not be parsed.
    Parse(serde_json::Error),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Io(e) => write!(f, "model file I/O failed: {e}"),
            NetworkError::Parse(e) => write!(f, "model file parse failed: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<std::io::Error> for NetworkError {
    fn from(e: std::io::Error) -> Self {
        NetworkError::Io(e)
    }
}

impl From<serde_json::Error> for NetworkError {
    fn from(e: serde_json::Error) -> Self {
        NetworkError::Parse(e)
    }
}

/// A feed-forward network: the tutorial's "predefined pipeline" that every
/// data item passes through.
///
/// ```
/// use dl_nn::{Network, Layer, Dense};
/// use dl_tensor::{init, Tensor};
/// let mut rng = init::rng(0);
/// let mut net = Network::mlp(&[4, 8, 2], &mut rng);
/// let x = init::uniform([3, 4], -1.0, 1.0, &mut rng);
/// let logits = net.forward(&x, false);
/// assert_eq!(logits.dims(), &[3, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
    /// Width of the expected input rows.
    pub input_dim: usize,
}

impl Network {
    /// An empty network expecting `input_dim`-wide rows.
    pub fn new(input_dim: usize) -> Self {
        Network {
            layers: Vec::new(),
            input_dim,
        }
    }

    /// Builder-style layer append.
    pub fn push(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// A ReLU multi-layer perceptron with the given widths
    /// (`dims[0]` input, `dims.last()` output logits; ReLU between).
    ///
    /// # Panics
    /// Panics when fewer than two widths are given.
    pub fn mlp(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output widths");
        let mut net = Network::new(dims[0]);
        for w in dims.windows(2).take(dims.len() - 2) {
            net.layers.push(Layer::Dense(Dense::new(w[0], w[1], rng)));
            net.layers.push(Layer::ReLU(ReLU::new()));
        }
        let last = &dims[dims.len() - 2..];
        net.layers.push(Layer::Dense(Dense::new(last[0], last[1], rng)));
        net
    }

    /// An MLP with batch normalization and dropout between hidden layers:
    /// `dense -> batchnorm -> relu -> dropout` per hidden layer, then the
    /// output dense. The regularized variant of [`Network::mlp`] for
    /// noisy-data training.
    ///
    /// # Panics
    /// Panics when fewer than two widths are given or `dropout >= 1`.
    pub fn mlp_regularized(
        dims: &[usize],
        dropout: f32,
        seed: u64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output widths");
        let mut net = Network::new(dims[0]);
        for (i, w) in dims.windows(2).take(dims.len() - 2).enumerate() {
            net.layers.push(Layer::Dense(Dense::new(w[0], w[1], rng)));
            net.layers
                .push(Layer::BatchNorm1d(crate::layers::BatchNorm1d::new(w[1])));
            net.layers.push(Layer::ReLU(ReLU::new()));
            if dropout > 0.0 {
                net.layers.push(Layer::Dropout(crate::layers::Dropout::new(
                    dropout,
                    seed.wrapping_add(i as u64),
                )));
            }
        }
        let last = &dims[dims.len() - 2..];
        net.layers.push(Layer::Dense(Dense::new(last[0], last[1], rng)));
        net
    }

    /// A small convolutional network over `[channels, height, width]`
    /// rows: conv(3x3, `filters`, pad 1) -> ReLU -> 2x2 maxpool ->
    /// dense(`hidden`) -> ReLU -> dense(`classes`).
    ///
    /// The class of model the tutorial draws its examples from; used by
    /// the CNN variants of the compression experiments.
    ///
    /// # Panics
    /// Panics when `height`/`width` are not even (the 2x2 pool must tile).
    #[allow(clippy::too_many_arguments)]
    pub fn simple_cnn(
        channels: usize,
        height: usize,
        width: usize,
        filters: usize,
        hidden: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2),
            "simple_cnn needs even spatial dims for the 2x2 pool"
        );
        let conv = crate::layers::Conv2d::new(channels, filters, height, width, 3, 3, 1, 1, rng);
        let (oh, ow) = conv.output_hw();
        let pool = crate::layers::MaxPool2d::new(filters, oh, ow, 2, 2);
        let pooled = pool.output_dim();
        let mut net = Network::new(channels * height * width);
        net.layers.push(Layer::Conv2d(conv));
        net.layers.push(Layer::ReLU(ReLU::new()));
        net.layers.push(Layer::MaxPool2d(pool));
        net.layers.push(Layer::Dense(Dense::new(pooled, hidden, rng)));
        net.layers.push(Layer::ReLU(ReLU::new()));
        net.layers.push(Layer::Dense(Dense::new(hidden, classes, rng)));
        net
    }

    /// The layer pipeline.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access for parameter surgery (pruning, quantization,
    /// hatching). Callers must preserve inter-layer shape compatibility.
    pub fn layers_mut(&mut self) -> &mut Vec<Layer> {
        &mut self.layers
    }

    /// Runs the pipeline forward. `train` enables dropout/batch statistics.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Forward pass that also returns every intermediate activation
    /// (input first, logits last). Feeds the interpretability stack.
    pub fn forward_trace(&mut self, x: &Tensor, train: bool) -> Vec<Tensor> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &mut self.layers {
            let next = layer.forward(acts.last().expect("non-empty"), train);
            acts.push(next);
        }
        acts
    }

    /// Backward pass from the loss gradient; accumulates parameter grads.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Drops all cached activations.
    pub fn clear_caches(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    /// All `(param, grad)` pairs, in pipeline order, for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(Tensor::len)
            .sum()
    }

    /// Class predictions (row-wise argmax of the logits).
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, false).argmax_rows()
    }

    /// Class probabilities (softmax of the logits).
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        softmax(&self.forward(x, false))
    }

    /// Eval-mode class predictions computed `max_batch` rows at a time —
    /// the inference-serving forward path. Each chunk runs one matmul per
    /// dense layer over a `[B, d]` input, so weights are read once per
    /// chunk instead of once per sample, while peak activation memory
    /// stays bounded by `max_batch` rows. Every eval-mode kernel is
    /// row-independent with a fixed per-element accumulation order
    /// (matmul sums over `k` in index order; BatchNorm applies running
    /// statistics; Dropout is the identity), so the result is bitwise
    /// identical to [`Network::predict`] at any chunk size.
    ///
    /// # Panics
    /// Panics when `max_batch` is zero or `x` is not a matrix.
    pub fn predict_batched(&mut self, x: &Tensor, max_batch: usize) -> Vec<usize> {
        assert!(max_batch > 0, "max_batch must be positive");
        let rows = x.dims()[0];
        if rows <= max_batch {
            // Single chunk: forward the matrix as-is, no row copies.
            return self.predict(x);
        }
        let mut out = Vec::with_capacity(rows);
        let mut lo = 0usize;
        while lo < rows {
            let hi = usize::min(lo + max_batch, rows);
            let idx: Vec<usize> = (lo..hi).collect();
            out.extend(self.predict(&x.select_rows(&idx)));
            lo = hi;
        }
        out
    }

    /// Static resource profile at the given batch size.
    pub fn cost_profile(&self, batch: usize) -> CostProfile {
        let mut dim = self.input_dim;
        let mut costs: Vec<LayerCost> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (c, out) = layer.cost(batch, dim);
            costs.push(c);
            dim = out;
        }
        CostProfile::from_layers(&costs)
    }

    /// Per-layer costs at the given batch size (used by `dl-memsched` and
    /// the placement optimizer in `dl-distributed`).
    pub fn layer_costs(&self, batch: usize) -> Vec<LayerCost> {
        let mut dim = self.input_dim;
        self.layers
            .iter()
            .map(|layer| {
                let (c, out) = layer.cost(batch, dim);
                dim = out;
                c
            })
            .collect()
    }

    /// Serializes the model to pretty JSON at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NetworkError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved by [`Network::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, NetworkError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Flattens every trainable parameter into one vector (communication
    /// and averaging in `dl-distributed`).
    pub fn flat_params(&self) -> Vec<f32> {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .flat_map(|t| t.data().iter().copied())
            .collect()
    }

    /// Overwrites every trainable parameter from a flat vector produced by
    /// [`Network::flat_params`] on an identically-shaped network.
    ///
    /// # Panics
    /// Panics when the flat length does not match this network.
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for layer in &mut self.layers {
            for (p, _) in layer.params_and_grads() {
                let n = p.len();
                assert!(
                    offset + n <= flat.len(),
                    "flat parameter vector too short: need more than {}",
                    flat.len()
                );
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
        assert_eq!(
            offset,
            flat.len(),
            "flat parameter vector has {} extra values",
            flat.len() - offset
        );
    }

    /// Flattens every accumulated gradient (same order as
    /// [`Network::flat_params`]).
    pub fn flat_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            for (_, g) in layer.params_and_grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Overwrites accumulated gradients from a flat vector (used to inject
    /// compressed/averaged gradients in `dl-distributed`).
    ///
    /// # Panics
    /// Panics when the flat length does not match this network.
    pub fn set_flat_grads(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for layer in &mut self.layers {
            for (_, g) in layer.params_and_grads() {
                let n = g.len();
                g.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{one_hot, Loss};
    use crate::optim::Optimizer;
    use dl_tensor::init::{self, rng};

    #[test]
    fn mlp_shapes() {
        let mut r = rng(0);
        let net = Network::mlp(&[4, 16, 8, 3], &mut r);
        // dense, relu, dense, relu, dense
        assert_eq!(net.layers().len(), 5);
        assert_eq!(Network::mlp(&[4, 2], &mut r).layers().len(), 1);
        assert_eq!(net.param_count(), (4 * 16 + 16) + (16 * 8 + 8) + (8 * 3 + 3));
    }

    #[test]
    fn forward_output_shape() {
        let mut r = rng(1);
        let mut net = Network::mlp(&[4, 8, 2], &mut r);
        let x = init::uniform([5, 4], -1.0, 1.0, &mut r);
        assert_eq!(net.forward(&x, false).dims(), &[5, 2]);
    }

    #[test]
    fn forward_trace_has_all_activations() {
        let mut r = rng(2);
        let mut net = Network::mlp(&[4, 8, 2], &mut r);
        let x = init::uniform([3, 4], -1.0, 1.0, &mut r);
        let trace = net.forward_trace(&x, false);
        assert_eq!(trace.len(), 4); // input + dense/relu/dense
        assert_eq!(trace[0].dims(), &[3, 4]);
        assert_eq!(trace[1].dims(), &[3, 8]);
        assert_eq!(trace[3].dims(), &[3, 2]);
    }

    #[test]
    fn batched_predict_bitwise_equals_per_sample_forward() {
        use crate::layers::{BatchNorm1d, Dense, Dropout, Tanh};
        let mut r = rng(7);
        // Every eval-mode layer kind that can sit in an MLP, including the
        // two whose train-mode behaviour depends on the batch (BatchNorm,
        // Dropout) — eval mode must be row-independent.
        let mut net = Network::new(6)
            .push(Layer::Dense(Dense::new(6, 11, &mut r)))
            .push(Layer::BatchNorm1d(BatchNorm1d::new(11)))
            .push(Layer::ReLU(crate::layers::ReLU::new()))
            .push(Layer::Dropout(Dropout::new(0.3, 9)))
            .push(Layer::Dense(Dense::new(11, 4, &mut r)))
            .push(Layer::Tanh(Tanh::new()));
        // Train-mode passes populate BatchNorm's running statistics so the
        // eval path exercises a non-trivial normalization.
        let warm = init::uniform([16, 6], -2.0, 2.0, &mut r);
        for _ in 0..3 {
            let _ = net.forward(&warm, true);
        }
        let x = init::uniform([17, 6], -2.0, 2.0, &mut r);
        // Per-sample reference loop: one [1, d] forward per row.
        let batch_logits = net.forward(&x, false);
        for i in 0..17 {
            let single = net.forward(&x.select_rows(&[i]), false);
            assert_eq!(
                single.data(),
                &batch_logits.data()[i * 4..(i + 1) * 4],
                "row {i}: batched forward drifted from the per-sample loop"
            );
        }
        // The chunked predict path agrees bitwise at every chunk size,
        // including ones that do not divide the row count.
        let reference = net.predict(&x);
        for max_batch in [1usize, 2, 5, 16, 17, 64] {
            assert_eq!(
                net.predict_batched(&x, max_batch),
                reference,
                "chunk size {max_batch} changed predictions"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut r = rng(3);
        let mut net = Network::mlp(&[2, 16, 2], &mut r);
        let mut opt = Optimizer::adam(0.01);
        // class 0 around (-1,-1), class 1 around (1,1)
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            let center = if c == 0 { -1.0 } else { 1.0 };
            let jitter = init::uniform([2], -0.2, 0.2, &mut r);
            xs.push(center + jitter.data()[0]);
            xs.push(center + jitter.data()[1]);
            labels.push(c);
        }
        let x = Tensor::from_vec(xs, [40, 2]).unwrap();
        let y = one_hot(&labels, 2);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let (loss, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &y);
            net.backward(&grad);
            let mut pg = net.params_and_grads();
            opt.step(&mut pg, 1.0);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.2, "loss {last_loss}");
        let preds = net.predict(&x);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut r = rng(4);
        let mut net = Network::mlp(&[3, 4, 3], &mut r);
        let x = init::uniform([2, 3], -1.0, 1.0, &mut r);
        let p = net.predict_proba(&x);
        for row in 0..2 {
            let s: f32 = (0..3).map(|c| p.get(&[row, c])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut r = rng(5);
        let net = Network::mlp(&[3, 5, 2], &mut r);
        let flat = net.flat_params();
        assert_eq!(flat.len(), net.param_count());
        let mut other = Network::mlp(&[3, 5, 2], &mut rng(99));
        other.set_flat_params(&flat);
        assert_eq!(other.flat_params(), flat);
    }

    #[test]
    #[should_panic(expected = "flat parameter")]
    fn set_flat_params_rejects_wrong_length() {
        let mut r = rng(6);
        let mut net = Network::mlp(&[3, 5, 2], &mut r);
        net.set_flat_params(&[0.0; 3]);
    }

    #[test]
    fn flat_grads_roundtrip() {
        let mut r = rng(7);
        let mut net = Network::mlp(&[2, 4, 2], &mut r);
        let x = init::uniform([3, 2], -1.0, 1.0, &mut r);
        let y = net.forward(&x, true);
        net.backward(&y);
        let g = net.flat_grads();
        assert_eq!(g.len(), net.param_count());
        let zeros = vec![0.0; g.len()];
        net.set_flat_grads(&zeros);
        assert!(net.flat_grads().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn save_load_roundtrip() {
        let mut r = rng(8);
        let mut net = Network::mlp(&[3, 4, 2], &mut r);
        let x = init::uniform([2, 3], -1.0, 1.0, &mut r);
        let before = net.forward(&x, false);
        let dir = std::env::temp_dir().join("dl_nn_test_model.json");
        net.save(&dir).unwrap();
        let mut loaded = Network::load(&dir).unwrap();
        let after = loaded.forward(&x, false);
        assert!(before.approx_eq(&after, 1e-7));
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = Network::load("/nonexistent/model.json").unwrap_err();
        assert!(matches!(err, NetworkError::Io(_)));
    }

    #[test]
    fn regularized_mlp_trains_through_bn_and_dropout() {
        let mut r = rng(30);
        let mut net = Network::mlp_regularized(&[4, 16, 16, 2], 0.2, 7, &mut r);
        // dense+bn+relu+dropout twice, plus the output dense
        assert_eq!(net.layers().len(), 9);
        let data_x = init::uniform([60, 4], -1.0, 1.0, &mut r);
        let labels: Vec<usize> = (0..60)
            .map(|i| usize::from(data_x.get(&[i, 0]) + data_x.get(&[i, 1]) > 0.0))
            .collect();
        let data = crate::train::Dataset::new(data_x, labels, 2);
        let mut trainer = crate::train::Trainer::new(
            crate::train::TrainConfig {
                epochs: 40,
                ..crate::train::TrainConfig::default()
            },
            crate::optim::Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let acc = crate::train::Trainer::evaluate(&mut net, &data);
        assert!(acc > 0.85, "regularized mlp accuracy {acc}");
        // eval mode is deterministic despite dropout
        let a = net.forward(&data.x, false);
        let b = net.forward(&data.x, false);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn simple_cnn_learns_digits_shape() {
        let mut r = rng(20);
        let mut net = Network::simple_cnn(1, 12, 12, 4, 16, 10, &mut r);
        assert_eq!(net.input_dim, 144);
        let x = init::uniform([3, 144], 0.0, 1.0, &mut r);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[3, 10]);
        // backward runs end to end through conv/pool/dense
        net.zero_grads();
        let logits = net.forward(&x, true);
        net.backward(&logits);
        assert!(net.flat_grads().iter().any(|&g| g != 0.0));
        // the conv carries most structure: profile sees all layers
        let p = net.cost_profile(3);
        assert!(p.forward_flops > 0);
        assert_eq!(p.params as usize, net.param_count());
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn simple_cnn_rejects_odd_dims() {
        Network::simple_cnn(1, 11, 12, 4, 16, 10, &mut rng(21));
    }

    #[test]
    fn cost_profile_counts_all_layers() {
        let mut r = rng(9);
        let net = Network::mlp(&[4, 8, 2], &mut r);
        let p = net.cost_profile(10);
        assert_eq!(p.params as usize, net.param_count());
        assert!(p.forward_flops > 0);
        assert_eq!(p.param_bytes(), p.params * 4);
        let per_layer = net.layer_costs(10);
        assert_eq!(per_layer.len(), 3);
        let merged: u64 = per_layer.iter().map(|c| c.forward_flops).sum();
        assert_eq!(merged, p.forward_flops);
    }
}
