//! Trace exporters: Chrome `trace_event` JSON and JSON-lines.
//!
//! Both exporters write through any [`std::io::Write`] sink (a file for
//! the CLI, a `Vec<u8>` in tests) and produce byte-stable output: object
//! keys are emitted in sorted order and floats use Rust's shortest
//! round-trip formatting, so a seeded run exports the identical file
//! every time (golden-tested).

use std::io::{self, Write};

use crate::field::{write_json_string, write_json_value, FieldValue, Fields};
use crate::recorder::{Event, EventKind};

/// Renders `fields` as a JSON object string with keys in sorted order —
/// the same byte-stable encoding the trace exporters use, reusable by
/// anything persisting [`Fields`] (experiment records, profile summaries,
/// the perf baselines).
#[must_use]
pub fn fields_to_json(fields: &Fields) -> String {
    let mut out = String::new();
    write_fields_object(&mut out, fields);
    out
}

/// Appends `fields` as a JSON object with keys in sorted order.
fn write_fields_object(out: &mut String, fields: &Fields) {
    let mut sorted: Vec<&(String, FieldValue)> = fields.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    out.push('{');
    for (i, (key, value)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, key);
        out.push(':');
        write_json_value(out, value);
    }
    out.push('}');
}

/// Renders one event as a Chrome `trace_event` object (keys sorted).
fn chrome_record(event: &Event) -> String {
    let ph = match event.kind {
        EventKind::SpanStart => "B",
        EventKind::SpanEnd => "E",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    };
    let mut out = String::new();
    out.push_str("{\"args\":");
    write_fields_object(&mut out, &event.fields);
    out.push_str(",\"cat\":");
    write_json_string(&mut out, event.kind.label());
    out.push_str(",\"name\":");
    write_json_string(&mut out, &event.name);
    out.push_str(",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":0");
    if event.kind == EventKind::Instant {
        // instant scope: thread-local, the narrowest marker
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(&format!(",\"tid\":{},\"ts\":{}", event.track, event.ts_micros));
    out.push('}');
    out
}

/// Which edge of a flow arrow a [`Flow`] record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The arrow's origin (Chrome `ph: "s"`).
    Start,
    /// The arrow's destination (Chrome `ph: "f"`).
    Finish,
}

/// One edge of a cross-track handoff arrow in the Chrome trace
/// (`ph: "s"` / `ph: "f"` flow events). Two records sharing an `id` —
/// one [`FlowPhase::Start`], one [`FlowPhase::Finish`] — render as an
/// arrow in Perfetto, e.g. from a router dispatch on one track to the
/// admission on the target replica's track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Arrow identity: the start and finish edges of one arrow share it.
    pub id: u64,
    /// Arrow name (Chrome `name`; both edges should agree).
    pub name: String,
    /// Timestamp of this edge in microseconds.
    pub ts_micros: u64,
    /// Track (Chrome `tid`) this edge anchors to.
    pub track: u32,
    /// Start or finish edge.
    pub phase: FlowPhase,
}

/// Renders one flow edge as a Chrome `trace_event` object (keys sorted).
fn flow_record(flow: &Flow) -> String {
    let mut out = String::new();
    // Finish edges bind to the enclosing slice (`bp:"e"`), which lets
    // Perfetto attach the arrowhead to instants and spans alike.
    if flow.phase == FlowPhase::Finish {
        out.push_str("{\"bp\":\"e\",\"cat\":\"flow\",\"id\":");
    } else {
        out.push_str("{\"cat\":\"flow\",\"id\":");
    }
    out.push_str(&flow.id.to_string());
    out.push_str(",\"name\":");
    write_json_string(&mut out, &flow.name);
    out.push_str(",\"ph\":\"");
    out.push_str(match flow.phase {
        FlowPhase::Start => "s",
        FlowPhase::Finish => "f",
    });
    out.push_str(&format!(
        "\",\"pid\":0,\"tid\":{},\"ts\":{}",
        flow.track, flow.ts_micros
    ));
    out.push('}');
    out
}

/// Writes `events` as a Chrome `trace_event` JSON array, loadable by
/// `chrome://tracing` and Perfetto. One record per line, keys sorted.
///
/// # Errors
/// Propagates sink I/O errors.
pub fn write_chrome_trace(events: &[Event], sink: &mut dyn Write) -> io::Result<()> {
    write_chrome_trace_with_flows(events, &[], sink)
}

/// Writes `events` plus `flows` as a Chrome `trace_event` JSON array:
/// the regular records first in event order, then the flow edges in the
/// order given (callers sort them deterministically), so the output is
/// byte-stable for a fixed input.
///
/// # Errors
/// Propagates sink I/O errors.
pub fn write_chrome_trace_with_flows(
    events: &[Event],
    flows: &[Flow],
    sink: &mut dyn Write,
) -> io::Result<()> {
    sink.write_all(b"[\n")?;
    let total = events.len() + flows.len();
    for (i, event) in events.iter().enumerate() {
        sink.write_all(chrome_record(event).as_bytes())?;
        if i + 1 < total {
            sink.write_all(b",")?;
        }
        sink.write_all(b"\n")?;
    }
    for (i, flow) in flows.iter().enumerate() {
        sink.write_all(flow_record(flow).as_bytes())?;
        if events.len() + i + 1 < total {
            sink.write_all(b",")?;
        }
        sink.write_all(b"\n")?;
    }
    sink.write_all(b"]\n")
}

/// The Chrome trace as an in-memory string (convenience over
/// [`write_chrome_trace`]).
#[must_use]
pub fn chrome_trace_to_string(events: &[Event]) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(events, &mut buf).expect("in-memory sink cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Writes `events` as JSON-lines: one self-contained object per line with
/// keys `fields`, `kind`, `name`, `track`, `ts_us` (sorted).
///
/// # Errors
/// Propagates sink I/O errors.
pub fn write_json_lines(events: &[Event], sink: &mut dyn Write) -> io::Result<()> {
    for event in events {
        let mut out = String::new();
        out.push_str("{\"fields\":");
        write_fields_object(&mut out, &event.fields);
        out.push_str(",\"kind\":");
        write_json_string(&mut out, event.kind.label());
        out.push_str(",\"name\":");
        write_json_string(&mut out, &event.name);
        out.push_str(&format!(
            ",\"track\":{},\"ts_us\":{}}}\n",
            event.track, event.ts_micros
        ));
        sink.write_all(out.as_bytes())?;
    }
    Ok(())
}

/// The JSON-lines dump as an in-memory string.
#[must_use]
pub fn json_lines_to_string(events: &[Event]) -> String {
    let mut buf = Vec::new();
    write_json_lines(events, &mut buf).expect("in-memory sink cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;
    use crate::recorder::{Recorder, TimelineRecorder};

    fn sample_events() -> Vec<Event> {
        let rec = TimelineRecorder::new();
        let run = rec.span_start(0, "run", fields! { "workers" => 2usize });
        rec.clock().advance(0.5);
        rec.instant(1, "crash", fields! { "worker" => 1u32, "step" => 10usize });
        rec.clock().advance(0.25);
        rec.counter(0, "rollbacks", 1);
        rec.span_end(run, fields! { "accuracy" => 0.875 });
        rec.events()
    }

    #[test]
    fn chrome_trace_is_a_json_array_with_sorted_keys() {
        let s = chrome_trace_to_string(&sample_events());
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with("]\n"));
        assert!(s.contains(r#"{"args":{"workers":2},"cat":"span_start","name":"run","ph":"B","pid":0,"tid":0,"ts":0}"#));
        assert!(s.contains(r#"{"args":{"step":10,"worker":1},"cat":"instant","name":"crash","ph":"i","pid":0,"s":"t","tid":1,"ts":500000}"#));
        assert!(s.contains(r#""ph":"C""#));
        assert!(s.contains(r#""ph":"E""#));
    }

    #[test]
    fn export_is_deterministic() {
        let events = sample_events();
        assert_eq!(
            chrome_trace_to_string(&events),
            chrome_trace_to_string(&sample_events())
        );
        assert_eq!(
            json_lines_to_string(&events),
            json_lines_to_string(&sample_events())
        );
    }

    #[test]
    fn json_lines_one_object_per_event() {
        let events = sample_events();
        let s = json_lines_to_string(&events);
        assert_eq!(s.lines().count(), events.len());
        assert!(s
            .lines()
            .all(|l| l.starts_with("{\"fields\":") && l.ends_with('}')));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        assert_eq!(chrome_trace_to_string(&[]), "[\n]\n");
        assert_eq!(json_lines_to_string(&[]), "");
    }

    fn sample_flows() -> Vec<Flow> {
        vec![
            Flow {
                id: 9,
                name: "serve.handoff".to_string(),
                ts_micros: 100,
                track: 0,
                phase: FlowPhase::Start,
            },
            Flow {
                id: 9,
                name: "serve.handoff".to_string(),
                ts_micros: 250,
                track: 3,
                phase: FlowPhase::Finish,
            },
        ]
    }

    #[test]
    fn flow_edges_render_as_s_and_f_records() {
        let mut buf = Vec::new();
        write_chrome_trace_with_flows(&sample_events(), &sample_flows(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains(
            r#"{"cat":"flow","id":9,"name":"serve.handoff","ph":"s","pid":0,"tid":0,"ts":100}"#
        ));
        assert!(s.contains(
            r#"{"bp":"e","cat":"flow","id":9,"name":"serve.handoff","ph":"f","pid":0,"tid":3,"ts":250}"#
        ));
        // Still one valid JSON array: every line but the last two ends
        // with a comma, and the bracket closes it.
        assert!(s.starts_with("[\n") && s.ends_with("]\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), sample_events().len() + 2 + 2);
        for line in &lines[1..lines.len() - 2] {
            assert!(line.ends_with(','), "interior line unterminated: {line}");
        }
    }

    #[test]
    fn flows_alone_form_a_valid_array() {
        let mut buf = Vec::new();
        write_chrome_trace_with_flows(&[], &sample_flows(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("[\n") && s.ends_with("]\n"));
        assert_eq!(s.matches("\"cat\":\"flow\"").count(), 2);
        assert!(!s.contains("\n,"), "comma placement stays on the record line");
    }
}
