//! The [`Recorder`] trait, its event model, and the two full recorders:
//! the unbounded [`TimelineRecorder`] and the no-op [`NullRecorder`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::clock::VirtualClock;
use crate::field::{Fields, ToFields};

/// What an [`Event`] marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opening edge of a span (Chrome `ph: "B"`).
    SpanStart,
    /// Closing edge of a span (Chrome `ph: "E"`).
    SpanEnd,
    /// A point-in-time annotation (Chrome `ph: "i"`), e.g. a fault
    /// injection.
    Instant,
    /// A counter sample (Chrome `ph: "C"`): the counter's running total
    /// at this timestamp.
    Counter,
}

impl EventKind {
    /// Stable lowercase label used by the JSON-lines exporter and as the
    /// Chrome `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }
}

/// One timestamped, structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-clock timestamp in microseconds.
    pub ts_micros: u64,
    /// Span edge / instant / counter sample.
    pub kind: EventKind,
    /// Event name (the span or counter name).
    pub name: String,
    /// Timeline lane, rendered as the Chrome `tid`. Drivers use one track
    /// per simulated worker (track 0 for driver-level events).
    pub track: u32,
    /// Typed key-value annotations.
    pub fields: Fields,
}

/// Handle returned by [`Recorder::span_start`] and consumed by
/// [`Recorder::span_end`], pinning the end event to the same name and
/// track as the start.
#[derive(Debug)]
#[must_use = "an unclosed span never gets its end edge; pass this to span_end"]
pub struct SpanId {
    name: String,
    track: u32,
}

/// A span-style structured event recorder over a [`VirtualClock`].
///
/// Implementations must be cheap to call and must never consult the wall
/// clock: every timestamp comes from [`Recorder::clock`], which the
/// instrumented driver advances in lockstep with its simulated-time
/// accounting. All methods take `&self` so one recorder can be threaded
/// through nested drivers (interior mutability is the implementation's
/// concern; a `Mutex` is fine at this event volume).
pub trait Recorder: Send + Sync {
    /// The clock this recorder timestamps events against.
    fn clock(&self) -> &VirtualClock;

    /// True when this recorder actually retains or aggregates anything.
    ///
    /// Instrumented drivers use this to skip *collection* work whose only
    /// consumer is the recorder (e.g. opening a tensor cost-accounting
    /// scope): [`NullRecorder`] returns `false`, so untraced runs pay
    /// nothing and stay bit-identical.
    fn enabled(&self) -> bool {
        true
    }

    /// Appends one event to the timeline.
    fn record(&self, event: Event);

    /// Adds `delta` to the named monotonic counter and returns the new
    /// total (0 for recorders that do not aggregate).
    fn add_counter(&self, name: &str, delta: u64) -> u64;

    /// Records `value` into the named log-scale histogram.
    fn observe(&self, name: &str, value: f64);

    /// Records `value` into the named histogram and offers `exemplar`
    /// (a request/sample id) for the bucket it lands in. Buckets keep the
    /// *first* exemplar offered (see [`Histogram::observe_exemplar`]), so
    /// a fat tail bucket points at a concrete trace to pull up. The
    /// default implementation drops the exemplar and just observes;
    /// aggregating recorders override it.
    fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        let _ = exemplar;
        self.observe(name, value);
    }

    /// Opens a span named `name` on `track` at the current virtual time.
    fn span_start(&self, track: u32, name: &str, fields: Fields) -> SpanId {
        self.record(Event {
            ts_micros: self.clock().now_micros(),
            kind: EventKind::SpanStart,
            name: name.to_string(),
            track,
            fields,
        });
        SpanId {
            name: name.to_string(),
            track,
        }
    }

    /// Closes `span` at the current virtual time, attaching `fields` to
    /// the end edge (the natural place for measured outcomes).
    fn span_end(&self, span: SpanId, fields: Fields) {
        self.record(Event {
            ts_micros: self.clock().now_micros(),
            kind: EventKind::SpanEnd,
            name: span.name,
            track: span.track,
            fields,
        });
    }

    /// Marks a point event (fault injections, rollbacks, rejoins).
    fn instant(&self, track: u32, name: &str, fields: Fields) {
        self.record(Event {
            ts_micros: self.clock().now_micros(),
            kind: EventKind::Instant,
            name: name.to_string(),
            track,
            fields,
        });
    }

    /// Bumps the named counter by `delta` and drops a counter sample on
    /// the timeline so viewers can plot its trajectory.
    fn counter(&self, track: u32, name: &str, delta: u64) {
        let total = self.add_counter(name, delta);
        self.record(Event {
            ts_micros: self.clock().now_micros(),
            kind: EventKind::Counter,
            name: name.to_string(),
            track,
            fields: vec![("value".to_string(), total.into())],
        });
    }
}

/// Number of log-scale histogram buckets (base-2, covering `2^-30` up to
/// `2^33`, i.e. sub-nanosecond seconds up to billions of samples).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent of the lower bound of bucket 1 (`2^HISTOGRAM_MIN_EXP`).
pub const HISTOGRAM_MIN_EXP: i32 = -30;

/// A fixed-bucket log-scale histogram.
///
/// Bucket 0 collects zero, negative, and non-finite values; bucket `i`
/// (for `i >= 1`) collects values in
/// `[2^(MIN_EXP + i - 1), 2^(MIN_EXP + i))`, with the top bucket also
/// absorbing overflow. Fixed bucket edges keep merged and re-run
/// histograms directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket exemplar slots: the id (request id, sample index…) of
    /// the *first* observation that landed in each bucket, when the
    /// observer offered one via [`Histogram::observe_exemplar`]. Links an
    /// anonymous tail bucket back to a concrete trace.
    pub exemplars: [Option<u64>; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            exemplars: [None; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// The bucket index `value` falls into.
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if !value.is_finite() || value <= 0.0 {
            return 0;
        }
        let exp = value.log2().floor() as i32;
        (exp - HISTOGRAM_MIN_EXP + 1).clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Records one observation and offers `exemplar` for its bucket.
    ///
    /// Slots follow a deterministic keep-first rule: the first exemplar
    /// offered to a bucket sticks for the lifetime of the histogram (one
    /// "roll" of the window for rolling consumers); later observations
    /// never evict it. Replays of the same observation stream therefore
    /// reproduce the same exemplars bit-for-bit.
    pub fn observe_exemplar(&mut self, value: f64, exemplar: u64) {
        let bucket = Self::bucket_index(value);
        if self.exemplars[bucket].is_none() {
            self.exemplars[bucket] = Some(exemplar);
        }
        self.observe(value);
    }

    /// The exemplar id held by `bucket`, if any observation offered one.
    #[must_use]
    pub fn exemplar(&self, bucket: usize) -> Option<u64> {
        self.exemplars.get(bucket).copied().flatten()
    }

    /// Mean of the observed values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), a conservative log-scale estimate.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                if i == 0 {
                    return 0.0;
                }
                return f64::powi(2.0, HISTOGRAM_MIN_EXP + i as i32);
            }
        }
        self.max
    }

    /// Index of the bucket containing the `q`-quantile observation, or
    /// `None` when the histogram is empty. Pair with
    /// [`Histogram::exemplar`] to pull a concrete trace out of the tail:
    /// `h.quantile_bucket(0.99).and_then(|b| h.exemplar(b))`.
    #[must_use]
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        let mut last_nonempty = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 {
                last_nonempty = i;
            }
            if seen > rank {
                return Some(i);
            }
        }
        Some(last_nonempty)
    }

    /// Median (upper bucket edge).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (upper bucket edge).
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (upper bucket edge).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (upper bucket edge) — the deep-tail gate the
    /// serving SLO controller reads. Not part of [`ToFields`] so the
    /// committed baseline record schema stays unchanged.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds `other` into `self`, as if every observation recorded into
    /// `other` had been recorded here instead.
    ///
    /// Because the bucket edges are fixed (never rescaled to the data),
    /// merging is exact on buckets, counts, min and max — commutative
    /// *and* associative bit-for-bit, so sharded histograms (per-replica,
    /// per-window) combine into the same quantile estimates regardless of
    /// merge order. Only `sum` is subject to f64 rounding: commutative
    /// exactly (a+b == b+a), associative only approximately. Exemplar
    /// slots keep-first across the merge too — `self`'s exemplar wins
    /// when both sides hold one — so merging shards in time order
    /// preserves the keep-first law of the combined stream (and makes
    /// exemplars the one field where merge order matters).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        for (e, &o) in self.exemplars.iter_mut().zip(&other.exemplars) {
            *e = e.or(o);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary view of a histogram: count, sum, min/max/mean, and the
/// `p50/p90/p99` percentile estimates — what reports and the profiler
/// attach to events instead of 64 raw buckets.
impl ToFields for Histogram {
    fn to_fields(&self) -> Fields {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        crate::fields! {
            "count" => self.count,
            "sum" => self.sum,
            "min" => min,
            "max" => max,
            "mean" => self.mean(),
            "p50" => self.p50(),
            "p90" => self.p90(),
            "p99" => self.p99(),
        }
    }
}

/// Shared counter/histogram aggregation used by the concrete recorders.
#[derive(Debug, Default)]
pub(crate) struct MetricsCore {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsCore {
    pub(crate) fn add_counter(&self, name: &str, delta: u64) -> u64 {
        let mut counters = self.counters.lock().expect("counter lock");
        let slot = counters.entry(name.to_string()).or_insert(0);
        *slot += delta;
        *slot
    }

    pub(crate) fn observe(&self, name: &str, value: f64) {
        let mut hists = self.histograms.lock().expect("histogram lock");
        hists.entry(name.to_string()).or_default().observe(value);
    }

    pub(crate) fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        let mut hists = self.histograms.lock().expect("histogram lock");
        hists
            .entry(name.to_string())
            .or_default()
            .observe_exemplar(value, exemplar);
    }

    pub(crate) fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().expect("counter lock").clone()
    }

    pub(crate) fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .lock()
            .expect("histogram lock")
            .get(name)
            .cloned()
    }
}

/// A recorder that aggregates nothing and keeps no events — the zero-cost
/// default wired into every instrumented driver. Its clock still runs, so
/// code can advance time unconditionally.
#[derive(Debug, Default)]
pub struct NullRecorder {
    clock: VirtualClock,
}

impl NullRecorder {
    /// A fresh null recorder at time zero.
    pub fn new() -> Self {
        NullRecorder::default()
    }
}

impl Recorder for NullRecorder {
    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}

    fn add_counter(&self, _name: &str, _delta: u64) -> u64 {
        0
    }

    fn observe(&self, _name: &str, _value: f64) {}

    // Skip building Event values the base methods would discard.
    fn span_start(&self, track: u32, name: &str, _fields: Fields) -> SpanId {
        let _ = name;
        SpanId {
            name: String::new(),
            track,
        }
    }

    fn span_end(&self, _span: SpanId, _fields: Fields) {}

    fn instant(&self, _track: u32, _name: &str, _fields: Fields) {}

    fn counter(&self, _track: u32, _name: &str, _delta: u64) {}
}

/// A recorder that keeps the complete event timeline in memory, plus
/// counter and histogram aggregates — the source for the exporters.
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    clock: VirtualClock,
    events: Mutex<Vec<Event>>,
    metrics: MetricsCore,
}

impl TimelineRecorder {
    /// An empty timeline at time zero.
    pub fn new() -> Self {
        TimelineRecorder::default()
    }

    /// A copy of every recorded event, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("event lock").clone()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("event lock").len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.metrics.counters()
    }

    /// Snapshot of the named histogram, if observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.metrics.histogram(name)
    }
}

impl Recorder for TimelineRecorder {
    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn record(&self, event: Event) {
        self.events.lock().expect("event lock").push(event);
    }

    fn add_counter(&self, name: &str, delta: u64) -> u64 {
        self.metrics.add_counter(name, delta)
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value)
    }

    fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        self.metrics.observe_exemplar(name, value, exemplar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    #[test]
    fn timeline_records_span_edges_in_order() {
        let rec = TimelineRecorder::new();
        let span = rec.span_start(0, "epoch", fields! { "epoch" => 0usize });
        rec.clock().advance(2.0);
        rec.instant(1, "crash", fields! { "worker" => 1u32 });
        rec.clock().advance(1.0);
        rec.span_end(span, fields! { "loss" => 0.25 });
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].ts_micros, 0);
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].ts_micros, 2_000_000);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!(events[2].name, "epoch");
        assert_eq!(events[2].ts_micros, 3_000_000);
    }

    #[test]
    fn counters_accumulate_and_sample() {
        let rec = TimelineRecorder::new();
        rec.counter(0, "samples", 64);
        rec.counter(0, "samples", 64);
        assert_eq!(rec.counters()["samples"], 128);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].fields[0].1, crate::FieldValue::U64(128));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // 1.0 = 2^0 -> exponent 0 -> bucket 0 - (-30) + 1 = 31
        assert_eq!(Histogram::bucket_index(1.0), 31);
        assert_eq!(Histogram::bucket_index(2.0), 32);
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert!((h.mean() - 1.875).abs() < 1e-12);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn out_of_order_span_closes_keep_timestamps_monotonic() {
        // Spans closed LIFO-violating order (outer before inner, or
        // interleaved across tracks) must still produce a monotone
        // timeline: every timestamp comes from the shared VirtualClock,
        // which never runs backwards even when a driver calls `set` with
        // a stale local accumulator between the closes.
        let rec = TimelineRecorder::new();
        let outer = rec.span_start(0, "outer", fields!());
        rec.clock().advance(1.0);
        let inner = rec.span_start(1, "inner", fields!());
        rec.clock().advance(1.0);
        rec.span_end(outer, fields!()); // closes before inner: not LIFO
        rec.clock().set(0.5); // stale absolute time: must not rewind
        rec.span_end(inner, fields!());
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert!(
            events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros),
            "timeline went backwards: {:?}",
            events.iter().map(|e| e.ts_micros).collect::<Vec<_>>()
        );
        // End edges keep the identity of the span they close, not the
        // most recently opened one.
        assert_eq!(events[2].name, "outer");
        assert_eq!(events[2].track, 0);
        assert_eq!(events[3].name, "inner");
        assert_eq!(events[3].track, 1);
        assert_eq!(events[3].ts_micros, 2_000_000);
    }

    #[test]
    fn histogram_percentile_summary_exports_through_to_fields() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(f64::from(i));
        }
        // Log-scale buckets give upper-edge estimates: each percentile is
        // an upper bound within one power of two of the true value.
        for (q, truth) in [(0.50, 50.0), (0.90, 90.0), (0.99, 99.0)] {
            let est = h.quantile(q);
            assert!(
                est >= truth && est <= truth * 2.0,
                "q{q}: estimate {est} not in [{truth}, {}]",
                truth * 2.0
            );
        }
        let fields = h.to_fields();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or_else(|| panic!("missing field {key}"))
        };
        assert_eq!(get("count"), 100.0);
        assert_eq!(get("min"), 1.0);
        assert_eq!(get("max"), 100.0);
        assert!(get("p50") <= get("p90") && get("p90") <= get("p99"));
        assert_eq!(get("p50"), h.p50());
        assert_eq!(get("p99"), h.p99());
    }

    #[test]
    fn tail_percentiles_under_heavy_skew() {
        // 10_000 observations, ~1ms fast path with a 0.5% tail at ~4s:
        // the body percentiles must stay in the fast band while p999
        // lands in the tail band. This is exactly the shape the serving
        // SLO gate reads (a mostly-fast service with rare stalls).
        let mut h = Histogram::default();
        for i in 0..10_000u32 {
            if i % 200 == 199 {
                h.observe(4.0); // rare stall
            } else {
                h.observe(1e-3); // fast path
            }
        }
        assert_eq!(h.count, 10_000);
        // Upper-edge estimates: within one power of two of the truth.
        assert!(h.p50() >= 1e-3 && h.p50() <= 2e-3, "p50 = {}", h.p50());
        assert!(h.p99() >= 1e-3 && h.p99() <= 2e-3, "p99 = {}", h.p99());
        assert!(h.p999() >= 4.0 && h.p999() <= 8.0, "p999 = {}", h.p999());
        assert!(h.p99() < h.p999(), "tail must separate from the body");
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn p999_distinguishes_tails_p99_cannot_see() {
        // Two latency profiles identical through p99 — only the deep
        // tail differs. p999 must separate them; p99 must not.
        let mut bounded = Histogram::default();
        let mut stalls = Histogram::default();
        for i in 0..100_000u32 {
            bounded.observe(2e-3);
            if i % 500 == 499 {
                stalls.observe(16.0); // 0.2% deep stalls
            } else {
                stalls.observe(2e-3);
            }
        }
        assert_eq!(bounded.p99(), stalls.p99(), "p99 blind to a 0.2% tail");
        assert!(stalls.p999() >= 16.0, "p999 = {}", stalls.p999());
        assert!(bounded.p999() <= 4e-3, "p999 = {}", bounded.p999());
        // Monotone through the tail: quantile is non-decreasing in q.
        for qs in [[0.5, 0.9], [0.9, 0.99], [0.99, 0.999], [0.999, 1.0]] {
            assert!(stalls.quantile(qs[0]) <= stalls.quantile(qs[1]));
        }
    }

    #[test]
    fn empty_histogram_summary_is_all_zeros() {
        let h = Histogram::default();
        for (k, v) in h.to_fields() {
            assert_eq!(v.as_f64(), Some(0.0), "field {k} should be 0 when empty");
        }
    }

    /// Deterministic pseudo-random value stream for the merge-law tests
    /// (xorshift over a seed; spans ~12 orders of magnitude plus the
    /// degenerate bucket-0 values).
    fn value_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                match i % 7 {
                    0 => 0.0,
                    1 => -((s % 100) as f64),
                    _ => (s % 1_000_000) as f64 * 1e-9 * f64::powi(10.0, (s % 12) as i32 - 6),
                }
            })
            .collect()
    }

    fn hist_of(values: &[f64]) -> Histogram {
        let mut h = Histogram::default();
        for &v in values {
            h.observe(v);
        }
        h
    }

    /// Exact equality on everything but `sum` (f64 addition is not
    /// associative, so `sum` only merges approximately).
    fn assert_merge_equal(a: &Histogram, b: &Histogram, ctx: &str) {
        assert_eq!(a.buckets, b.buckets, "{ctx}: buckets");
        assert_eq!(a.count, b.count, "{ctx}: count");
        assert_eq!(a.min.to_bits(), b.min.to_bits(), "{ctx}: min");
        assert_eq!(a.max.to_bits(), b.max.to_bits(), "{ctx}: max");
        let scale = a.sum.abs().max(1.0);
        assert!(
            (a.sum - b.sum).abs() <= 1e-9 * scale,
            "{ctx}: sum {} vs {}",
            a.sum,
            b.sum
        );
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                a.quantile(q).to_bits(),
                b.quantile(q).to_bits(),
                "{ctx}: quantile({q})"
            );
        }
    }

    #[test]
    fn merge_equals_observing_everything_in_one_histogram() {
        // The merge law: merge(hist(A), hist(B)) == hist(A ++ B), exactly,
        // for buckets/count/min/max and therefore every quantile.
        for seed in [3u64, 17, 4242] {
            let a = value_stream(seed, 97);
            let b = value_stream(seed.wrapping_mul(31), 61);
            let mut merged = hist_of(&a);
            merged.merge(&hist_of(&b));
            let mut combined: Vec<f64> = a.clone();
            combined.extend(&b);
            assert_merge_equal(&merged, &hist_of(&combined), "merge law");
        }
    }

    #[test]
    fn merge_is_commutative() {
        for seed in [7u64, 99, 1234] {
            let a = hist_of(&value_stream(seed, 80));
            let b = hist_of(&value_stream(seed + 1, 120));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab.buckets, ba.buckets);
            assert_eq!(ab.count, ba.count);
            // f64 addition is exactly commutative, so sum matches to the bit.
            assert_eq!(ab.sum.to_bits(), ba.sum.to_bits(), "a+b == b+a exactly");
            assert_eq!(ab.min.to_bits(), ba.min.to_bits());
            assert_eq!(ab.max.to_bits(), ba.max.to_bits());
        }
    }

    #[test]
    fn merge_is_associative() {
        for seed in [11u64, 210, 90_001] {
            let a = hist_of(&value_stream(seed, 50));
            let b = hist_of(&value_stream(seed + 2, 70));
            let c = hist_of(&value_stream(seed + 4, 30));
            let mut ab_c = a.clone();
            ab_c.merge(&b);
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_merge_equal(&ab_c, &a_bc, "associativity");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = hist_of(&value_stream(5, 40));
        let mut merged = h.clone();
        merged.merge(&Histogram::default());
        assert_eq!(merged, h, "right identity");
        let mut from_empty = Histogram::default();
        from_empty.merge(&h);
        assert_eq!(from_empty, h, "left identity");
        let mut both = Histogram::default();
        both.merge(&Histogram::default());
        assert_eq!(both.count, 0);
        assert_eq!(both.to_fields(), Histogram::default().to_fields());
    }

    #[test]
    fn exemplars_keep_first_per_bucket_deterministically() {
        let mut h = Histogram::default();
        h.observe(1.5); // no exemplar offered: slot stays empty
        assert_eq!(h.exemplar(Histogram::bucket_index(1.5)), None);
        h.observe_exemplar(1.5, 7);
        h.observe_exemplar(1.9, 8); // same bucket: first offer sticks
        h.observe_exemplar(64.0, 42);
        assert_eq!(h.exemplar(Histogram::bucket_index(1.5)), Some(7));
        assert_eq!(h.exemplar(Histogram::bucket_index(64.0)), Some(42));
        assert_eq!(h.count, 4);
        // Replaying the same stream reproduces the same slots.
        let mut replay = Histogram::default();
        replay.observe(1.5);
        replay.observe_exemplar(1.5, 7);
        replay.observe_exemplar(1.9, 8);
        replay.observe_exemplar(64.0, 42);
        assert_eq!(h, replay);
    }

    #[test]
    fn exemplar_merge_preserves_keep_first_of_the_combined_stream() {
        // Property: splitting a stream at any point and merging the two
        // halves in time order yields exactly the exemplars of observing
        // the whole stream into one histogram.
        let ids: Vec<u64> = (0..200).collect();
        let values = value_stream(77, 200);
        let mut whole = Histogram::default();
        for (&v, &id) in values.iter().zip(&ids) {
            whole.observe_exemplar(v, id);
        }
        for split in [0usize, 1, 50, 199, 200] {
            let mut early = Histogram::default();
            let mut late = Histogram::default();
            for (i, (&v, &id)) in values.iter().zip(&ids).enumerate() {
                if i < split {
                    early.observe_exemplar(v, id);
                } else {
                    late.observe_exemplar(v, id);
                }
            }
            early.merge(&late);
            assert_eq!(early.exemplars, whole.exemplars, "split at {split}");
            assert_eq!(early.buckets, whole.buckets, "split at {split}");
        }
    }

    #[test]
    fn quantile_bucket_links_tail_to_exemplar() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_bucket(0.99), None, "empty has no bucket");
        for i in 0..1000u64 {
            if i == 500 {
                h.observe_exemplar(8.0, 99_999); // lone deep-tail stall
            } else {
                h.observe_exemplar(1e-3, i);
            }
        }
        let body = h.quantile_bucket(0.50).expect("non-empty");
        assert_eq!(body, Histogram::bucket_index(1e-3));
        assert_eq!(h.exemplar(body), Some(0), "first fast request sticks");
        let tail = h.quantile_bucket(1.0).expect("non-empty");
        assert_eq!(tail, Histogram::bucket_index(8.0));
        assert_eq!(h.exemplar(tail), Some(99_999), "tail names the stall");
    }

    #[test]
    fn exemplars_do_not_change_the_exported_summary_schema() {
        // Byte-stability property: an exemplar-carrying histogram exports
        // the same summary fields (and the same JSON bytes) as the same
        // observations without exemplars — exemplars ride alongside, they
        // never perturb the committed baseline schema.
        let values = value_stream(13, 150);
        let mut plain = Histogram::default();
        let mut tagged = Histogram::default();
        for (i, &v) in values.iter().enumerate() {
            plain.observe(v);
            tagged.observe_exemplar(v, i as u64);
        }
        assert_eq!(plain.to_fields(), tagged.to_fields());
        assert_eq!(
            crate::export::fields_to_json(&plain.to_fields()),
            crate::export::fields_to_json(&tagged.to_fields()),
        );
    }

    #[test]
    fn recorder_observe_exemplar_aggregates_and_defaults_degrade() {
        let rec = TimelineRecorder::new();
        rec.observe_exemplar("lat", 2.0, 17);
        rec.observe_exemplar("lat", 2.5, 18);
        let h = rec.histogram("lat").expect("observed");
        assert_eq!(h.count, 2);
        assert_eq!(h.exemplar(Histogram::bucket_index(2.0)), Some(17));
        // Flight recorder aggregates too; null recorder stays silent.
        let flight = crate::FlightRecorder::new(4);
        flight.observe_exemplar("lat", 2.0, 3);
        assert_eq!(flight.histogram("lat").expect("observed").count, 1);
        NullRecorder::new().observe_exemplar("lat", 2.0, 3);
    }

    #[test]
    fn null_recorder_reports_disabled_others_enabled() {
        assert!(!NullRecorder::new().enabled());
        assert!(TimelineRecorder::new().enabled());
        assert!(crate::FlightRecorder::new(4).enabled());
    }

    #[test]
    fn null_recorder_discards_everything_but_keeps_time() {
        let rec = NullRecorder::new();
        let span = rec.span_start(0, "x", fields! { "a" => 1u64 });
        rec.clock().advance(1.0);
        rec.span_end(span, fields!());
        rec.counter(0, "c", 10);
        assert_eq!(rec.add_counter("c", 5), 0);
        assert_eq!(rec.clock().now_micros(), 1_000_000);
    }

    #[test]
    fn recorder_is_object_safe_and_sharable() {
        let rec: std::sync::Arc<dyn Recorder> = std::sync::Arc::new(TimelineRecorder::new());
        let span = rec.span_start(0, "s", fields!());
        rec.span_end(span, fields!());
    }
}
