//! The [`FlightRecorder`]: a bounded ring buffer keeping the most recent
//! events for post-mortem dumps.

use std::sync::Mutex;

use crate::clock::VirtualClock;
use crate::recorder::{Event, MetricsCore, Recorder};

/// Fixed-capacity event ring.
#[derive(Debug)]
struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest retained event when the ring is full.
    head: usize,
    /// Events overwritten since the start of recording.
    dropped: u64,
}

/// A [`Recorder`] that retains only the last `capacity` events.
///
/// When a long run crashes, the interesting events are the recent ones —
/// the crash, the rollback it forced, the retries before it. The flight
/// recorder bounds memory to `capacity` events no matter how long the run
/// is, while counters and histograms still aggregate over the whole run.
/// [`FlightRecorder::dump`] returns the retained window oldest-first.
#[derive(Debug)]
pub struct FlightRecorder {
    clock: VirtualClock,
    ring: Mutex<Ring>,
    capacity: usize,
    metrics: MetricsCore,
}

impl FlightRecorder {
    /// A flight recorder retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a positive capacity");
        FlightRecorder {
            clock: VirtualClock::new(),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                dropped: 0,
            }),
            capacity,
            metrics: MetricsCore::default(),
        }
    }

    /// The configured retention window, in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten so far (0 until the ring first wraps).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("ring lock").dropped
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn dump(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("ring lock");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Snapshot of all counters (aggregated over the *whole* run, not
    /// just the retained window).
    #[must_use]
    pub fn counters(&self) -> std::collections::BTreeMap<String, u64> {
        self.metrics.counters()
    }

    /// Snapshot of the named histogram, if observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<crate::recorder::Histogram> {
        self.metrics.histogram(name)
    }
}

impl Recorder for FlightRecorder {
    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn record(&self, event: Event) {
        let mut ring = self.ring.lock().expect("ring lock");
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    fn add_counter(&self, name: &str, delta: u64) -> u64 {
        self.metrics.add_counter(name, delta)
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value)
    }

    fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        self.metrics.observe_exemplar(name, value, exemplar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    fn names(events: &[Event]) -> Vec<String> {
        events.iter().map(|e| e.name.clone()).collect()
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let rec = FlightRecorder::new(8);
        for i in 0..5 {
            rec.instant(0, &format!("e{i}"), fields!());
        }
        assert_eq!(rec.dropped(), 0);
        assert_eq!(names(&rec.dump()), ["e0", "e1", "e2", "e3", "e4"]);
    }

    #[test]
    fn wraparound_keeps_the_most_recent_window() {
        let rec = FlightRecorder::new(4);
        for i in 0..11 {
            rec.clock().advance(1.0);
            rec.instant(0, &format!("e{i}"), fields!());
        }
        assert_eq!(rec.dropped(), 7);
        let dump = rec.dump();
        assert_eq!(names(&dump), ["e7", "e8", "e9", "e10"]);
        // timestamps still oldest-first after the wrap
        assert!(dump.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn exact_capacity_boundary_does_not_drop() {
        let rec = FlightRecorder::new(3);
        for i in 0..3 {
            rec.instant(0, &format!("e{i}"), fields!());
        }
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.dump().len(), 3);
        rec.instant(0, "e3", fields!());
        assert_eq!(rec.dropped(), 1);
        assert_eq!(names(&rec.dump()), ["e1", "e2", "e3"]);
    }

    #[test]
    fn counters_survive_the_wrap() {
        let rec = FlightRecorder::new(2);
        for _ in 0..10 {
            rec.counter(0, "samples", 16);
        }
        assert_eq!(rec.counters()["samples"], 160);
        assert_eq!(rec.dump().len(), 2, "only the last two samples retained");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        FlightRecorder::new(0);
    }

    #[test]
    fn capacity_one_keeps_exactly_the_latest_event() {
        // Degenerate ring: every record after the first overwrites the
        // single slot, head must keep cycling through index 0 without
        // going out of bounds, and the dump is always that one event.
        let rec = FlightRecorder::new(1);
        assert!(rec.dump().is_empty(), "empty before any event");
        for i in 0..5 {
            rec.clock().advance(1.0);
            rec.instant(0, &format!("e{i}"), fields!());
            let dump = rec.dump();
            assert_eq!(names(&dump), [format!("e{i}")]);
            assert_eq!(dump[0].ts_micros, (i + 1) * 1_000_000);
        }
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.capacity(), 1);
    }
}
