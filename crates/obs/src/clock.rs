//! The deterministic virtual clock every recorder timestamps against.

use std::sync::atomic::{AtomicU64, Ordering};

/// A simulated-time clock, in fractional seconds.
///
/// The workspace's cost models (`dl-distributed::sim`, the checkpoint
/// storage profiles, the energy accounting) all express time as `f64`
/// simulated seconds; instrumented drivers mirror their accumulated
/// seconds into this clock (`set`) or push increments onto it
/// (`advance`). Nothing here reads the wall clock, so two runs of the
/// same seeded experiment produce byte-identical traces.
///
/// Time is held as the bit pattern of an `f64` inside an [`AtomicU64`]
/// and updated with compare-and-swap loops: sub-microsecond costs (a
/// single toy-network batch is fractions of a nanosecond on the nominal
/// device) accumulate exactly as the simulation's own `f64` accounting
/// does, instead of truncating to zero. Event timestamps round to whole
/// microseconds only at export time, matching the Chrome `trace_event`
/// `ts` unit.
#[derive(Debug, Default)]
pub struct VirtualClock {
    seconds_bits: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        f64::from_bits(self.seconds_bits.load(Ordering::Relaxed))
    }

    /// Current time rounded to whole microseconds (the `trace_event` unit).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        (self.now() * 1e6).round() as u64
    }

    /// Moves the clock forward by `seconds` (negative or non-finite
    /// amounts are ignored: simulated time never runs backwards).
    pub fn advance(&self, seconds: f64) {
        if !(seconds.is_finite() && seconds > 0.0) {
            return;
        }
        let mut cur = self.seconds_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + seconds).to_bits();
            match self.seconds_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Sets the clock to an absolute time in seconds, saturating at the
    /// current value so time never runs backwards (drivers that restart
    /// their local accumulator keep a monotonic shared timeline).
    pub fn set(&self, seconds: f64) {
        if !seconds.is_finite() {
            return;
        }
        let target = seconds.max(0.0);
        let mut cur = self.seconds_bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= target {
                return;
            }
            match self.seconds_bits.compare_exchange_weak(
                cur,
                target.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(1.5);
        assert_eq!(c.now_micros(), 1_500_000);
        assert!((c.now() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn never_runs_backwards() {
        let c = VirtualClock::new();
        c.set(2.0);
        c.set(1.0);
        assert_eq!(c.now_micros(), 2_000_000);
        c.advance(-5.0);
        c.advance(f64::NAN);
        assert_eq!(c.now_micros(), 2_000_000);
    }

    #[test]
    fn sub_microsecond_advances_accumulate() {
        let c = VirtualClock::new();
        c.advance(0.4e-6);
        assert_eq!(c.now_micros(), 0, "0.4 us rounds down at export");
        assert!(c.now() > 0.0, "but the clock itself kept the increment");
        c.advance(0.4e-6);
        assert_eq!(c.now_micros(), 1, "0.8 us rounds up");
        for _ in 0..1000 {
            c.advance(1e-9);
        }
        assert!((c.now() - 1.8e-6).abs() < 1e-12);
    }
}
