//! # dl-obs
//!
//! The workspace's observability layer: structured tracing, metrics, and
//! a flight recorder, shared by training (`dl-nn`), the distributed
//! simulator (`dl-distributed`), and the experiment harness (`dl-bench`).
//!
//! The tutorial's thesis is that deep learning must be treated as a data
//! system — and data systems are *instrumented*: the tradeoff space
//! (accuracy / time / memory / energy) can only be navigated once every
//! phase of a run is measured uniformly. This crate supplies that uniform
//! layer:
//!
//! * [`Recorder`] — span-style structured events ([`Recorder::span_start`]
//!   / [`Recorder::span_end`] / [`Recorder::instant`]) carrying typed
//!   key-value [`Fields`], plus monotonic counters and log-scale
//!   [`Histogram`]s.
//! * [`VirtualClock`] — deterministic simulated time. Instrumented code
//!   mirrors its simulated-seconds accounting into the clock; **no wall
//!   clock is ever read**, so a seeded run exports a byte-identical trace
//!   every time.
//! * [`TimelineRecorder`] — the full in-memory timeline, and
//!   [`FlightRecorder`] — a bounded ring that keeps only the last N
//!   events for post-mortem dumps of long runs.
//! * [`export`] — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto) and JSON-lines, written through any
//!   `std::io::Write` sink so tests capture in-memory.
//! * [`ToFields`] — the single serialization path for the workspace's
//!   report structs (`EpochRecord`, the distributed reports), shared
//!   between event annotations and the bench harness's JSON records.
//!
//! The crate is dependency-free and `unsafe`-free, so any workspace crate
//! can emit events without dependency cycles.
//!
//! ```
//! use dl_obs::{fields, Recorder, TimelineRecorder, export};
//!
//! let rec = TimelineRecorder::new();
//! let span = rec.span_start(0, "epoch", fields! { "epoch" => 0usize });
//! rec.clock().advance(0.125); // simulated seconds, not wall time
//! rec.counter(0, "train.samples", 512);
//! rec.span_end(span, fields! { "loss" => 0.71 });
//! let trace = export::chrome_trace_to_string(&rec.events());
//! assert!(trace.contains("\"name\":\"epoch\""));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod export;
pub mod field;
pub mod flight;
pub mod recorder;

pub use clock::VirtualClock;
pub use export::{Flow, FlowPhase};
pub use field::{FieldValue, Fields, ToFields};
pub use flight::FlightRecorder;
pub use recorder::{
    Event, EventKind, Histogram, NullRecorder, Recorder, SpanId, TimelineRecorder,
};
