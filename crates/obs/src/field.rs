//! Typed key-value fields attached to events, and the [`ToFields`]
//! conversion shared by every report/record type in the workspace.

use std::fmt::Write as _;

/// One typed field value.
///
/// The variants cover everything the workspace's reports carry; values
/// render to JSON with a stable, locale-free textual form so exported
/// traces are byte-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like quantity (bytes, FLOPs, sample counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement (seconds, loss, accuracy).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form label (worker names, verdicts, technique ids).
    Str(String),
}

impl FieldValue {
    /// The value as a `u64`, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            FieldValue::U64(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `f64`: floats directly, integers losslessly
    /// widened (the usual "read a metric off an event" accessor).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            FieldValue::F64(x) => Some(x),
            FieldValue::U64(n) => Some(n as f64),
            FieldValue::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// An ordered field list. Exporters sort by key, so emission order is a
/// call-site convenience, not part of the format.
pub type Fields = Vec<(String, FieldValue)>;

/// Conversion of a report/record type into the shared event field schema.
///
/// This is the single serialization path for structs like
/// `dl_nn::EpochRecord` and the distributed reports: the same
/// `to_fields()` output feeds span annotations, JSON-lines export, and
/// the bench harness's machine-readable records, replacing the
/// field-by-field formatting each experiment used to hand-roll.
pub trait ToFields {
    /// The struct as key-value fields, one entry per public metric.
    fn to_fields(&self) -> Fields;
}

/// Builds a [`Fields`] list: `fields! { "epoch" => 3usize, "loss" => 0.5 }`.
///
/// Values may be any type with a `From` conversion into [`FieldValue`].
#[macro_export]
macro_rules! fields {
    () => { Vec::new() };
    ($($key:expr => $value:expr),+ $(,)?) => {
        vec![$(($key.to_string(), $crate::FieldValue::from($value))),+]
    };
}

/// Appends `v` to `out` as JSON (`NaN`/infinite floats become `null`,
/// which the trace viewers tolerate and strict parsers accept).
pub(crate) fn write_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => write_json_string(out, s),
    }
}

/// Appends `s` to `out` as a JSON string literal with full escaping.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_workspace_types() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(2.5f32), FieldValue::F64(2.5));
        assert_eq!(FieldValue::from(-1i64), FieldValue::I64(-1));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }

    #[test]
    fn fields_macro_builds_ordered_pairs() {
        let f: Fields = fields! { "a" => 1u64, "b" => 0.5, "c" => "v" };
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].0, "a");
        assert_eq!(f[2].1, FieldValue::Str("v".into()));
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_json_value(&mut out, &FieldValue::F64(f64::NAN));
        assert_eq!(out, "null");
    }
}
