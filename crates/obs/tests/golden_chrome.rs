//! Golden-file test for the Chrome `trace_event` exporter: the rendered
//! bytes of a fixed scenario must never drift (stable JSON, sorted keys),
//! because downstream tooling diffs and archives exported traces.

use dl_obs::{export, fields, Recorder, TimelineRecorder};

/// A miniature fault-recovery timeline exercising every event kind,
/// field type, and the JSON string escaper.
fn scenario() -> TimelineRecorder {
    let rec = TimelineRecorder::new();
    let run = rec.span_start(
        0,
        "resilient_local_sgd",
        fields! { "workers" => 4usize, "sync_period" => 8usize, "label" => "golden" },
    );
    rec.clock().advance(0.5);
    let round = rec.span_start(0, "sync_round", fields! { "round" => 0usize });
    rec.clock().advance(0.25);
    rec.counter(0, "bytes_communicated", 4096);
    rec.span_end(round, fields! { "seconds" => 0.25 });
    rec.clock().advance(0.125);
    rec.instant(
        2,
        "crash",
        fields! { "worker" => 2usize, "step" => 17usize },
    );
    rec.clock().advance(0.0625);
    rec.instant(
        0,
        "rollback",
        fields! { "to_step" => 16usize, "lost_samples" => 128u64, "aborted" => false },
    );
    let ckpt = rec.span_start(0, "checkpoint_write", fields! { "step" => 24usize });
    rec.clock().advance(0.03125);
    rec.span_end(ckpt, fields! { "bytes" => 2080u64 });
    rec.instant(2, "rejoin", fields! { "worker" => 2usize, "source" => "checkpoint" });
    rec.span_end(
        run,
        fields! { "accuracy" => 0.9375, "note" => "quote \" backslash \\ done" },
    );
    rec
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rendered = export::chrome_trace_to_string(&scenario().events());
    if std::env::var_os("DL_OBS_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(
        rendered, golden,
        "Chrome trace output drifted from tests/golden/chrome_trace.json; \
         if the change is intentional, rerun with DL_OBS_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_file_is_loadable_trace_event_json() {
    // Minimal structural validation without a JSON parser dependency:
    // the file is an array, every record is an object carrying the
    // required trace_event keys, and B/E edges are balanced per tid.
    let golden = include_str!("golden/chrome_trace.json");
    assert!(golden.starts_with("[\n") && golden.ends_with("]\n"));
    let records: Vec<&str> = golden
        .lines()
        .filter(|l| l.starts_with('{'))
        .collect();
    assert!(!records.is_empty());
    let mut depth = 0i64;
    for r in &records {
        for key in ["\"name\":", "\"ph\":", "\"pid\":", "\"tid\":", "\"ts\":", "\"args\":"] {
            assert!(r.contains(key), "record missing {key}: {r}");
        }
        if r.contains("\"ph\":\"B\"") {
            depth += 1;
        }
        if r.contains("\"ph\":\"E\"") {
            depth -= 1;
            assert!(depth >= 0, "span end without a start");
        }
    }
    assert_eq!(depth, 0, "unbalanced span edges");
}

/// The golden scenario plus two flow arrows: a cross-track handoff from
/// the driver track to worker 2 (crash → rejoin causality) and a second
/// arrow inside track 0 (checkpoint → rollback ordering).
fn flow_scenario() -> (TimelineRecorder, Vec<export::Flow>) {
    let rec = scenario();
    let flows = vec![
        export::Flow {
            id: 1,
            name: "handoff".to_string(),
            ts_micros: 875_000,
            track: 0,
            phase: export::FlowPhase::Start,
        },
        export::Flow {
            id: 1,
            name: "handoff".to_string(),
            ts_micros: 968_750,
            track: 2,
            phase: export::FlowPhase::Finish,
        },
        export::Flow {
            id: 2,
            name: "retry".to_string(),
            ts_micros: 937_500,
            track: 0,
            phase: export::FlowPhase::Start,
        },
        export::Flow {
            id: 2,
            name: "retry".to_string(),
            ts_micros: 968_750,
            track: 0,
            phase: export::FlowPhase::Finish,
        },
    ];
    (rec, flows)
}

#[test]
fn chrome_trace_with_flows_matches_golden_file() {
    let (rec, flows) = flow_scenario();
    let mut buf = Vec::new();
    export::write_chrome_trace_with_flows(&rec.events(), &flows, &mut buf)
        .expect("in-memory sink");
    let rendered = String::from_utf8(buf).expect("utf-8");
    if std::env::var_os("DL_OBS_REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/chrome_trace_flows.json"
        );
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let golden = include_str!("golden/chrome_trace_flows.json");
    assert_eq!(
        rendered, golden,
        "flow-event Chrome trace drifted from tests/golden/chrome_trace_flows.json; \
         if the change is intentional, rerun with DL_OBS_REGEN_GOLDEN=1"
    );
}

#[test]
fn flow_golden_file_pairs_every_arrow() {
    // Each flow id must appear exactly twice — once as ph:"s", once as
    // ph:"f" with the binding-point marker — or Perfetto drops the arrow.
    let golden = include_str!("golden/chrome_trace_flows.json");
    for id in [1, 2] {
        let start = format!("{{\"cat\":\"flow\",\"id\":{id},");
        let finish = format!("{{\"bp\":\"e\",\"cat\":\"flow\",\"id\":{id},");
        assert_eq!(golden.matches(&start).count(), 1, "flow {id} start");
        assert_eq!(golden.matches(&finish).count(), 1, "flow {id} finish");
    }
    assert!(golden.contains("\"ph\":\"s\""));
    assert!(golden.contains("\"ph\":\"f\""));
}

#[test]
fn json_lines_round_trips_the_same_scenario() {
    let rec = scenario();
    let lines = export::json_lines_to_string(&rec.events());
    assert_eq!(lines.lines().count(), rec.events().len());
    assert!(lines.contains("\"name\":\"crash\""));
    assert!(lines.contains("\"kind\":\"counter\""));
}
