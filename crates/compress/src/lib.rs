//! # dl-compress
//!
//! Neural network compression, the first tradeoff class of the tutorial's
//! Part 1 (accuracy vs. time/memory efficiency). Three families, mirroring
//! the tutorial's taxonomy:
//!
//! * [`quant`] — **quantization**: per-tensor affine integer quantization at
//!   any bit width, k-means codebook (vector-quantization-style) codes,
//!   sign binarization, and a Huffman coder so the lossless half of the
//!   codebook story is measurable too.
//! * [`prune`] — **parameter pruning**: unstructured magnitude pruning,
//!   first-order loss-saliency pruning, and structural neuron pruning that
//!   physically shrinks consecutive dense layers.
//! * [`distill`] — **knowledge distillation**: temperature-softened teacher
//!   probabilities transferred into a smaller student.
//! * [`qnn`] — **native int8 inference**: serve a quantized MLP directly on
//!   its packed codes (integer GEMM + one affine rescale per output) instead
//!   of dequantizing back to f32 first.
//!
//! Every entry point reports the compressed footprint in bytes next to the
//! (possibly degraded) model, so experiments can plot the tutorial's
//! accuracy-vs-memory tradeoff directly.

#![warn(missing_docs)]

pub mod distill;
pub mod prune;
pub mod qnn;
pub mod quant;

pub use distill::{distill, DistillConfig, DistillReport};
pub use qnn::{QuantizedDense, QuantizedMlp};
pub use prune::{filter_prune, magnitude_prune, neuron_prune, saliency_prune, sparsity, PruneReport};
pub use quant::{
    binarize_network, quantize_network, quantize_network_tensors, CodebookQuantizer, HuffmanCode,
    QuantScheme, QuantizedTensor,
};
