//! Parameter pruning: unstructured, saliency-based and structural.
//!
//! The tutorial (§2.1) organizes pruning along two axes: *granularity*
//! (parameter / filter / network level) and *criterion* (magnitude / loss
//! / learned). This module covers:
//!
//! * [`magnitude_prune`] — parameter-level, magnitude criterion: zero the
//!   globally smallest weights (Han et al. style).
//! * [`saliency_prune`] — parameter-level, loss criterion: first-order
//!   Taylor saliency `|w * dL/dw|` estimated on a calibration batch.
//! * [`neuron_prune`] — filter-level structural pruning of dense layers:
//!   physically removes the lowest-norm output neurons and the matching
//!   rows of the next dense layer, shrinking real memory and FLOPs.

use dl_nn::{Dataset, Dense, Layer, Loss, Network};
use dl_tensor::Tensor;

/// What a pruning pass did to the network.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// Parameters before pruning.
    pub params_before: usize,
    /// Parameters after (for unstructured pruning, params that remain
    /// nonzero; for structural pruning, params that physically remain).
    pub params_after: usize,
    /// Fraction of weight parameters zeroed/removed.
    pub achieved_sparsity: f64,
}

/// Fraction of *weight-matrix* entries that are exactly zero.
/// (Biases and norm parameters are excluded, matching pruning practice.)
pub fn sparsity(net: &Network) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for layer in net.layers() {
        if let Some(w) = weight_of(layer) {
            zeros += w.data().iter().filter(|&&v| v == 0.0).count();
            total += w.len();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

fn weight_of(layer: &Layer) -> Option<&Tensor> {
    match layer {
        Layer::Dense(d) => Some(&d.weight),
        Layer::Conv2d(c) => Some(&c.weight),
        _ => None,
    }
}

/// Zeroes the `target_sparsity` fraction of weight entries with smallest
/// absolute value, chosen **globally** across all weight matrices.
///
/// # Panics
/// Panics unless `0 <= target_sparsity <= 1`.
pub fn magnitude_prune(net: &mut Network, target_sparsity: f64) -> PruneReport {
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "sparsity must lie in [0,1], got {target_sparsity}"
    );
    // collect |w| across all weight matrices to find the global threshold
    let mut magnitudes: Vec<f32> = Vec::new();
    for layer in net.layers() {
        if let Some(w) = weight_of(layer) {
            magnitudes.extend(w.data().iter().map(|v| v.abs()));
        }
    }
    let params_before = magnitudes.len();
    if params_before == 0 {
        return PruneReport {
            params_before: 0,
            params_after: 0,
            achieved_sparsity: 0.0,
        };
    }
    let cut = ((params_before as f64) * target_sparsity).floor() as usize;
    let threshold = if cut == 0 {
        f32::NEG_INFINITY
    } else {
        let (_, t, _) = magnitudes.select_nth_unstable_by(cut - 1, f32::total_cmp);
        *t
    };
    let mut zeroed = 0usize;
    for layer in net.layers_mut() {
        let w = match layer {
            Layer::Dense(d) => &mut d.weight,
            Layer::Conv2d(c) => &mut c.weight,
            _ => continue,
        };
        for v in w.data_mut() {
            if v.abs() <= threshold && zeroed < cut {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    PruneReport {
        params_before,
        params_after: params_before - zeroed,
        achieved_sparsity: zeroed as f64 / params_before as f64,
    }
}

/// First-order loss-saliency pruning: scores every weight by
/// `|w * dL/dw|` on a calibration batch (the Taylor expansion of the loss
/// change from removing the weight) and zeroes the least-salient fraction.
///
/// # Panics
/// Panics unless `0 <= target_sparsity <= 1`, or on an empty dataset.
pub fn saliency_prune(
    net: &mut Network,
    calibration: &Dataset,
    target_sparsity: f64,
) -> PruneReport {
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "sparsity must lie in [0,1]"
    );
    assert!(!calibration.is_empty(), "calibration data required");
    // one forward/backward over the calibration set to populate gradients
    net.zero_grads();
    let logits = net.forward(&calibration.x, true);
    let targets = dl_nn::loss::one_hot(&calibration.y, calibration.classes);
    let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
    net.backward(&grad);
    // collect saliencies of weight matrices only
    let mut saliencies: Vec<f32> = Vec::new();
    for layer in net.layers_mut() {
        match layer {
            Layer::Dense(d) => {
                saliencies.extend(
                    d.weight
                        .data()
                        .iter()
                        .zip(d.grad_weight.data())
                        .map(|(&w, &g)| (w * g).abs()),
                );
            }
            Layer::Conv2d(c) => {
                saliencies.extend(
                    c.weight
                        .data()
                        .iter()
                        .zip(c.grad_weight.data())
                        .map(|(&w, &g)| (w * g).abs()),
                );
            }
            _ => {}
        }
    }
    let params_before = saliencies.len();
    let cut = ((params_before as f64) * target_sparsity).floor() as usize;
    let threshold = if cut == 0 {
        f32::NEG_INFINITY
    } else {
        let (_, t, _) = saliencies.select_nth_unstable_by(cut - 1, f32::total_cmp);
        *t
    };
    let mut zeroed = 0usize;
    for layer in net.layers_mut() {
        let (w, g) = match layer {
            Layer::Dense(d) => (&mut d.weight, &d.grad_weight),
            Layer::Conv2d(c) => (&mut c.weight, &c.grad_weight),
            _ => continue,
        };
        for (v, &gv) in w.data_mut().iter_mut().zip(g.data()) {
            if (*v * gv).abs() <= threshold && zeroed < cut {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    net.clear_caches();
    PruneReport {
        params_before,
        params_after: params_before - zeroed,
        achieved_sparsity: zeroed as f64 / params_before as f64,
    }
}

/// Structural (filter-level) pruning of the dense layer at `layer_index`:
/// removes the `remove` output neurons with lowest L2 weight norm, and the
/// matching input rows of the **next** dense layer.
///
/// Unlike unstructured pruning this physically shrinks both matrices, so
/// memory and FLOPs drop without sparse kernels.
///
/// # Panics
/// Panics when `layer_index` is not a dense layer followed (possibly after
/// activations) by another dense layer, or `remove` >= neuron count.
pub fn neuron_prune(net: &mut Network, layer_index: usize, remove: usize) -> PruneReport {
    let params_before = net.param_count();
    let layers = net.layers_mut();
    // find the next dense layer after layer_index
    let next_dense = (layer_index + 1..layers.len())
        .find(|&i| matches!(layers[i], Layer::Dense(_)))
        .expect("neuron_prune requires a following dense layer");
    let (out_dim, keep): (usize, Vec<usize>) = {
        let Layer::Dense(d) = &layers[layer_index] else {
            panic!("layer {layer_index} is not dense");
        };
        let out_dim = d.fan_out();
        assert!(
            remove < out_dim,
            "cannot remove {remove} of {out_dim} neurons"
        );
        // L2 norm of each output column
        let mut norms: Vec<(f32, usize)> = (0..out_dim)
            .map(|j| {
                let norm: f32 = (0..d.fan_in())
                    .map(|i| d.weight.get(&[i, j]).powi(2))
                    .sum();
                (norm, j)
            })
            .collect();
        norms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let removed: std::collections::HashSet<usize> =
            norms[..remove].iter().map(|&(_, j)| j).collect();
        let keep: Vec<usize> = (0..out_dim).filter(|j| !removed.contains(j)).collect();
        (out_dim, keep)
    };
    // shrink layer_index's columns
    {
        let Layer::Dense(d) = &mut layers[layer_index] else {
            unreachable!();
        };
        let fan_in = d.fan_in();
        let mut w = Vec::with_capacity(fan_in * keep.len());
        for i in 0..fan_in {
            for &j in &keep {
                w.push(d.weight.get(&[i, j]));
            }
        }
        let b: Vec<f32> = keep.iter().map(|&j| d.bias.data()[j]).collect();
        *d = Dense::from_parts(
            Tensor::from_vec(w, [fan_in, keep.len()]).expect("length matches"),
            Tensor::from_vec(b, [keep.len()]).expect("length matches"),
        );
    }
    // shrink next dense layer's rows
    {
        let Layer::Dense(d) = &mut layers[next_dense] else {
            unreachable!();
        };
        assert_eq!(
            d.fan_in(),
            out_dim,
            "next dense layer fan_in must match pruned layer fan_out"
        );
        let w = d.weight.select_rows(&keep);
        *d = Dense::from_parts(w, d.bias.clone());
    }
    let params_after = net.param_count();
    PruneReport {
        params_before,
        params_after,
        achieved_sparsity: 1.0 - params_after as f64 / params_before as f64,
    }
}

/// Filter-level pruning of a convolution layer: zeroes the `remove`
/// filters with the lowest L2 norm (weights and bias). The filters'
/// outputs become constant zero, so downstream layers see structured
/// sparsity — the "filter-level granularity" of the tutorial's taxonomy,
/// without the index surgery a flattened-spatial interface would need.
///
/// Returns the indices of the zeroed filters.
///
/// # Panics
/// Panics when `layer_index` is not a convolution or `remove` is not
/// smaller than the filter count.
pub fn filter_prune(net: &mut Network, layer_index: usize, remove: usize) -> Vec<usize> {
    let Layer::Conv2d(conv) = &mut net.layers_mut()[layer_index] else {
        panic!("layer {layer_index} is not a convolution");
    };
    let filters = conv.out_channels;
    assert!(
        remove < filters,
        "cannot remove {remove} of {filters} filters"
    );
    let fan_in = conv.weight.dims()[1];
    let mut norms: Vec<(f32, usize)> = (0..filters)
        .map(|f| {
            let norm: f32 = (0..fan_in)
                .map(|i| conv.weight.get(&[f, i]).powi(2))
                .sum::<f32>()
                + conv.bias.data()[f].powi(2);
            (norm, f)
        })
        .collect();
    norms.sort_by(|a, b| a.0.total_cmp(&b.0));
    let removed: Vec<usize> = norms[..remove].iter().map(|&(_, f)| f).collect();
    for &f in &removed {
        for i in 0..fan_in {
            conv.weight.set(&[f, i], 0.0);
        }
        conv.bias.data_mut()[f] = 0.0;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::blobs;
    use dl_nn::{Optimizer, TrainConfig, Trainer};
    use dl_tensor::init::rng;

    fn trained_net(seed: u64) -> (Network, Dataset) {
        let data = blobs(120, 3, 4, 6.0, 0.3, seed);
        let mut r = rng(seed);
        let mut net = Network::mlp(&[4, 16, 8, 3], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        (net, data)
    }

    #[test]
    fn magnitude_prune_hits_target() {
        let (mut net, _) = trained_net(0);
        let report = magnitude_prune(&mut net, 0.5);
        assert!((report.achieved_sparsity - 0.5).abs() < 0.01);
        assert!((sparsity(&net) - 0.5).abs() < 0.01);
    }

    #[test]
    fn magnitude_prune_zero_is_noop() {
        let (mut net, _) = trained_net(1);
        let before = net.flat_params();
        let report = magnitude_prune(&mut net, 0.0);
        assert_eq!(report.achieved_sparsity, 0.0);
        assert_eq!(net.flat_params(), before);
    }

    #[test]
    fn magnitude_prune_removes_smallest_first() {
        let mut r = rng(2);
        let mut net = Network::new(2).push(Layer::Dense(Dense::new(2, 2, &mut r)));
        // plant known weights
        if let Layer::Dense(d) = &mut net.layers_mut()[0] {
            d.weight = Tensor::from_vec(vec![0.01, -5.0, 0.02, 4.0], [2, 2]).unwrap();
        }
        magnitude_prune(&mut net, 0.5);
        if let Layer::Dense(d) = &net.layers()[0] {
            assert_eq!(d.weight.data(), &[0.0, -5.0, 0.0, 4.0]);
        }
    }

    #[test]
    fn mild_pruning_keeps_accuracy_heavy_pruning_kills_it() {
        let (net, data) = trained_net(3);
        let base = Trainer::evaluate(&mut net.clone(), &data);
        let mut mild = net.clone();
        magnitude_prune(&mut mild, 0.3);
        let mild_acc = Trainer::evaluate(&mut mild, &data);
        let mut heavy = net.clone();
        magnitude_prune(&mut heavy, 0.99);
        let heavy_acc = Trainer::evaluate(&mut heavy, &data);
        assert!(base - mild_acc < 0.1, "mild pruning lost {}", base - mild_acc);
        assert!(heavy_acc < base, "99% pruning should hurt: {heavy_acc} vs {base}");
    }

    #[test]
    fn saliency_prune_hits_target_and_respects_loss() {
        let (mut net, data) = trained_net(4);
        let base = Trainer::evaluate(&mut net.clone(), &data);
        let report = saliency_prune(&mut net, &data, 0.4);
        assert!((report.achieved_sparsity - 0.4).abs() < 0.01);
        let acc = Trainer::evaluate(&mut net, &data);
        assert!(base - acc < 0.15, "saliency pruning lost {}", base - acc);
    }

    #[test]
    fn neuron_prune_shrinks_shapes() {
        let (mut net, data) = trained_net(5);
        let before_params = net.param_count();
        let report = neuron_prune(&mut net, 0, 8); // 16 -> 8 hidden neurons
        assert!(report.params_after < before_params);
        if let Layer::Dense(d) = &net.layers()[0] {
            assert_eq!(d.fan_out(), 8);
        }
        if let Layer::Dense(d) = &net.layers()[2] {
            assert_eq!(d.fan_in(), 8);
        }
        // network still runs end to end
        let acc = Trainer::evaluate(&mut net, &data);
        assert!(acc > 0.4, "pruned net collapsed to {acc}");
    }

    #[test]
    fn neuron_prune_removes_lowest_norm_neurons() {
        let mut r = rng(6);
        let mut net = Network::new(2)
            .push(Layer::Dense(Dense::new(2, 3, &mut r)))
            .push(Layer::Dense(Dense::new(3, 2, &mut r)));
        if let Layer::Dense(d) = &mut net.layers_mut()[0] {
            // neuron 1 has tiny weights -> should be removed
            d.weight = Tensor::from_vec(vec![1.0, 0.001, 2.0, 1.5, 0.001, -2.0], [2, 3]).unwrap();
            d.bias = Tensor::from_vec(vec![0.1, 0.2, 0.3], [3]).unwrap();
        }
        neuron_prune(&mut net, 0, 1);
        if let Layer::Dense(d) = &net.layers()[0] {
            assert_eq!(d.fan_out(), 2);
            assert_eq!(d.weight.data(), &[1.0, 2.0, 1.5, -2.0]);
            assert_eq!(d.bias.data(), &[0.1, 0.3]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn neuron_prune_rejects_removing_all() {
        let (mut net, _) = trained_net(7);
        neuron_prune(&mut net, 0, 16);
    }

    #[test]
    #[should_panic(expected = "sparsity must lie")]
    fn magnitude_prune_rejects_bad_sparsity() {
        let (mut net, _) = trained_net(8);
        magnitude_prune(&mut net, 1.5);
    }

    #[test]
    fn filter_prune_zeroes_lowest_norm_filters() {
        let mut r = rng(20);
        let mut net = Network::simple_cnn(1, 12, 12, 4, 8, 10, &mut r);
        // shrink one filter's weights so it becomes the obvious victim
        if let Layer::Conv2d(c) = &mut net.layers_mut()[0] {
            for i in 0..9 {
                c.weight.set(&[2, i], 1e-6);
            }
            c.bias.data_mut()[2] = 0.0;
        }
        let removed = filter_prune(&mut net, 0, 1);
        assert_eq!(removed, vec![2]);
        if let Layer::Conv2d(c) = &net.layers()[0] {
            assert!((0..9).all(|i| c.weight.get(&[2, i]) == 0.0));
            // the other filters are untouched
            assert!((0..9).any(|i| c.weight.get(&[0, i]) != 0.0));
        }
        // a zeroed filter emits constant zero feature maps
        let x = dl_tensor::init::uniform([2, 144], 0.0, 1.0, &mut r);
        if let Layer::Conv2d(c) = &mut net.layers_mut()[0] {
            let mut probe = c.clone();
            let y = Layer::Conv2d(probe.clone()).forward(&x, false);
            let (oh, ow) = probe.output_hw();
            for s in 0..2 {
                for p in 0..oh * ow {
                    assert_eq!(y.get(&[s, 2 * oh * ow + p]), 0.0);
                }
            }
            let _ = &mut probe; // silence unused-mut in release configs
        }
    }

    #[test]
    #[should_panic(expected = "not a convolution")]
    fn filter_prune_rejects_dense_layers() {
        let (mut net, _) = trained_net(21);
        filter_prune(&mut net, 0, 1);
    }

    #[test]
    fn cnn_trains_and_prunes_end_to_end() {
        use dl_data::digits_dataset;
        let data = digits_dataset(150, 0.05, 22);
        let mut r = rng(23);
        let mut net = Network::simple_cnn(1, 12, 12, 4, 16, 10, &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 8,
                batch_size: 32,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let base = Trainer::evaluate(&mut net, &data);
        assert!(base > 0.8, "cnn failed to train: {base}");
        filter_prune(&mut net, 0, 1);
        let pruned = Trainer::evaluate(&mut net, &data);
        assert!(pruned > 0.5, "one filter should not collapse the model: {pruned}");
    }

    #[test]
    fn sparsity_of_fresh_net_is_zero() {
        let mut r = rng(9);
        let net = Network::mlp(&[4, 8, 2], &mut r);
        assert_eq!(sparsity(&net), 0.0);
    }
}
