//! Knowledge distillation: transferring a large network's function into a
//! smaller one (Hinton et al., tutorial §2.1).
//!
//! The student is trained against a convex mix of the hard labels and the
//! teacher's temperature-softened probabilities. Temperature > 1 exposes the
//! teacher's "dark knowledge" — the relative probabilities of wrong classes
//! — which is what lets a small student beat the same architecture trained
//! from scratch.

use dl_nn::{loss::one_hot, loss::softmax, Dataset, Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::Tensor;

/// Distillation hyper-parameters.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Softmax temperature applied to the teacher's logits (typically 2-5).
    pub temperature: f32,
    /// Weight on the soft (teacher) targets vs. hard labels, in `[0, 1]`.
    pub soft_weight: f32,
    /// Training configuration for the student.
    pub train: TrainConfig,
    /// Student optimizer.
    pub optimizer: Optimizer,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            temperature: 3.0,
            soft_weight: 0.7,
            train: TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
            optimizer: Optimizer::adam(0.01),
        }
    }
}

/// Outcome of a distillation run.
#[derive(Debug, Clone)]
pub struct DistillReport {
    /// Teacher accuracy on the training data.
    pub teacher_accuracy: f64,
    /// Distilled student accuracy.
    pub student_accuracy: f64,
    /// Teacher parameter count.
    pub teacher_params: usize,
    /// Student parameter count.
    pub student_params: usize,
}

impl DistillReport {
    /// Parameter compression ratio (teacher / student).
    pub fn compression(&self) -> f64 {
        self.teacher_params as f64 / self.student_params.max(1) as f64
    }
}

/// Temperature-softened probabilities of `teacher` on `x`.
pub fn soft_targets(teacher: &mut Network, x: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let logits = teacher.forward(x, false);
    softmax(&logits.map(|v| v / temperature))
}

/// Distills `teacher` into `student` on `data`.
///
/// The student is trained on `soft_weight * soft + (1 - soft_weight) * hard`
/// targets; both networks must share the same input/output dimensions.
///
/// # Panics
/// Panics when the teacher/student class counts disagree with the data.
pub fn distill(
    teacher: &mut Network,
    student: &mut Network,
    data: &Dataset,
    config: &DistillConfig,
) -> DistillReport {
    let soft = soft_targets(teacher, &data.x, config.temperature);
    assert_eq!(
        soft.dims()[1],
        data.classes,
        "teacher output width must equal class count"
    );
    let hard = one_hot(&data.y, data.classes);
    let w = config.soft_weight.clamp(0.0, 1.0);
    let targets = &(&soft * w) + &(&hard * (1.0 - w));
    let mut trainer = Trainer::new(config.train.clone(), config.optimizer.clone());
    trainer.fit_soft(student, data, Some(&targets));
    DistillReport {
        teacher_accuracy: Trainer::evaluate(teacher, data),
        student_accuracy: Trainer::evaluate(student, data),
        teacher_params: teacher.param_count(),
        student_params: student.param_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::digits_dataset;
    use dl_tensor::init::rng;

    fn teacher_and_data() -> (Network, Dataset) {
        let data = digits_dataset(300, 0.1, 0);
        let mut r = rng(1);
        let mut teacher = Network::mlp(&[144, 64, 32, 10], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut teacher, &data);
        (teacher, data)
    }

    #[test]
    fn soft_targets_are_distributions() {
        let (mut teacher, data) = teacher_and_data();
        let soft = soft_targets(&mut teacher, &data.x, 3.0);
        assert_eq!(soft.dims(), &[300, 10]);
        for r in 0..5 {
            let s: f32 = (0..10).map(|c| soft.get(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn higher_temperature_softens() {
        let (mut teacher, data) = teacher_and_data();
        let sharp = soft_targets(&mut teacher, &data.x, 1.0);
        let soft = soft_targets(&mut teacher, &data.x, 5.0);
        // entropy grows with temperature
        let entropy = |t: &Tensor| -> f32 {
            -t.data().iter().map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 }).sum::<f32>()
        };
        assert!(entropy(&soft) > entropy(&sharp));
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_zero_temperature() {
        let (mut teacher, data) = teacher_and_data();
        soft_targets(&mut teacher, &data.x, 0.0);
    }

    #[test]
    fn distillation_trains_a_smaller_student() {
        let (mut teacher, data) = teacher_and_data();
        let mut r = rng(2);
        let mut student = Network::mlp(&[144, 8, 10], &mut r);
        let report = distill(&mut teacher, &mut student, &data, &DistillConfig::default());
        assert!(report.compression() > 5.0, "compression {}", report.compression());
        assert!(
            report.student_accuracy > 0.7,
            "student accuracy {}",
            report.student_accuracy
        );
        assert!(report.teacher_accuracy > 0.9);
    }

    #[test]
    fn report_params_match_networks() {
        let (mut teacher, data) = teacher_and_data();
        let mut r = rng(3);
        let mut student = Network::mlp(&[144, 4, 10], &mut r);
        let cfg = DistillConfig {
            train: TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
            ..DistillConfig::default()
        };
        let report = distill(&mut teacher, &mut student, &data, &cfg);
        assert_eq!(report.teacher_params, teacher.param_count());
        assert_eq!(report.student_params, student.param_count());
    }
}
